#!/usr/bin/env python
"""Multithreaded workloads and thread criticality (paper §3.7).

The paper envisions extending TCM to multithreaded applications whose
execution time is set by slow *critical* threads: identify them and
prioritise them through the thread-weight mechanism.  This example
models a synchronising multithreaded application as four identical
worker threads of which one (the critical thread, e.g. the lock holder)
must not fall behind, co-running with a memory-hogging batch workload.

The critical thread gates the application (the others wait for it at
synchronisation points), so its speedup is the application's effective
speedup; the example shows how boosting its weight accelerates it
without collapsing the co-running batch threads.
"""

from repro import SimConfig, System, make_scheduler
from repro.experiments import alone_ipcs, format_table
from repro.workloads import Workload

WORKERS = 4
APP_BENCH = "omnetpp"        # memory-intensive, high-BLP parallel worker
BATCH = ("mcf", "lbm", "libquantum", "leslie3d", "soplex", "sphinx3")


def build_workload(critical_weight: int) -> Workload:
    names = tuple([APP_BENCH] * WORKERS) + BATCH
    weights = tuple(
        [critical_weight] + [1] * (WORKERS - 1) + [1] * len(BATCH)
    )
    return Workload(
        name=f"mt-critical-w{critical_weight}",
        benchmark_names=names,
        weights=weights,
    )


def run(critical_weight: int, config: SimConfig):
    workload = build_workload(critical_weight)
    result = System(workload, make_scheduler("tcm"), config, seed=0).run()
    alones = alone_ipcs(workload, config, seed=0)
    speedups = [result.ipcs[i] / alones[i] for i in range(workload.num_threads)]
    worker_speedups = speedups[:WORKERS]
    return worker_speedups, speedups[WORKERS:]


def main() -> None:
    config = SimConfig(run_cycles=400_000)
    rows = []
    for weight in (1, 4, 8):
        workers, batch = run(weight, config)
        rows.append(
            [
                f"critical weight {weight}",
                workers[0],
                sum(workers[1:]) / (len(workers) - 1),
                sum(batch) / len(batch),
            ]
        )
    print(
        format_table(
            ["configuration", "critical (gating) speedup",
             "mean other workers", "mean batch speedup"],
            rows,
            title="Thread criticality via TCM weights (paper §3.7):",
        )
    )
    print()
    print("Boosting the critical worker raises the application's gating")
    print("speedup while TCM's clustering keeps the batch threads from")
    print("being starved (weights act within, not across, clusters).")


if __name__ == "__main__":
    main()
