#!/usr/bin/env python
"""Memory performance attacks (Moscibroda & Mutlu, USENIX Security'07).

The paper's introduction motivates thread-aware scheduling with the
memory denial-of-service attack: under thread-unaware FR-FCFS, a
malicious streaming thread (perfect row locality) captures banks with
endless row hits and starves victims.  This script mounts the attack
against four victims and compares FR-FCFS with TCM, which demotes the
attacker into the bandwidth-sensitive cluster and shuffles it like any
other heavy thread.
"""

from repro import SimConfig, System, make_scheduler
from repro.experiments import alone_ipcs, format_table
from repro.workloads import BenchmarkSpec, workload_from_specs
from repro.workloads.spec import benchmark

#: The attacker: maximum intensity, perfect locality, single bank at a
#: time — engineered to exploit row-hit-first scheduling.
ATTACKER = BenchmarkSpec(name="attacker", mpki=120.0, rbl=0.995, blp=1.0)

VICTIMS = ("mcf", "omnetpp", "xalancbmk", "astar")


def main() -> None:
    config = SimConfig(run_cycles=400_000)
    specs = tuple([ATTACKER] + [benchmark(v) for v in VICTIMS])
    workload = workload_from_specs("attack", specs)
    alones = alone_ipcs(workload, config, seed=0)

    rows = []
    for sched in ("frfcfs", "tcm"):
        result = System(workload, make_scheduler(sched), config, seed=0).run()
        slowdowns = [
            alone / shared if shared > 0 else float("inf")
            for alone, shared in zip(alones, result.ipcs)
        ]
        rows.append(
            [sched, slowdowns[0], max(slowdowns[1:]),
             sum(slowdowns[1:]) / len(VICTIMS)]
        )
    print(
        format_table(
            ["scheduler", "attacker slowdown", "worst victim slowdown",
             "mean victim slowdown"],
            rows,
            title="Streaming attacker vs four victims:",
        )
    )
    print()
    print("Under FR-FCFS the attacker's row hits always win and the victims")
    print("stall behind its bank captures; TCM clusters the attacker with")
    print("the other bandwidth-sensitive threads and shuffles it, bounding")
    print("the damage (and the attacker pays, not the victims).")


if __name__ == "__main__":
    main()
