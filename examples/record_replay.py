#!/usr/bin/env python
"""Record a workload's miss streams and replay them under TCM.

The paper drives its simulator with Pin traces; this repository's
equivalent is the trace package: any simulated run can record every
thread's miss stream (positioned on contention-free program time), and
recorded traces replay under any scheduler with the memory system
simulated live.

This script records a 6-thread mix under FR-FCFS, saves the traces,
replays them under FR-FCFS (validating fidelity) and then under TCM
(showing the scheduler change on identical traces).
"""

import tempfile
from pathlib import Path

from repro import SimConfig, System, make_scheduler
from repro.experiments import format_table
from repro.trace import TraceRecorder, replay_workload
from repro.workloads import Workload


def main() -> None:
    config = SimConfig(run_cycles=300_000)
    workload = Workload(
        name="source",
        benchmark_names=("mcf", "libquantum", "lbm", "omnetpp",
                         "h264ref", "povray"),
    )

    recorder = TraceRecorder()
    source = System(
        workload, make_scheduler("frfcfs"), config, seed=0,
        trace_recorder=recorder,
    ).run()
    tracedir = Path(tempfile.mkdtemp(prefix="repro-traces-"))
    paths = recorder.save_all(tracedir)
    print(f"Recorded {sum(len(e) for e in recorder.events.values())} misses "
          f"into {tracedir}")

    replays = {}
    for sched in ("frfcfs", "tcm"):
        system = replay_workload(
            [paths[tid] for tid in sorted(paths)],
            make_scheduler(sched), config, seed=0,
        )
        replays[sched] = system.run()

    rows = []
    for tid, bench in enumerate(workload.benchmark_names):
        rows.append(
            [
                bench,
                source.threads[tid].ipc,
                replays["frfcfs"].threads[tid].ipc,
                replays["tcm"].threads[tid].ipc,
            ]
        )
    print(
        format_table(
            ["benchmark", "source IPC (FR-FCFS)",
             "replay IPC (FR-FCFS)", "replay IPC (TCM)"],
            rows,
            precision=3,
            title="Trace record -> replay fidelity and scheduler swap:",
        )
    )
    print()
    print("The FR-FCFS replay approximately tracks the source run (exact")
    print("addresses and compute gaps; remaining differences come from the")
    print("changed contention interleaving).  Replaying the same traces")
    print("under TCM shows the scheduling difference directly.")


if __name__ == "__main__":
    main()
