#!/usr/bin/env python
"""OS thread weights (paper §3.6 and §7.4, Figure 8).

The operating system assigns weights in the worst possible way for
throughput: the heaviest benchmarks get the largest weights (mcf gets
32, the light gcc gets 1).  ATLAS honours weights blindly (scaling
attained service) and crushes the light threads; TCM honours them
*within clusters*, so latency-sensitive threads stay fast while the
heavily-weighted bandwidth-sensitive threads still get their share.

Run:  python examples/thread_weights.py
"""

from repro import SimConfig
from repro.experiments import figure8, format_table
from repro.experiments.figures import FIGURE8_BENCHMARKS


def main() -> None:
    config = SimConfig(run_cycles=400_000)
    result = figure8(config, instances=4, seed=0)

    rows = []
    for name, weight in FIGURE8_BENCHMARKS:
        rows.append(
            [
                f"{name} (w={weight})",
                result.speedups["atlas"][name],
                result.speedups["tcm"][name],
            ]
        )
    print(
        format_table(
            ["benchmark", "ATLAS speedup", "TCM speedup"],
            rows,
            title="Per-benchmark speedups under adversarial weights "
                  "(cf. paper Figure 8):",
        )
    )
    print()
    ws_gain = (
        result.weighted_speedup["tcm"] / result.weighted_speedup["atlas"] - 1
    )
    ms_gain = (
        1 - result.maximum_slowdown["tcm"] / result.maximum_slowdown["atlas"]
    )
    print(f"TCM vs ATLAS: {ws_gain:+.1%} system throughput, "
          f"{ms_gain:+.1%} lower maximum slowdown.")


if __name__ == "__main__":
    main()
