#!/usr/bin/env python
"""Writing your own memory scheduler against the repro substrate.

The scheduler interface is small: implement ``priority`` (and
optionally the quantum/timer hooks) and the simulator does the rest.
This example builds a naive "bank fair-share" scheduler — each bank
round-robins across threads with queued requests — and benchmarks it
against FR-FCFS and TCM.

Run:  python examples/custom_scheduler.py
"""

from typing import Tuple

from repro import SimConfig
from repro.dram.request import MemoryRequest
from repro.experiments import evaluate_workload, format_table, score_run
from repro.schedulers.base import Scheduler
from repro.sim import System
from repro.workloads import make_intensity_workload


class BankFairShareScheduler(Scheduler):
    """Round-robins service across threads at each bank.

    Per bank, the thread serviced least recently wins; row-buffer hits
    and age only break ties.  Fair-ish, but thread-oblivious about
    intensity — no latency-sensitive prioritisation, so expect poor
    system throughput compared to TCM.
    """

    name = "bank-fair"

    def on_attach(self) -> None:
        nch = self.system.config.num_channels
        nbk = self.system.config.banks_per_channel
        n = self.system.workload.num_threads
        # last service time per (channel, bank, thread)
        self._last_service = [
            [[0] * n for _ in range(nbk)] for _ in range(nch)
        ]

    def on_request_scheduled(self, request, waiting, busy_cycles, now):
        self._last_service[request.channel_id][request.bank_id][
            request.thread_id
        ] = now

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        last = self._last_service[request.channel_id][request.bank_id][
            request.thread_id
        ]
        return (-last, row_hit, -request.arrival)


def main() -> None:
    config = SimConfig(run_cycles=300_000)
    workload = make_intensity_workload(0.75, num_threads=24, seed=1)

    scores = evaluate_workload(workload, ("frfcfs", "tcm"), config, seed=1)
    custom_result = System(
        workload, BankFairShareScheduler(), config, seed=1
    ).run()
    scores["bank-fair"] = score_run(custom_result, workload, config, seed=1)

    rows = [
        [name, s.weighted_speedup, s.maximum_slowdown, s.harmonic_speedup]
        for name, s in scores.items()
    ]
    print(
        format_table(
            ["scheduler", "weighted speedup", "max slowdown",
             "harmonic speedup"],
            rows,
            title="A custom scheduler vs FR-FCFS and TCM:",
        )
    )
    print()
    print("bank-fair equalises per-bank shares, which helps fairness over")
    print("FR-FCFS, but without thread clustering it leaves the latency-")
    print("sensitive threads waiting behind heavy ones — TCM wins on both.")


if __name__ == "__main__":
    main()
