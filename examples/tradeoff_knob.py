#!/usr/bin/env python
"""The fairness/performance trade-off knob (paper §7.1, Figure 6).

TCM's ClusterThresh controls how much bandwidth the latency-sensitive
cluster may consume.  Sweeping it from 2/24 (conservative) to 6/24
(aggressive) traces a smooth continuum: higher thresholds buy system
throughput at the cost of fairness.  No baseline scheduler offers a
comparable knob — this script shows ATLAS barely moving on the fairness
axis however its QuantumLength is tuned.

Run:  python examples/tradeoff_knob.py
"""

from repro import ATLASParams, SimConfig, TCMParams
from repro.experiments import format_table, run_shared, score_run
from repro.workloads import make_intensity_workload


def main() -> None:
    config = SimConfig(run_cycles=400_000)
    workload = make_intensity_workload(0.75, num_threads=24, seed=2)

    rows = []
    for numerator in (2, 3, 4, 5, 6):
        params = TCMParams(cluster_thresh=numerator / 24)
        result = run_shared(workload, "tcm", config, params, seed=2)
        score = score_run(result, workload, config, seed=2)
        rows.append(
            [f"TCM ct={numerator}/24", score.weighted_speedup,
             score.maximum_slowdown]
        )
    for quantum in (25_000, 50_000, 100_000, 200_000):
        params = ATLASParams(quantum_cycles=quantum)
        result = run_shared(workload, "atlas", config, params, seed=2)
        score = score_run(result, workload, config, seed=2)
        rows.append(
            [f"ATLAS q={quantum // 1000}k", score.weighted_speedup,
             score.maximum_slowdown]
        )
    print(
        format_table(
            ["operating point", "weighted speedup", "max slowdown"],
            rows,
            title="ClusterThresh: a real knob (cf. paper Figure 6):",
        )
    )
    print()
    print("Reading: TCM's points span the WS/MS plane smoothly;")
    print("ATLAS stays pinned to its throughput-biased corner.")


if __name__ == "__main__":
    main()
