"""The niceness metric (paper §3.3).

A thread with high bank-level parallelism is *fragile* (a single bank
conflict serialises its otherwise-parallel requests), while a thread
with high row-buffer locality is *hostile* (it streams into few banks
and congests them).  Niceness increases with relative fragility and
decreases with relative hostility:

    ``Niceness_i = b_i - r_i``

where ``b_i`` is thread *i*'s ascending rank by BLP (1 = lowest BLP,
N = highest) and ``r_i`` its ascending rank by RBL.  The nicest thread
therefore combines the highest BLP with the lowest RBL.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.monitor import QuantumSnapshot


def _ascending_ranks(values: Dict[int, float]) -> Dict[int, int]:
    """Rank thread ids by value, ascending; ranks are 1..N.

    Ties are broken by thread id for determinism.
    """
    ordered = sorted(values, key=lambda tid: (values[tid], tid))
    return {tid: pos + 1 for pos, tid in enumerate(ordered)}


def compute_niceness(
    snapshot: QuantumSnapshot,
    thread_ids: Sequence[int],
    mode: str = "blp_minus_rbl",
) -> Dict[int, int]:
    """Niceness of each thread in ``thread_ids`` (the bandwidth cluster).

    Returns a mapping thread id -> niceness; larger is nicer.  ``mode``
    selects the definition — the paper's ``blp_minus_rbl`` or the
    single-component ablations ``blp_only`` / ``rbl_only``.
    """
    blp = {tid: snapshot.metrics[tid].blp for tid in thread_ids}
    rbl = {tid: snapshot.metrics[tid].rbl for tid in thread_ids}
    b_rank = _ascending_ranks(blp)
    r_rank = _ascending_ranks(rbl)
    if mode == "blp_minus_rbl":
        return {tid: b_rank[tid] - r_rank[tid] for tid in thread_ids}
    if mode == "blp_only":
        return {tid: b_rank[tid] for tid in thread_ids}
    if mode == "rbl_only":
        return {tid: -r_rank[tid] for tid in thread_ids}
    raise ValueError(f"unknown niceness mode {mode!r}")
