"""Centralised meta-controller (paper §3.4, §4).

At the end of every quantum each memory controller sends its monitored
per-thread statistics (service cycles, shadow row-buffer hits, BLP
samples — 4 bytes per hardware context per controller in the paper) to
a central meta-controller.  The meta-controller aggregates them into a
:class:`~repro.core.monitor.QuantumSnapshot`, from which scheduling
policy (clustering, niceness, ranking) is derived and broadcast back so
all controllers agree on one global thread priority order.
"""

from __future__ import annotations

from typing import List

from repro.core.monitor import BehaviorMonitor, QuantumSnapshot


class MetaController:
    """Aggregates per-controller monitors into per-quantum snapshots."""

    def __init__(self, monitor: BehaviorMonitor):
        self.monitor = monitor
        self.quantum_index = 0
        self.history: List[QuantumSnapshot] = []
        #: bytes exchanged per quantum: 4 bytes/context/controller (paper §4)
        self.bytes_exchanged = 0

    def end_quantum(self, thread_mpki: List[float], now: int) -> QuantumSnapshot:
        """Collect, aggregate and reset all controllers' quantum stats."""
        metrics = self.monitor.quantum_metrics(thread_mpki, now)
        snapshot = QuantumSnapshot(
            quantum_index=self.quantum_index, metrics=tuple(metrics)
        )
        self.quantum_index += 1
        self.history.append(snapshot)
        self.bytes_exchanged += (
            4 * self.monitor.num_threads * self.monitor.config.num_channels
        )
        self.monitor.reset_quantum()
        return snapshot
