"""Shuffling algorithms for the bandwidth-sensitive cluster (paper §3.3).

All shufflers maintain a *priority array* of thread ids where the last
position is the highest-ranked (paper Algorithm 2: "Nth position
occupied by highest ranked thread").  ``advance()`` moves to the next
permutation; the system calls it every ``ShuffleInterval`` cycles,
synchronised across all banks and controllers.

Four algorithms are provided:

* :class:`RoundRobinShuffler` — rotate by one (paper's strawman; unfair
  because relative order is preserved, so a thread stuck behind a
  non-leaky thread stays stuck).
* :class:`RandomShuffler` — fresh random permutation per interval.
* :class:`WeightedRandomShuffler` — random permutation where time at
  the top is proportional to OS-assigned weights (paper §3.6).
* :class:`InsertionShuffler` — Algorithm 2: a deterministic
  2N-step cycle of permutations (the intermediate states of an
  insertion sort) in which nicer threads occupy high ranks most of the
  time and the least nice thread only briefly reaches the top.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


class Shuffler:
    """Base class: holds the priority array and common accessors."""

    name = "base"

    def __init__(self, thread_ids: Sequence[int]):
        if not thread_ids:
            raise ValueError("shuffler needs at least one thread")
        if len(set(thread_ids)) != len(thread_ids):
            raise ValueError("duplicate thread ids")
        self._array: List[int] = list(thread_ids)

    def order(self) -> List[int]:
        """Current priority array; last element = highest priority."""
        return list(self._array)

    def rank_of(self) -> Dict[int, int]:
        """Map thread id -> rank (0 = lowest priority)."""
        return {tid: pos for pos, tid in enumerate(self._array)}

    def advance(self) -> None:
        """Move to the next permutation (no-op in the base class)."""


class RoundRobinShuffler(Shuffler):
    """Rotate the priority array by one position per interval."""

    name = "round_robin"

    def advance(self) -> None:
        self._array = self._array[1:] + self._array[:1]


class RandomShuffler(Shuffler):
    """A fresh uniformly random permutation per interval."""

    name = "random"

    def __init__(self, thread_ids: Sequence[int], rng: np.random.Generator):
        super().__init__(thread_ids)
        self._rng = rng

    def advance(self) -> None:
        self._rng.shuffle(self._array)


class WeightedRandomShuffler(Shuffler):
    """Random permutation with weight-proportional time at the top.

    Ranks are drawn from highest to lowest; each draw picks among the
    remaining threads with probability proportional to weight, so the
    expected fraction of intervals a thread spends at the highest
    priority equals its weight share (paper §3.6, weighted shuffling).
    """

    name = "weighted_random"

    def __init__(
        self,
        thread_ids: Sequence[int],
        weights: Sequence[float],
        rng: np.random.Generator,
    ):
        super().__init__(thread_ids)
        if len(weights) != len(thread_ids):
            raise ValueError("one weight per thread required")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self._weights = {tid: float(w) for tid, w in zip(thread_ids, weights)}
        self._rng = rng

    def advance(self) -> None:
        remaining = list(self._array)
        top_to_bottom: List[int] = []
        while remaining:
            w = np.array([self._weights[t] for t in remaining])
            pick = int(self._rng.choice(len(remaining), p=w / w.sum()))
            top_to_bottom.append(remaining.pop(pick))
        self._array = top_to_bottom[::-1]


class InsertionShuffler(Shuffler):
    """Insertion shuffle — Algorithm 2 of the paper.

    The array starts sorted by increasing niceness (nicest thread at
    the highest rank).  Every interval, one step of the following cycle
    is applied, producing the permutation sequence of Figure 3(b):

    * for ``i = N .. 1``: ``decSort(i, N)`` — sort positions i..N by
      decreasing niceness;
    * for ``i = 1 .. N``: ``incSort(1, i)`` — sort positions 1..i by
      increasing niceness.
    """

    name = "insertion"

    def __init__(self, thread_ids: Sequence[int], niceness: Dict[int, int]):
        super().__init__(thread_ids)
        missing = [t for t in thread_ids if t not in niceness]
        if missing:
            raise ValueError(f"no niceness for threads {missing}")
        self._nice = dict(niceness)
        # Initialization: incSort(1, N) — ascending niceness.
        self._array.sort(key=self._key)
        n = len(self._array)
        # Upcoming steps, regenerated each cycle: ('dec', i) then ('inc', i).
        self._steps = [("dec", i) for i in range(n, 0, -1)] + [
            ("inc", i) for i in range(1, n + 1)
        ]
        self._step_idx = 0

    def _key(self, tid: int):
        # Deterministic tie-break on thread id.
        return (self._nice[tid], tid)

    def advance(self) -> None:
        kind, i = self._steps[self._step_idx]
        self._step_idx = (self._step_idx + 1) % len(self._steps)
        if kind == "dec":
            # decSort(i, N): positions i..N (1-based) by decreasing niceness
            head = self._array[: i - 1]
            tail = sorted(self._array[i - 1 :], key=self._key, reverse=True)
            self._array = head + tail
        else:
            # incSort(1, i): positions 1..i by increasing niceness
            head = sorted(self._array[:i], key=self._key)
            self._array = head + self._array[i:]

    @property
    def cycle_length(self) -> int:
        """Number of intervals before the permutation sequence repeats."""
        return len(self._steps)


def should_use_insertion(
    blp_values: Sequence[float],
    rbl_values: Sequence[float],
    num_banks: int,
    shuffle_algo_thresh: float,
) -> bool:
    """Dynamic shuffle selection (paper §3.3, 'Handling Similar Threads').

    Insertion shuffle is used only when threads are sufficiently
    heterogeneous: the largest pairwise BLP difference must exceed
    ``shuffle_algo_thresh * num_banks`` **and** the largest pairwise RBL
    difference must exceed ``shuffle_algo_thresh``; otherwise TCM falls
    back to random shuffling.  Setting the threshold to 1.0 forces
    random shuffling.
    """
    if not blp_values or len(blp_values) < 2:
        return False
    max_d_blp = max(blp_values) - min(blp_values)
    max_d_rbl = max(rbl_values) - min(rbl_values)
    return (
        max_d_blp > shuffle_algo_thresh * num_banks
        and max_d_rbl > shuffle_algo_thresh
    )
