"""Monitoring of per-thread memory access behaviour (paper §3.4).

Implements the three monitors of Table 2:

* **Memory intensity** — L2 MPKI, computed from the cores' retired
  instruction and miss counters each quantum.
* **Row-buffer locality** — a *shadow row-buffer index* per thread per
  bank tracks the row that would be open had the thread run alone; RBL
  is the shadow hit rate over the quantum.
* **Bank-level parallelism** — the time-weighted average number of
  banks holding at least one outstanding request of the thread, while
  the thread has any outstanding request (a continuous version of the
  paper's periodic sampling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import SimConfig
from repro.dram.request import MemoryRequest


@dataclass(frozen=True)
class ThreadMetrics:
    """One thread's monitored behaviour over a quantum."""

    mpki: float
    bw_usage: int      # memory service time: bank-busy cycles attributed
    blp: float         # average banks with outstanding requests
    rbl: float         # shadow row-buffer hit rate


@dataclass(frozen=True)
class QuantumSnapshot:
    """All threads' metrics for one quantum, plus aggregates."""

    quantum_index: int
    metrics: Tuple[ThreadMetrics, ...]

    @property
    def total_bw_usage(self) -> int:
        return sum(m.bw_usage for m in self.metrics)

    @property
    def num_threads(self) -> int:
        return len(self.metrics)


class BehaviorMonitor:
    """Continuously tracks BW usage, shadow-RBL and BLP per thread.

    One instance serves the whole system; internally statistics are
    still attributable per channel (service cycles and shadow rows are
    kept per channel) mirroring the paper's per-controller monitors
    whose results the meta-controller aggregates.
    """

    def __init__(self, config: SimConfig, num_threads: int):
        self.config = config
        self.num_threads = num_threads
        nch = config.num_channels
        # per-channel service cycles: [channel][thread]
        self.service_cycles: List[List[int]] = [
            [0] * num_threads for _ in range(nch)
        ]
        # shadow row-buffer index per (channel, thread, bank)
        self._shadow_rows: List[List[Dict[int, int]]] = [
            [dict() for _ in range(num_threads)] for _ in range(nch)
        ]
        self.shadow_hits: List[List[int]] = [[0] * num_threads for _ in range(nch)]
        self.shadow_accesses: List[List[int]] = [
            [0] * num_threads for _ in range(nch)
        ]
        # BLP accounting (global across banks, per thread)
        self._bank_outstanding: List[Dict[int, int]] = [
            dict() for _ in range(num_threads)
        ]
        self._active_banks: List[int] = [0] * num_threads
        self._outstanding: List[int] = [0] * num_threads
        self._last_update: List[int] = [0] * num_threads
        self._blp_integral: List[float] = [0.0] * num_threads
        self._busy_time: List[int] = [0] * num_threads
        # lifetime copies (for end-of-run reporting)
        self.lifetime_service_cycles: List[int] = [0] * num_threads
        self.lifetime_shadow_hits: List[int] = [0] * num_threads
        self.lifetime_shadow_accesses: List[int] = [0] * num_threads
        self.lifetime_blp_integral: List[float] = [0.0] * num_threads
        self.lifetime_busy_time: List[int] = [0] * num_threads

    def register_metrics(self, registry) -> None:
        """Expose lifetime monitor counters as polled providers."""
        for tid in range(self.num_threads):
            labels = {"tid": tid}
            registry.register(
                "monitor.service_cycles",
                lambda t=tid: self.lifetime_service_cycles[t], labels,
            )
            registry.register(
                "monitor.shadow_hits",
                lambda t=tid: self.lifetime_shadow_hits[t], labels,
            )
            registry.register(
                "monitor.shadow_accesses",
                lambda t=tid: self.lifetime_shadow_accesses[t], labels,
            )
            registry.register(
                "monitor.rbl", lambda t=tid: self.lifetime_rbl(t), labels
            )
            registry.register(
                "monitor.blp", lambda t=tid: self.lifetime_blp(t), labels
            )

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------

    def _advance_blp(self, tid: int, now: int) -> None:
        dt = now - self._last_update[tid]
        if dt > 0 and self._outstanding[tid] > 0:
            self._blp_integral[tid] += self._active_banks[tid] * dt
            self._busy_time[tid] += dt
            self.lifetime_blp_integral[tid] += self._active_banks[tid] * dt
            self.lifetime_busy_time[tid] += dt
        self._last_update[tid] = now

    def on_request_arrival(self, request: MemoryRequest, now: int) -> None:
        """Track shadow row-buffer and BLP at request arrival."""
        tid = request.thread_id
        ch = request.channel_id
        shadow = self._shadow_rows[ch][tid]
        prev = shadow.get(request.bank_id)
        self.shadow_accesses[ch][tid] += 1
        self.lifetime_shadow_accesses[tid] += 1
        if prev == request.row:
            self.shadow_hits[ch][tid] += 1
            self.lifetime_shadow_hits[tid] += 1
        shadow[request.bank_id] = request.row

        self._advance_blp(tid, now)
        gbank = ch * self.config.banks_per_channel + request.bank_id
        counts = self._bank_outstanding[tid]
        counts[gbank] = counts.get(gbank, 0) + 1
        if counts[gbank] == 1:
            self._active_banks[tid] += 1
        self._outstanding[tid] += 1

    def on_request_service(
        self, request: MemoryRequest, busy_cycles: int
    ) -> None:
        """Attribute bank-busy cycles (memory service time) to the thread."""
        tid = request.thread_id
        self.service_cycles[request.channel_id][tid] += busy_cycles
        self.lifetime_service_cycles[tid] += busy_cycles

    def on_request_complete(self, request: MemoryRequest, now: int) -> None:
        """Track BLP at request completion."""
        tid = request.thread_id
        self._advance_blp(tid, now)
        gbank = (
            request.channel_id * self.config.banks_per_channel + request.bank_id
        )
        counts = self._bank_outstanding[tid]
        counts[gbank] -= 1
        if counts[gbank] == 0:
            del counts[gbank]
            self._active_banks[tid] -= 1
        self._outstanding[tid] -= 1

    # ------------------------------------------------------------------
    # quantum accounting
    # ------------------------------------------------------------------

    def quantum_metrics(
        self, thread_mpki: List[float], now: int
    ) -> List[ThreadMetrics]:
        """Per-thread metrics for the quantum ending at ``now``."""
        metrics = []
        for tid in range(self.num_threads):
            self._advance_blp(tid, now)
            bw = sum(self.service_cycles[ch][tid] for ch in range(len(self.service_cycles)))
            accesses = sum(
                self.shadow_accesses[ch][tid]
                for ch in range(len(self.shadow_accesses))
            )
            hits = sum(
                self.shadow_hits[ch][tid] for ch in range(len(self.shadow_hits))
            )
            rbl = hits / accesses if accesses else 0.0
            busy = self._busy_time[tid]
            blp = self._blp_integral[tid] / busy if busy else 0.0
            metrics.append(
                ThreadMetrics(
                    mpki=thread_mpki[tid], bw_usage=bw, blp=blp, rbl=rbl
                )
            )
        return metrics

    def reset_quantum(self) -> None:
        """Clear per-quantum counters (shadow/row state is retained)."""
        for ch in range(len(self.service_cycles)):
            self.service_cycles[ch] = [0] * self.num_threads
            self.shadow_hits[ch] = [0] * self.num_threads
            self.shadow_accesses[ch] = [0] * self.num_threads
        self._blp_integral = [0.0] * self.num_threads
        self._busy_time = [0] * self.num_threads

    # ------------------------------------------------------------------
    # lifetime reporting
    # ------------------------------------------------------------------

    def lifetime_rbl(self, tid: int) -> float:
        """Whole-run shadow row-buffer hit rate for ``tid``."""
        acc = self.lifetime_shadow_accesses[tid]
        return self.lifetime_shadow_hits[tid] / acc if acc else 0.0

    def lifetime_blp(self, tid: int) -> float:
        """Whole-run average bank-level parallelism for ``tid``."""
        busy = self.lifetime_busy_time[tid]
        return self.lifetime_blp_integral[tid] / busy if busy else 0.0
