"""TCM — Thread Cluster Memory scheduling (the paper's contribution).

Every quantum the meta-controller's snapshot drives:

1. **Clustering** (Algorithm 1): the least memory-intensive threads,
   up to ``ClusterThresh`` of total bandwidth usage, form the
   latency-sensitive cluster; the rest are bandwidth-sensitive.
2. **Latency-cluster ranking**: strict, lowest (weight-scaled) MPKI
   first — light threads are always serviced promptly.
3. **Niceness** for the bandwidth cluster: ascending-BLP rank minus
   ascending-RBL rank (fragile threads are nice, hostile ones are not).
4. **Shuffling**: every ``ShuffleInterval`` cycles the bandwidth
   cluster's priority order is perturbed — by *insertion shuffle* when
   threads are heterogeneous (max ΔBLP > thresh × NumBanks and
   max ΔRBL > thresh), by *random shuffle* otherwise; both are
   synchronised across all banks and controllers.

Request prioritisation (Algorithm 3): higher-ranked thread first
(latency cluster above bandwidth cluster), then row-buffer hits, then
oldest.  OS thread weights scale MPKI in the latency cluster and select
weighted shuffling in the bandwidth cluster (paper §3.6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import TCMParams
from repro.core.clustering import ClusteringResult, cluster_threads
from repro.core.monitor import QuantumSnapshot
from repro.core.niceness import compute_niceness
from repro.core.shuffle import (
    InsertionShuffler,
    RandomShuffler,
    RoundRobinShuffler,
    Shuffler,
    WeightedRandomShuffler,
    should_use_insertion,
)
from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler

_TIMER_KEY = "tcm-shuffle"


class TCMScheduler(Scheduler):
    """Thread Cluster Memory scheduler."""

    name = "TCM"
    PRIORITY_COMPONENTS = ("rank", "row_hit", "age")

    def __init__(self, params: Optional[TCMParams] = None):
        super().__init__()
        self.params = params or TCMParams()
        if self.params.shuffle_mode not in (
            "dynamic",
            "insertion",
            "random",
            "round_robin",
        ):
            raise ValueError(f"unknown shuffle mode {self.params.shuffle_mode!r}")
        if self.params.niceness_mode not in (
            "blp_minus_rbl",
            "blp_only",
            "rbl_only",
        ):
            raise ValueError(
                f"unknown niceness mode {self.params.niceness_mode!r}"
            )
        # one rank map per channel; with sync_shuffle (the paper's
        # design) every entry references the same dict
        self._ranks: List[Dict[int, int]] = []
        self._clustering: Optional[ClusteringResult] = None
        self._shufflers: List[Shuffler] = []
        self._rng: Optional[np.random.Generator] = None
        self._weights: Tuple[int, ...] = ()
        # instrumentation
        self.shuffle_algo_history: List[str] = []
        self.cluster_history: List[ClusteringResult] = []
        self.shuffles_performed = 0

    def register_metrics(self, registry) -> None:
        super().register_metrics(registry)
        registry.register("tcm.quanta", lambda: len(self.cluster_history))
        registry.register("tcm.shuffles", lambda: self.shuffles_performed)
        registry.register(
            "tcm.latency_cluster_size",
            lambda: (len(self._clustering.latency_cluster)
                     if self._clustering is not None else 0),
        )

    def prof_points(self):
        # the shuffle path (rank rebuild on every shuffle tick) is
        # TCM's likely hot spot at scale — surface it separately
        return super().prof_points() + [
            ("sched.rank[TCM]", "_rebuild_ranks"),
            ("sched.pick_shuffler[TCM]", "_pick_shuffler"),
        ]

    def epoch_annotations(self, thread_id: int) -> dict:
        if self._clustering is None:
            return {}
        return {
            "cluster": self._clustering.contains(thread_id),
            "rank": self.current_rank(thread_id),
        }

    def state_digest(self) -> dict:
        digest = super().state_digest()
        if self._clustering is None:
            digest["clustering"] = None
        else:
            digest["clustering"] = {
                "latency": list(self._clustering.latency_cluster),
                "bandwidth": list(self._clustering.bandwidth_cluster),
            }
        digest.update(
            ranks=[sorted(ranks.items()) for ranks in self._ranks],
            shuffle_orders=[s.order() for s in self._shufflers],
            shuffles_performed=self.shuffles_performed,
            shuffle_algo_history=list(self.shuffle_algo_history),
        )
        if self._rng is not None:
            # the shuffle RNG cursor: PCG64 state words, so two runs
            # that consumed a different number of draws digest apart
            state = self._rng.bit_generator.state
            digest["rng"] = {
                "state": state["state"]["state"],
                "inc": state["state"]["inc"],
                "has_uint32": state["has_uint32"],
                "uinteger": state["uinteger"],
            }
        return digest

    def on_attach(self) -> None:
        n = self.system.workload.num_threads
        self._weights = (
            self.params.thread_weights
            or self.system.workload.weights
            or tuple([1] * n)
        )
        if len(self._weights) != n:
            raise ValueError(
                f"{len(self._weights)} thread weights for {n} threads"
            )
        self._rng = np.random.default_rng((self.system.seed, 0x7C4))
        self._ranks = [dict() for _ in range(self.system.config.num_channels)]
        self._clustering = None
        self._shufflers = []
        self.system.schedule_timer(self.params.shuffle_interval, _TIMER_KEY)

    # ------------------------------------------------------------------
    # quantum boundary: cluster, rank, choose shuffle algorithm
    # ------------------------------------------------------------------

    def _pick_shuffler(
        self,
        bandwidth: Tuple[int, ...],
        snapshot: QuantumSnapshot,
        rng: np.random.Generator,
        record: bool,
    ) -> Shuffler:
        mode = self.params.shuffle_mode
        bw_weights = [self._weights[tid] for tid in bandwidth]
        weighted = any(w != bw_weights[0] for w in bw_weights)

        def log(name: str) -> None:
            if record:
                self.shuffle_algo_history.append(name)

        if mode == "round_robin":
            log("round_robin")
            return RoundRobinShuffler(bandwidth)
        if weighted:
            # Weighted shuffling overrides the insertion/random choice
            # so that time at the top tracks OS weights (paper §3.6).
            log("weighted_random")
            return WeightedRandomShuffler(bandwidth, bw_weights, rng)
        if mode == "random":
            log("random")
            return RandomShuffler(bandwidth, rng)
        blp = [snapshot.metrics[tid].blp for tid in bandwidth]
        rbl = [snapshot.metrics[tid].rbl for tid in bandwidth]
        use_insertion = mode == "insertion" or (
            mode == "dynamic"
            and should_use_insertion(
                blp,
                rbl,
                self.system.config.num_banks,
                self.params.shuffle_algo_thresh,
            )
        )
        if use_insertion:
            niceness = compute_niceness(
                snapshot, bandwidth, self.params.niceness_mode
            )
            log("insertion")
            return InsertionShuffler(bandwidth, niceness)
        log("random")
        return RandomShuffler(bandwidth, rng)

    def on_quantum(self, snapshot: QuantumSnapshot, now: int) -> None:
        clustering = cluster_threads(
            snapshot, self.params.cluster_thresh, self._weights
        )
        self._clustering = clustering
        self.cluster_history.append(clustering)
        bandwidth = clustering.bandwidth_cluster
        self._shufflers = []
        if bandwidth:
            if self.params.sync_shuffle:
                self._shufflers = [
                    self._pick_shuffler(bandwidth, snapshot, self._rng, True)
                ]
            else:
                # Ablation: each controller shuffles independently —
                # desynchronised ranks destroy bank-level parallelism.
                nch = self.system.config.num_channels
                for channel in range(nch):
                    rng = np.random.default_rng(
                        (self.system.seed, 0x7C4, channel)
                    )
                    shuffler = self._pick_shuffler(
                        bandwidth, snapshot, rng, channel == 0
                    )
                    for _ in range(channel):  # desync deterministic modes
                        shuffler.advance()
                    self._shufflers.append(shuffler)
        self._rebuild_ranks()
        self.trace(
            "cluster", now,
            quantum=snapshot.quantum_index,
            latency=list(clustering.latency_cluster),
            bandwidth=list(clustering.bandwidth_cluster),
        )

    def _rebuild_ranks(self) -> None:
        """Per-channel rank maps: latency cluster strictly above bandwidth."""
        if self._clustering is None:
            return
        latency = self._clustering.latency_cluster
        n_bw = len(self._clustering.bandwidth_cluster)
        nch = self.system.config.num_channels

        def build(shuffler: Optional[Shuffler]) -> Dict[int, int]:
            rank: Dict[int, int] = {}
            if shuffler is not None:
                # shuffler order: last element = highest within cluster
                for pos, tid in enumerate(shuffler.order()):
                    rank[tid] = pos
            # latency cluster is ordered most-prioritised first
            for pos, tid in enumerate(latency):
                rank[tid] = n_bw + (len(latency) - pos)
            return rank

        if not self._shufflers:
            shared = build(None)
            self._ranks = [shared] * nch
        elif self.params.sync_shuffle:
            shared = build(self._shufflers[0])
            self._ranks = [shared] * nch
        else:
            self._ranks = [build(s) for s in self._shufflers]

    # ------------------------------------------------------------------
    # shuffling timer
    # ------------------------------------------------------------------

    def on_timer(self, now: int, key: str) -> None:
        if key != _TIMER_KEY:
            return
        if self._shufflers:
            for shuffler in self._shufflers:
                shuffler.advance()
            self._rebuild_ranks()
            self.shuffles_performed += 1
            self.trace(
                "shuffle", now,
                algo=(self.shuffle_algo_history[-1]
                      if self.shuffle_algo_history else "none"),
                order=list(self._shufflers[0].order()),
            )
        self.system.schedule_timer(now + self.params.shuffle_interval, _TIMER_KEY)

    # ------------------------------------------------------------------
    # Algorithm 3: request prioritisation
    # ------------------------------------------------------------------

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        if self._ranks:
            rank = self._ranks[request.channel_id].get(request.thread_id, 0)
        else:
            rank = 0
        return (rank, row_hit, -request.arrival)

    def explain_components(
        self, request: MemoryRequest, row_hit: bool, now: int, key=None
    ) -> dict:
        components = super().explain_components(
            request, row_hit, now, key
        )
        if self._clustering is not None:
            components["cluster"] = self._clustering.contains(
                request.thread_id
            )
        return components

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and benches)
    # ------------------------------------------------------------------

    @property
    def clustering(self) -> Optional[ClusteringResult]:
        """Most recent clustering decision."""
        return self._clustering

    @property
    def _shuffler(self) -> Optional[Shuffler]:
        """The global shuffler (sync mode), if any."""
        return self._shufflers[0] if self._shufflers else None

    def current_rank(self, thread_id: int, channel: int = 0) -> int:
        """Current rank of a thread (larger = higher priority)."""
        if not self._ranks:
            return 0
        return self._ranks[channel].get(thread_id, 0)
