"""Thread clustering — Algorithm 1 of the paper.

At the beginning of every quantum, threads are sorted by memory
intensity (MPKI); the least intensive threads are moved into the
latency-sensitive cluster while their cumulative bandwidth usage (from
the *previous* quantum) stays within ``ClusterThresh`` times the total;
the rest form the bandwidth-sensitive cluster.

Thread weights (paper §3.6) are honoured by scaling each thread's MPKI
down by its weight, making heavily weighted threads more likely to be
ranked higher within the latency-sensitive cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.monitor import QuantumSnapshot


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of one clustering pass.

    ``latency_cluster`` is ordered by *descending priority* (least
    memory-intensive first); ``bandwidth_cluster`` holds the remaining
    thread ids (unordered — its priority order comes from shuffling).
    """

    latency_cluster: Tuple[int, ...]
    bandwidth_cluster: Tuple[int, ...]

    def contains(self, thread_id: int) -> str:
        """Which cluster a thread is in ('latency' or 'bandwidth')."""
        if thread_id in self.latency_cluster:
            return "latency"
        if thread_id in self.bandwidth_cluster:
            return "bandwidth"
        raise KeyError(f"thread {thread_id} not clustered")


def cluster_threads(
    snapshot: QuantumSnapshot,
    cluster_thresh: float,
    weights: Optional[Sequence[int]] = None,
) -> ClusteringResult:
    """Group threads into latency- and bandwidth-sensitive clusters.

    Faithful implementation of Algorithm 1: walk threads in increasing
    (weight-scaled) MPKI order, accumulating bandwidth usage; a thread
    joins the latency-sensitive cluster only while the running total
    stays within ``cluster_thresh * TotalBWusage``.

    Args:
        snapshot: previous quantum's monitored metrics.
        cluster_thresh: fraction of total bandwidth the latency cluster
            may consume (paper default 4/24 for a 24-thread system).
        weights: optional OS-assigned thread weights (>= 1 each).

    Returns:
        The two clusters; latency cluster ordered by ascending scaled
        MPKI (i.e. descending priority).
    """
    if not 0.0 <= cluster_thresh <= 1.0:
        raise ValueError("cluster_thresh must be in [0, 1]")
    n = snapshot.num_threads
    if weights is not None and len(weights) != n:
        raise ValueError(f"{len(weights)} weights for {n} threads")

    def scaled_mpki(tid: int) -> float:
        m = snapshot.metrics[tid].mpki
        return m / weights[tid] if weights is not None else m

    total_bw = snapshot.total_bw_usage
    budget = cluster_thresh * total_bw
    order = sorted(range(n), key=lambda tid: (scaled_mpki(tid), tid))
    latency: List[int] = []
    sum_bw = 0
    for tid in order:
        sum_bw += snapshot.metrics[tid].bw_usage
        if sum_bw <= budget:
            latency.append(tid)
        else:
            break
    latency_set = set(latency)
    bandwidth = tuple(tid for tid in range(n) if tid not in latency_set)
    return ClusteringResult(
        latency_cluster=tuple(latency), bandwidth_cluster=bandwidth
    )
