"""TCM — the paper's primary contribution.

Subpackage contents:

* :mod:`repro.core.monitor` — hardware monitors for memory intensity,
  bank-level parallelism and row-buffer locality (paper §3.4, Table 2).
* :mod:`repro.core.meta` — the centralised meta-controller aggregating
  per-controller statistics every quantum.
* :mod:`repro.core.clustering` — Algorithm 1 (ClusterThresh grouping).
* :mod:`repro.core.niceness` — the niceness metric.
* :mod:`repro.core.shuffle` — insertion / random / round-robin shuffles
  (Algorithm 2, Figure 3).
* :mod:`repro.core.tcm` — the TCM scheduler (Algorithm 3).
* :mod:`repro.core.hardware_cost` — Table 2 storage-cost model.
"""

from repro.core.clustering import ClusteringResult, cluster_threads
from repro.core.meta import MetaController
from repro.core.monitor import BehaviorMonitor, QuantumSnapshot, ThreadMetrics
from repro.core.niceness import compute_niceness
from repro.core.shuffle import (
    InsertionShuffler,
    RandomShuffler,
    RoundRobinShuffler,
    WeightedRandomShuffler,
)
from repro.core.tcm import TCMScheduler

__all__ = [
    "BehaviorMonitor",
    "ClusteringResult",
    "InsertionShuffler",
    "MetaController",
    "QuantumSnapshot",
    "RandomShuffler",
    "RoundRobinShuffler",
    "TCMScheduler",
    "ThreadMetrics",
    "WeightedRandomShuffler",
    "cluster_threads",
    "compute_niceness",
]
