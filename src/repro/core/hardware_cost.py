"""Hardware storage-cost model (paper Table 2 and §4).

Computes the per-controller storage (in bits) required by TCM's
monitors, parameterised by thread count, bank count, queue depth and
counter widths.  With the paper's baseline (24 threads, 4 banks per
controller) the total is just under 4 Kbits per controller, or under
0.5 Kbits if pure random shuffling is used (no BLP/RBL monitoring).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _log2_ceil(value: int) -> int:
    if value < 2:
        return 1
    return math.ceil(math.log2(value))


@dataclass(frozen=True)
class StorageCost:
    """Bit counts of each Table 2 monitor, per memory controller."""

    mpki_counter: int
    load_counter: int
    blp_counter: int
    blp_average: int
    shadow_row_index: int
    shadow_row_hits: int

    @property
    def intensity_bits(self) -> int:
        return self.mpki_counter

    @property
    def blp_bits(self) -> int:
        return self.load_counter + self.blp_counter + self.blp_average

    @property
    def rbl_bits(self) -> int:
        return self.shadow_row_index + self.shadow_row_hits

    @property
    def total_bits(self) -> int:
        return self.intensity_bits + self.blp_bits + self.rbl_bits

    @property
    def random_shuffle_bits(self) -> int:
        """Cost when pure random shuffling is used: only MPKI is needed."""
        return self.intensity_bits


def storage_cost(
    num_threads: int = 24,
    num_banks: int = 4,
    mpki_max: int = 1024,
    queue_max: int = 64,
    num_rows: int = 16384,
    count_max: int = 65536,
) -> StorageCost:
    """Table 2 storage bits for the given configuration.

    Defaults reproduce the paper's numbers exactly: MPKI counters
    240 bits; load-counter 576, BLP-counter 48, BLP-average 48;
    shadow row-buffer index 1344 and shadow-hit counters 1536 —
    3792 bits total (< 4 Kbits), 240 bits (< 0.5 Kbits) if pure
    random shuffling removes the BLP/RBL monitors.
    """
    if num_threads < 1 or num_banks < 1:
        raise ValueError("need at least one thread and one bank")
    mpki_counter = num_threads * _log2_ceil(mpki_max)
    load_counter = num_threads * num_banks * _log2_ceil(queue_max)
    blp_counter = num_threads * _log2_ceil(num_banks)
    blp_average = num_threads * _log2_ceil(num_banks)
    shadow_row_index = num_threads * num_banks * _log2_ceil(num_rows)
    shadow_row_hits = num_threads * num_banks * _log2_ceil(count_max)
    return StorageCost(
        mpki_counter=mpki_counter,
        load_counter=load_counter,
        blp_counter=blp_counter,
        blp_average=blp_average,
        shadow_row_index=shadow_row_index,
        shadow_row_hits=shadow_row_hits,
    )
