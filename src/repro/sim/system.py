"""The simulated system: cores + controllers + scheduler + meta-controller.

An event-driven executor advances the system from memory event to
memory event (episode issues, bank-service completions, request
completions, quantum boundaries, scheduler timers).  Between events,
cores compute and banks service requests; nothing else can change
scheduling state, so the event granularity loses no accuracy relative
to a per-cycle loop while running orders of magnitude faster.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SimConfig
from repro.core.meta import MetaController
from repro.core.monitor import BehaviorMonitor
from repro.cpu.thread import ThreadModel
from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest
from repro.engine import resolve_backend
from repro.schedulers.base import Scheduler
from repro.telemetry.registry import MetricsRegistry
from repro.workloads.mixes import Workload

def _benchmark_streams(workload: Workload) -> List[int]:
    """Per-thread rng stream ids: (benchmark identity, occurrence index).

    A benchmark instance behaves identically whichever core it lands
    on; duplicated instances of the same benchmark within a workload
    get distinct streams so they decorrelate.
    """
    import zlib

    seen: Dict[str, int] = {}
    streams = []
    for name in workload.benchmark_names:
        occurrence = seen.get(name, 0)
        seen[name] = occurrence + 1
        streams.append((zlib.crc32(name.encode()) << 4) + occurrence)
    return streams


# event kinds
_EV_ISSUE = 0        # a thread's next miss reached its compute gate
_EV_BANK_FREE = 1    # a bank finished its burst; schedule next request
_EV_DONE = 2         # a request's data arrived at the core
_EV_QUANTUM = 3      # quantum boundary
_EV_TIMER = 4        # scheduler-requested timer
_EV_PHIT = 5         # a demand miss hit the prefetch buffer
_EV_SAMPLE = 6       # telemetry epoch-sampler tick

#: Sample events sort after every other event at the same cycle (their
#: heap sequence is offset far beyond any reachable ordinary sequence),
#: so an epoch sample aligned with a quantum boundary observes the
#: *post*-quantum state (fresh clustering, fresh ranks).
_SAMPLE_SEQ_BASE = 1 << 60


class System:
    """One simulated CMP + memory subsystem executing one workload."""

    def __init__(
        self,
        workload: Workload,
        scheduler: Scheduler,
        config: Optional[SimConfig] = None,
        seed: Optional[int] = None,
        trace_recorder=None,
        telemetry=None,
    ):
        self.config = config or SimConfig()
        self.workload = workload
        self.seed = self.config.seed if seed is None else seed
        weights = workload.weights or tuple([1] * workload.num_threads)
        #: resolved engine backend for this run ("reference" or "fast");
        #: the two are bit-identical by contract (see repro.engine), so
        #: the choice never reaches cache keys or results
        self.backend = resolve_backend(self.config.backend)
        if self.backend == "fast":
            from repro.engine.cpu import build_cpu_batch
            from repro.engine.wheel import TimingWheel

            self._batch, self.threads = build_cpu_batch(
                workload.specs,
                self.config,
                self.seed,
                weights,
                _benchmark_streams(workload),
            )
            self._wheel = TimingWheel()
        else:
            self._batch = None
            self._wheel = None
            self.threads: List[ThreadModel] = [
                ThreadModel(
                    tid,
                    spec,
                    self.config,
                    self.seed,
                    weight=weights[tid],
                    stream=stream,
                )
                for tid, (spec, stream) in enumerate(
                    zip(workload.specs, _benchmark_streams(workload))
                )
            ]
        self.channels: List[Channel] = [
            Channel(ch, self.config) for ch in range(self.config.num_channels)
        ]
        self.monitor = BehaviorMonitor(self.config, workload.num_threads)
        self.meta = MetaController(self.monitor)
        self.scheduler = scheduler
        self.now = 0
        self._events: List[Tuple[int, int, int, object, int]] = []
        self._seq = 0
        self._latency_sum: List[int] = [0] * workload.num_threads
        self._latency_count: List[int] = [0] * workload.num_threads
        self.quantum_count = 0
        #: scheduler decisions taken (requests granted service)
        self.sched_decisions = 0
        #: per-quantum IPC of every thread (one tuple per quantum)
        self.ipc_timeline: List[Tuple[float, ...]] = []
        self.trace_recorder = trace_recorder
        self._wb_rng = np.random.default_rng((self.seed, 0x3B))
        # telemetry: the registry always exists (providers are polled,
        # so registration is init-only and per-event cost is zero);
        # tracer/sampler are bound only when a Telemetry bundle is
        # passed, leaving one is-None branch per emit site otherwise.
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.bind(self)
        self.metrics: MetricsRegistry = (
            telemetry.registry
            if telemetry is not None and telemetry.registry is not None
            else MetricsRegistry()
        )
        self._tracer = (
            telemetry.tracer
            if telemetry is not None
            and telemetry.tracer is not None
            and telemetry.tracer.enabled
            else None
        )
        self._sampler = telemetry.sampler if telemetry is not None else None
        # span collector (repro.obs): bound before scheduler attach so a
        # policy that consumes interference accounting (STFM) shares it;
        # None costs one branch per emit site, like the tracer.
        spans = getattr(telemetry, "spans", None)
        self._spans = spans.bind(self) if spans is not None else None
        # self-profiler (repro.prof): attached per-instance via
        # Profiler.attach, exactly like the invariant oracle; when None
        # (the default everywhere) the run pays two branches total.
        self._prof = None
        # divergence probe (repro.diverge): bound via StateProbe.attach;
        # None costs one branch per dispatched event and per grant.
        self._probe = None
        # explain collector (repro.explain): bound via attach_explain;
        # None costs one branch per lifecycle hook and per grant.
        self._explain = None
        self._started = False
        self._sample_period = 0
        self._register_metrics()
        if self.config.prefetch_degree > 0:
            from repro.cpu.prefetch import StreamPrefetcher

            self.prefetchers: Optional[List[StreamPrefetcher]] = [
                StreamPrefetcher(self.config.prefetch_degree)
                for _ in range(workload.num_threads)
            ]
        else:
            self.prefetchers = None
        scheduler.attach(self)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def _register_metrics(self) -> None:
        """Register polled providers over every component's counters."""
        registry = self.metrics
        for channel in self.channels:
            channel.register_metrics(registry)
        for thread in self.threads:
            thread.register_metrics(registry)
        self.monitor.register_metrics(registry)
        registry.register("sim.now", lambda: self.now)
        registry.register("sim.quanta", lambda: self.quantum_count)
        registry.register("scheduler.decisions",
                          lambda: self.sched_decisions)

    def _push_sample(self, time: int) -> None:
        """Queue an epoch-sampler tick sorting after all peers at ``time``."""
        wheel = self._wheel
        if wheel is not None:
            wheel.push_sample(time, _EV_SAMPLE)
            return
        self._seq += 1
        heapq.heappush(
            self._events,
            (time, _SAMPLE_SEQ_BASE + self._seq, _EV_SAMPLE, None, 0),
        )

    def _take_sample(self) -> None:
        sample = self._sampler.sample(self, self.now)
        if self._tracer is not None:
            self._tracer.emit(
                "epoch", self.now, cycle=self.now, threads=sample.threads
            )
        self._push_sample(self.now + self._sample_period)

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------

    def _push(self, time: int, kind: int, payload: object = None, aux: int = 0):
        wheel = self._wheel
        if wheel is not None:
            wheel.push(time, kind, payload, aux)
            return
        self._seq += 1
        heapq.heappush(self._events, (time, self._seq, kind, payload, aux))

    def schedule_timer(self, time: int, key: str) -> None:
        """Schedulers use this to receive ``on_timer`` callbacks."""
        self._push(time, _EV_TIMER, key)

    # ------------------------------------------------------------------
    # simulation actions
    # ------------------------------------------------------------------

    def _issue_miss(self, tid: int) -> None:
        """The thread's compute gate fired: issue its next miss if possible."""
        thread = self.threads[tid]
        location = thread.try_issue(self.now)
        if location is None:
            # Window full: the retry happens at the next completion.
            return
        channel_id, bank_id, row = location
        if self.prefetchers is not None:
            prefetcher = self.prefetchers[tid]
            # keep the prefetcher topped up whichever path the miss takes
            self._inject_prefetches(tid, prefetcher.observe(location))
            if prefetcher.consume(location):
                # the block was prefetched: completes at on-chip latency
                from repro.cpu.prefetch import PREFETCH_HIT_LATENCY

                self._push(
                    self.now + PREFETCH_HIT_LATENCY, _EV_PHIT, tid,
                    thread.issued,
                )
                self._push(self.now + thread.issue_gap(), _EV_ISSUE, tid)
                return
            if prefetcher.try_merge(location, thread.issued):
                # merged into an in-flight prefetch (MSHR merge): no new
                # DRAM request; completes when the prefetch fills
                self._push(self.now + thread.issue_gap(), _EV_ISSUE, tid)
                return
        if self.trace_recorder is not None:
            # misses are positioned on the thread's virtual program
            # time, so recorded traces are free of contention stalls
            self.trace_recorder.record(
                tid, thread.spec.name, thread.program_time,
                channel_id, bank_id, row,
            )
        request = MemoryRequest(
            thread_id=tid,
            channel_id=channel_id,
            bank_id=bank_id,
            row=row,
            arrival=self.now,
            episode_id=thread.issued,
        )
        self.channels[channel_id].enqueue(request)
        if self._spans is not None:
            self._spans.on_arrival(request, self.now)
        self.monitor.on_request_arrival(request, self.now)
        self.scheduler.on_request_arrival(request, self.now)
        if self._explain is not None:
            self._explain.on_arrival(request, self.now)
        if (
            self.config.model_writes
            and self._wb_rng.random() < self.config.writeback_ratio
        ):
            # the miss evicts a dirty line: buffer its writeback (same
            # bank as the fill; the evicted line's row is unrelated)
            writeback = MemoryRequest(
                thread_id=tid,
                channel_id=channel_id,
                bank_id=bank_id,
                row=int(self._wb_rng.integers(self.config.num_rows)),
                arrival=self.now,
                is_write=True,
            )
            self.channels[channel_id].enqueue_write(writeback)
        self._try_schedule(channel_id, bank_id)
        self._push(self.now + thread.issue_gap(), _EV_ISSUE, tid)

    def _inject_prefetches(self, tid: int, locations) -> None:
        """Enqueue prefetch requests emitted by a thread's prefetcher."""
        for p_channel, p_bank, p_row in locations:
            prefetch = MemoryRequest(
                thread_id=tid,
                channel_id=p_channel,
                bank_id=p_bank,
                row=p_row,
                arrival=self.now,
                is_prefetch=True,
            )
            self.channels[p_channel].enqueue(prefetch)
            if self._spans is not None:
                self._spans.on_arrival(prefetch, self.now)
            self.scheduler.on_request_arrival(prefetch, self.now)
            if self._explain is not None:
                self._explain.on_arrival(prefetch, self.now)
            self._try_schedule(p_channel, p_bank)

    def _try_schedule(self, channel_id: int, bank_id: int) -> None:
        channel = self.channels[channel_id]
        bank = channel.banks[bank_id]
        if not bank.is_idle(self.now):
            return
        if not channel.queues[bank_id]:
            # reads first (paper Table 3); drain a write when the bank
            # would otherwise idle
            if self.config.model_writes:
                write = channel.next_write_for(bank_id)
                if write is not None:
                    access = channel.start_write_service(write, self.now)
                    if self._spans is not None:
                        self._spans.on_write_scheduled(write, access, self.now)
                    if self._tracer is not None:
                        self._tracer.emit(
                            "dram_cmd", self.now,
                            ch=channel_id, bank=bank_id, row=write.row,
                            tid=write.thread_id, kind=access.kind,
                            start=self.now, end=access.data_end, write=True,
                        )
                    self._push(
                        access.data_end, _EV_BANK_FREE, channel_id, bank_id
                    )
            return
        queued = len(channel.queues[bank_id])
        request = self.scheduler.select(channel, bank_id, self.now)
        if self._explain is not None:
            # before start_service: the candidate queue is still intact
            self._explain.on_decision(channel, bank_id, request, self.now)
        access, completion = channel.start_service(request, self.now)
        busy_cycles = access.data_end - self.now
        self.sched_decisions += 1
        if self._probe is not None:
            self._probe.on_decision(
                self.now, channel_id, bank_id, request, queued, access
            )
        if self._tracer is not None:
            self._tracer.emit(
                "sched_decision", self.now,
                ch=channel_id, bank=bank_id, tid=request.thread_id,
                queued=queued, row_hit=access.is_row_hit,
            )
            self._tracer.emit(
                "dram_cmd", self.now,
                ch=channel_id, bank=bank_id, row=request.row,
                tid=request.thread_id, kind=access.kind,
                start=self.now, end=access.data_end,
            )
        self.monitor.on_request_service(request, busy_cycles)
        if self._spans is not None:
            self._spans.on_scheduled(
                request, channel.queues[bank_id], access, completion, self.now
            )
        self.scheduler.on_request_scheduled(
            request, channel.queues[bank_id], busy_cycles, self.now
        )
        if self._explain is not None:
            self._explain.on_grant(
                request, channel.queues[bank_id], busy_cycles, self.now
            )
        self._push(access.data_end, _EV_BANK_FREE, channel_id, bank_id)
        self._push(completion, _EV_DONE, request)

    def _complete_request(self, request: MemoryRequest) -> None:
        tid = request.thread_id
        if self._spans is not None:
            # before the scheduler's hook, so a policy reading the shared
            # accounting (STFM's re-evaluation) sees this request included
            self._spans.on_complete(request, self.now)
        if request.is_prefetch:
            # prefetch fills go to the prefetch buffer, waking any
            # demand misses that merged with this prefetch
            self.scheduler.on_request_complete(request, self.now)
            if self._explain is not None:
                self._explain.on_complete(request, self.now)
            if self.prefetchers is not None:
                woken = self.prefetchers[tid].fill(
                    (request.channel_id, request.bank_id, request.row)
                )
                for issue_id in woken:
                    if self.threads[tid].on_request_completed(issue_id):
                        self._issue_miss(tid)
            return
        self.monitor.on_request_complete(request, self.now)
        self.scheduler.on_request_complete(request, self.now)
        if self._explain is not None:
            self._explain.on_complete(request, self.now)
        self._latency_sum[tid] += self.now - request.arrival
        self._latency_count[tid] += 1
        if self.threads[tid].on_request_completed(request.episode_id):
            # The window was stalled on this completion; the next miss's
            # compute is already done, so it issues immediately.
            self._issue_miss(tid)

    def _quantum_boundary(self) -> None:
        mpki = [t.stats.quantum_mpki() for t in self.threads]
        self.ipc_timeline.append(
            tuple(
                t.stats.quantum_instructions / self.config.quantum_cycles
                for t in self.threads
            )
        )
        snapshot = self.meta.end_quantum(mpki, self.now)
        if self._tracer is not None:
            self._tracer.emit(
                "quantum", self.now,
                index=snapshot.quantum_index,
                mpki=[m.mpki for m in snapshot.metrics],
                bw=[m.bw_usage for m in snapshot.metrics],
                blp=[m.blp for m in snapshot.metrics],
                rbl=[m.rbl for m in snapshot.metrics],
            )
        for thread in self.threads:
            thread.stats.reset_quantum()
        self.quantum_count += 1
        self.scheduler.on_quantum(snapshot, self.now)
        if self._explain is not None:
            self._explain.on_quantum(snapshot, self.now)
        self._push(self.now + self.config.quantum_cycles, _EV_QUANTUM)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def start_run(self) -> None:
        """Prime the event queue and begin-of-run observers.

        First stage of :meth:`run`.  Callable at most once per system:
        the initial issue gaps consume RNG draws, so re-priming would
        change the simulated outcome.  Exposed separately so the
        divergence tooling (:mod:`repro.diverge`) can advance a run
        checkpoint-by-checkpoint via :meth:`advance`.
        """
        if self._started:
            raise RuntimeError("System.start_run() called twice")
        self._started = True
        for tid, thread in enumerate(self.threads):
            self._push(thread.issue_gap(), _EV_ISSUE, tid)
        self._push(self.config.quantum_cycles, _EV_QUANTUM)
        if self._tracer is not None:
            self._tracer.emit(
                "run_begin", self.now,
                workload=self.workload.name,
                scheduler=self.scheduler.name,
                seed=self.seed,
                threads=self.workload.num_threads,
            )
        if self._sampler is not None:
            self._sample_period = self._sampler.resolve_period(self)
            self._push_sample(self._sample_period)
        if self._prof is not None:
            self._prof.begin_run(self)

    def advance(self, limit: int) -> None:
        """Dispatch every pending event with ``time <= limit``.

        Middle stage of :meth:`run`; resumable — repeated calls with
        increasing limits drain the run in windows, and the state after
        ``advance(a); advance(b)`` is bit-identical to ``advance(b)``
        (the loop condition is a pure time bound on both backends).
        """
        if self._wheel is not None:
            from repro.engine.fast import drive

            drive(self, limit)
            # the bench and profiler read the event counter off the
            # system; the wheel's push counter is its equivalent
            self._seq = self._wheel._seq
        else:
            events = self._events
            probe = self._probe
            while events and events[0][0] <= limit:
                time, _seq, kind, payload, aux = heapq.heappop(events)
                self.now = time
                if probe is not None:
                    probe.on_event(time, kind, payload, aux)
                if kind == _EV_ISSUE:
                    self._issue_miss(payload)
                elif kind == _EV_BANK_FREE:
                    self._try_schedule(payload, aux)
                elif kind == _EV_DONE:
                    self._complete_request(payload)
                elif kind == _EV_QUANTUM:
                    self._quantum_boundary()
                elif kind == _EV_TIMER:
                    # tuple payloads are shadow timers (repro.explain);
                    # plain keys go to the primary policy as always
                    if self._explain is not None and type(payload) is tuple:
                        self._explain.on_shadow_timer(self.now, payload)
                    else:
                        self.scheduler.on_timer(self.now, payload)
                elif kind == _EV_PHIT:
                    if self.threads[payload].on_request_completed(aux):
                        self._issue_miss(payload)
                elif kind == _EV_SAMPLE:
                    self._take_sample()

    def run(self, cycles: Optional[int] = None):
        """Simulate for ``cycles`` (default: config.run_cycles)."""
        horizon = cycles if cycles is not None else self.config.run_cycles
        self.start_run()
        self.advance(horizon)
        return self.finish_run(horizon)

    def finish_run(self, horizon: int):
        """Finalize threads and assemble the :class:`RunResult`.

        Last stage of :meth:`run`; call exactly once, after the final
        :meth:`advance` — finalization flushes residual instruction
        credit into the stats, so it is not idempotent.
        """
        from repro.sim.results import RunResult, ThreadResult

        self.now = horizon
        if self._prof is not None:
            self._prof.end_run(self, horizon)
        for thread in self.threads:
            thread.finalize(horizon)

        threads = tuple(
            ThreadResult(
                thread_id=tid,
                benchmark=thread.spec.name,
                instructions=thread.stats.instructions,
                misses=thread.stats.misses,
                ipc=thread.stats.ipc(horizon),
                mpki=thread.stats.lifetime_mpki(),
                blp=self.monitor.lifetime_blp(tid),
                rbl=self.monitor.lifetime_rbl(tid),
                service_cycles=self.monitor.lifetime_service_cycles[tid],
                avg_latency=(
                    self._latency_sum[tid] / self._latency_count[tid]
                    if self._latency_count[tid]
                    else 0.0
                ),
            )
            for tid, thread in enumerate(self.threads)
        )
        row_hits = sum(b.row_hits for ch in self.channels for b in ch.banks)
        conflicts = sum(b.row_conflicts for ch in self.channels for b in ch.banks)
        closed = sum(b.row_closed for ch in self.channels for b in ch.banks)
        if self._tracer is not None:
            self._tracer.emit(
                "run_end", horizon,
                requests=sum(ch.serviced_requests for ch in self.channels),
                row_hits=row_hits,
            )
        return RunResult(
            scheduler=self.scheduler.name,
            workload=self.workload.name,
            cycles=horizon,
            threads=threads,
            total_requests=sum(ch.serviced_requests for ch in self.channels),
            row_hits=row_hits,
            row_conflicts=conflicts,
            row_closed=closed,
            quantum_count=self.quantum_count,
            ipc_timeline=tuple(self.ipc_timeline),
        )
