"""Event-driven simulation engine and system composition."""

from repro.sim.results import RunResult, ThreadResult
from repro.sim.system import System

__all__ = ["RunResult", "System", "ThreadResult"]
