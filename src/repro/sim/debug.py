"""Post-run introspection of a simulated system.

The report is assembled from the system's metrics registry
(``system.metrics``) — the same polled providers the telemetry epoch
sampler reads — so it reflects exactly what any other observability
consumer would see.

Division semantics: a bank that serviced no accesses has an *undefined*
hit rate, reported as NaN rather than a masking 0.0 (a 0.0 looks like
"every access conflicted"); :func:`format_report` renders NaN as
``n/a``.  ``mean_bank_utilisation`` is likewise NaN for a system with
no banks instead of raising ``ZeroDivisionError``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.sim.system import System


@dataclass(frozen=True)
class BankReport:
    """Utilisation and access mix of one bank."""

    channel: int
    bank: int
    utilisation: float
    row_hits: int
    row_conflicts: int
    row_closed: int
    queued: int

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_conflicts + self.row_closed

    @property
    def hit_rate(self) -> float:
        """Row-hit fraction; NaN for a bank that serviced nothing."""
        if self.accesses == 0:
            return float("nan")
        return self.row_hits / self.accesses


@dataclass(frozen=True)
class SystemReport:
    """Whole-system utilisation breakdown after a run."""

    cycles: int
    banks: List[BankReport]
    bus_utilisation: List[float]
    writes_serviced: int
    writes_dropped: int

    @property
    def mean_bank_utilisation(self) -> float:
        if not self.banks:
            return float("nan")
        return sum(b.utilisation for b in self.banks) / len(self.banks)

    @property
    def active_banks(self) -> List[BankReport]:
        """Banks that serviced at least one access."""
        return [b for b in self.banks if b.accesses]

    @property
    def mean_active_utilisation(self) -> float:
        """Mean utilisation over banks that actually saw traffic."""
        active = self.active_banks
        if not active:
            return float("nan")
        return sum(b.utilisation for b in active) / len(active)

    @property
    def hottest_bank(self) -> BankReport:
        return max(self.banks, key=lambda b: b.utilisation)


def system_report(system: System) -> SystemReport:
    """Summarise bank/bus utilisation of a finished run.

    Reads the per-bank counters through ``system.metrics`` (labels
    ``{ch, bank}``), so the report and the telemetry snapshots can
    never disagree.
    """
    cycles = max(1, system.now)
    reg = system.metrics

    def by_bank(name: str) -> dict:
        return {
            (labels["ch"], labels["bank"]): value
            for labels, value in reg.collect(name)
        }

    hits = by_bank("dram.bank.row_hits")
    conflicts = by_bank("dram.bank.row_conflicts")
    closed = by_bank("dram.bank.row_closed")
    busy = by_bank("dram.bank.busy_cycles")
    queued = by_bank("dram.bank.queued")
    banks = [
        BankReport(
            channel=ch,
            bank=bank,
            utilisation=min(1.0, busy[(ch, bank)] / cycles),
            row_hits=hits[(ch, bank)],
            row_conflicts=conflicts[(ch, bank)],
            row_closed=closed[(ch, bank)],
            queued=queued[(ch, bank)],
        )
        for (ch, bank) in sorted(hits)
    ]
    # the data bus is occupied `burst` cycles per serviced access
    burst = system.config.timings.burst
    per_channel: dict = {}
    for b in banks:
        per_channel[b.channel] = per_channel.get(b.channel, 0) + b.accesses
    bus = [
        min(1.0, per_channel.get(ch, 0) * burst / cycles)
        for ch in sorted(per_channel)
    ]
    return SystemReport(
        cycles=cycles,
        banks=banks,
        bus_utilisation=bus,
        writes_serviced=int(reg.sum("dram.channel.serviced_writes")),
        writes_dropped=int(reg.sum("dram.channel.dropped_writes")),
    )


def _pct(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value:.1%}"


def format_report(report: SystemReport) -> str:
    """Render a system report as text."""
    lines = [
        f"cycles simulated: {report.cycles}",
        f"mean bank utilisation: {_pct(report.mean_bank_utilisation)}"
        f" ({_pct(report.mean_active_utilisation)} over "
        f"{len(report.active_banks)} active banks)",
        "per-channel bus utilisation: "
        + ", ".join(_pct(u) for u in report.bus_utilisation),
    ]
    hot = report.hottest_bank
    lines.append(
        f"hottest bank: ch{hot.channel}/b{hot.bank} at {_pct(hot.utilisation)} "
        f"(hit rate {_pct(hot.hit_rate)})"
    )
    if report.writes_serviced or report.writes_dropped:
        lines.append(
            f"writes serviced/dropped: {report.writes_serviced}/"
            f"{report.writes_dropped}"
        )
    return "\n".join(lines)
