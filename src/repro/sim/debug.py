"""Post-run introspection of a simulated system."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.system import System


@dataclass(frozen=True)
class BankReport:
    """Utilisation and access mix of one bank."""

    channel: int
    bank: int
    utilisation: float
    row_hits: int
    row_conflicts: int
    row_closed: int
    queued: int

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_conflicts + self.row_closed

    @property
    def hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class SystemReport:
    """Whole-system utilisation breakdown after a run."""

    cycles: int
    banks: List[BankReport]
    bus_utilisation: List[float]
    writes_serviced: int
    writes_dropped: int

    @property
    def mean_bank_utilisation(self) -> float:
        return sum(b.utilisation for b in self.banks) / len(self.banks)

    @property
    def hottest_bank(self) -> BankReport:
        return max(self.banks, key=lambda b: b.utilisation)


def system_report(system: System) -> SystemReport:
    """Summarise bank/bus utilisation of a finished run."""
    cycles = max(1, system.now)
    banks = [
        BankReport(
            channel=channel.channel_id,
            bank=bank.bank_id,
            utilisation=min(1.0, bank.busy_cycles / cycles),
            row_hits=bank.row_hits,
            row_conflicts=bank.row_conflicts,
            row_closed=bank.row_closed,
            queued=len(channel.queues[bank.bank_id]),
        )
        for channel in system.channels
        for bank in channel.banks
    ]
    # the data bus is occupied `burst` cycles per serviced access
    burst = system.config.timings.burst
    bus = [
        min(
            1.0,
            sum(b.row_hits + b.row_conflicts + b.row_closed for b in ch.banks)
            * burst
            / cycles,
        )
        for ch in system.channels
    ]
    return SystemReport(
        cycles=cycles,
        banks=banks,
        bus_utilisation=bus,
        writes_serviced=sum(ch.serviced_writes for ch in system.channels),
        writes_dropped=sum(ch.dropped_writes for ch in system.channels),
    )


def format_report(report: SystemReport) -> str:
    """Render a system report as text."""
    lines = [
        f"cycles simulated: {report.cycles}",
        f"mean bank utilisation: {report.mean_bank_utilisation:.1%}",
        "per-channel bus utilisation: "
        + ", ".join(f"{u:.1%}" for u in report.bus_utilisation),
    ]
    hot = report.hottest_bank
    lines.append(
        f"hottest bank: ch{hot.channel}/b{hot.bank} at {hot.utilisation:.1%} "
        f"(hit rate {hot.hit_rate:.1%})"
    )
    if report.writes_serviced or report.writes_dropped:
        lines.append(
            f"writes serviced/dropped: {report.writes_serviced}/"
            f"{report.writes_dropped}"
        )
    return "\n".join(lines)
