"""Simulation run results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ThreadResult:
    """End-of-run outcome for one thread."""

    thread_id: int
    benchmark: str
    instructions: int
    misses: int
    ipc: float
    mpki: float
    blp: float
    rbl: float
    service_cycles: int
    avg_latency: float


@dataclass(frozen=True)
class RunResult:
    """End-of-run outcome for a whole simulated system."""

    scheduler: str
    workload: str
    cycles: int
    threads: Tuple[ThreadResult, ...]
    total_requests: int
    row_hits: int
    row_conflicts: int
    row_closed: int
    quantum_count: int
    #: per-quantum IPC of every thread; one inner tuple per quantum
    ipc_timeline: Tuple[Tuple[float, ...], ...] = ()

    @property
    def ipcs(self) -> List[float]:
        return [t.ipc for t in self.threads]

    @property
    def row_hit_rate(self) -> float:
        """Fraction of serviced accesses that were row-buffer hits."""
        total = self.row_hits + self.row_conflicts + self.row_closed
        return self.row_hits / total if total else 0.0

    def thread_by_id(self, thread_id: int) -> ThreadResult:
        return self.threads[thread_id]

    def thread_timeline(self, thread_id: int) -> List[float]:
        """One thread's per-quantum IPC series."""
        return [quantum[thread_id] for quantum in self.ipc_timeline]

    def summary(self) -> Dict[str, float]:
        """A compact numeric summary useful for logging."""
        return {
            "cycles": float(self.cycles),
            "requests": float(self.total_requests),
            "row_hit_rate": self.row_hit_rate,
            "mean_ipc": sum(self.ipcs) / len(self.threads) if self.threads else 0.0,
        }
