"""Scheduler interface.

A scheduler is one global object (conceptually: the policy logic
replicated in every controller plus the meta-controller that keeps them
consistent).  The simulation system calls its hooks:

* ``on_request_arrival`` / ``on_request_scheduled`` /
  ``on_request_complete`` — per-request lifecycle events;
* ``on_quantum`` — end-of-quantum statistics from the meta-controller;
* ``on_timer`` — self-scheduled periodic callbacks (e.g. shuffling);
* ``select`` — pick the next request to service at a free bank.

``select``'s default implementation maximises the tuple returned by
:meth:`Scheduler.priority`, so most algorithms only implement
``priority`` (larger tuples win; ties broken by request age is the
usual last component).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.monitor import QuantumSnapshot
from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import System


class Scheduler:
    """Base memory scheduler; concrete policies override ``priority``."""

    #: short identifier used in registries and reports
    name = "base"

    #: Class-level ``select`` overrides must still return a request of
    #: maximal ``priority`` tuple (demand before prefetch) — they exist
    #: to compute the same answer faster, not to change policy.  The
    #: invariant oracle audits every grant against ``priority`` under
    #: this flag; a scheduler whose grant rule genuinely cannot be
    #: expressed as a priority maximum sets it to False to opt out.
    SELECT_IS_PRIORITY_MAXIMAL = True

    #: Names for the slots of the ``priority`` tuple, in order — the
    #: vocabulary :mod:`repro.explain` uses to decompose a decision
    #: into per-policy components ("rank", "row_hit", "age", ...).
    #: Must have exactly one name per tuple slot.
    PRIORITY_COMPONENTS: Tuple[str, ...] = ()

    def __init__(self):
        self.system: Optional["System"] = None
        #: False once the bound system is known to inject no prefetch
        #: requests — ``select`` then compares bare priority tuples
        #: (the demand-over-prefetch class bit is constant).
        self._prefetch_possible = True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self, system: "System") -> None:
        """Bind the scheduler to a simulation system before the run."""
        self.system = system
        self._prefetch_possible = (
            getattr(system, "prefetchers", None) is not None
        )
        # Stub systems used in unit tests may not carry a registry.
        metrics = getattr(system, "metrics", None)
        if metrics is not None:
            self.register_metrics(metrics)
        self.on_attach()

    def on_attach(self) -> None:
        """Hook for subclass initialisation after ``system`` is set."""

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Register policy counters into the system's metrics registry.

        Called once at attach time, before :meth:`on_attach`.
        Subclasses extend this (calling ``super()``) with their own
        providers; the base registers only the scheduler's identity.
        """
        registry.register("scheduler.name", lambda: self.name)

    def trace(self, ev: str, now: int, **fields) -> None:
        """Emit a tracer event if the bound system is tracing.

        Costs one branch when tracing is disabled; safe to call from
        any policy hook.
        """
        tracer = getattr(self.system, "_tracer", None)
        if tracer is not None:
            tracer.emit(ev, now, **fields)

    def interference_accounting(self):
        """The run's shared interference accounting (repro.obs spans).

        Policies whose decisions consume per-thread interference totals
        (STFM's slowdown estimation) call this from :meth:`on_attach`:
        it returns the system's bound :class:`~repro.obs.spans.\
        SpanCollector`, creating a lite (counters-only) one when the run
        was not already observing — so the totals exist on every run at
        the original bookkeeping cost, and a full collector, when
        present, is shared rather than duplicated.
        """
        from repro.obs.spans import ensure_accounting

        return ensure_accounting(self.system)

    def prof_points(self) -> List[Tuple[str, str]]:
        """Instrumentation points the self-profiler wraps.

        ``(frame label, method name)`` pairs consumed by
        :class:`repro.prof.Profiler` at attach time — nothing here runs
        on an unprofiled system.  The base list covers every policy's
        lifecycle hooks and the grant decision; subclasses extend it
        (calling ``super()``) with their internal hot paths so flame
        graphs show *why* a scheduler is slow, not just that it is.
        """
        tag = self.name
        return [
            (f"sched.select[{tag}]", "select"),
            (f"sched.arrival[{tag}]", "on_request_arrival"),
            (f"sched.grant[{tag}]", "on_request_scheduled"),
            (f"sched.complete[{tag}]", "on_request_complete"),
            (f"sched.quantum[{tag}]", "on_quantum"),
            (f"sched.timer[{tag}]", "on_timer"),
        ]

    def explain_components(
        self, request: MemoryRequest, row_hit: bool, now: int, key=None
    ) -> dict:
        """Named decomposition of ``priority(request, row_hit, now)``.

        Consumed by :mod:`repro.explain` to label each candidate's
        priority tuple in decision records.  The base implementation
        zips :data:`PRIORITY_COMPONENTS` against the tuple; policies
        with richer internal state (TCM cluster membership, ATLAS
        attained service, STFM slowdown estimates) override this —
        extending ``super()``'s dict — with the quantities behind the
        slots.  ``key`` lets a caller that already evaluated the
        priority tuple skip re-evaluating it (``priority`` is pure, so
        the result is the same either way).  Must be side-effect-free
        and JSON-able; nothing here runs unless explain is attached.
        """
        if key is None:
            key = self.priority(request, row_hit, now)
        names = self.PRIORITY_COMPONENTS
        if len(names) != len(key):
            names = tuple(f"slot{i}" for i in range(len(key)))
        return {
            name: (int(value) if isinstance(value, bool) else value)
            for name, value in zip(names, key)
        }

    def epoch_annotations(self, thread_id: int) -> dict:
        """Policy state the epoch sampler attaches to a thread's row.

        Ranking schedulers return e.g. ``{"cluster": ..., "rank": ...}``;
        the base scheduler annotates nothing.
        """
        return {}

    def state_digest(self) -> dict:
        """Canonical JSON-able snapshot of the policy's decision state.

        Consumed by the divergence probe (:mod:`repro.diverge`): two
        runs whose digests agree at a checkpoint hold identical policy
        state, so any later drift originated elsewhere.  Stateful
        policies override this — extending ``super()``'s dict — with
        exactly the fields their ``priority``/``select``/hooks read
        (ranks, clusters, virtual times, shuffle cursors, policy RNG
        state).  Stateless policies (FCFS, FR-FCFS) inherit the base
        digest: the policy identity alone.  Values must round-trip
        through JSON unchanged (ints, floats, strings, lists).
        """
        return {"policy": self.name}

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------

    def on_quantum(self, snapshot: QuantumSnapshot, now: int) -> None:
        """End-of-quantum statistics are available; recompute policy."""

    def on_timer(self, now: int, key: str) -> None:
        """A self-scheduled timer (see ``System.schedule_timer``) fired."""

    def on_request_arrival(self, request: MemoryRequest, now: int) -> None:
        """A request entered a controller queue."""

    def on_request_scheduled(
        self,
        request: MemoryRequest,
        waiting: List[MemoryRequest],
        busy_cycles: int,
        now: int,
    ) -> None:
        """``request`` began service; ``waiting`` still queue at its bank."""

    def on_request_complete(self, request: MemoryRequest, now: int) -> None:
        """``request`` returned data to the core."""

    # ------------------------------------------------------------------
    # the scheduling decision
    # ------------------------------------------------------------------

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        """Priority tuple for ``request``; larger wins."""
        raise NotImplementedError

    def select(
        self, channel: Channel, bank_id: int, now: int
    ) -> MemoryRequest:
        """Choose the next request to service at a free bank.

        Demand requests are always preferred over prefetches (the
        baseline prefetch policy of [6]); within each class the
        scheduler's ``priority`` tuple decides.
        """
        queue = channel.queues[bank_id]
        if not queue:
            raise RuntimeError(
                f"select() on empty queue ch{channel.channel_id}/b{bank_id}"
            )
        # ``priority`` is a pure decision function (policy contract), so
        # a single candidate needs no scoring, and the manual loop below
        # keeps max()'s first-maximal tie-break without the per-element
        # key lambda.
        best = queue[0]
        if len(queue) == 1:
            return best
        open_row = channel.banks[bank_id].open_row
        priority = self.priority
        if not self._prefetch_possible:
            # all-demand queue: the class bit is constant, compare the
            # policy tuples directly
            best_key = priority(best, best.row == open_row, now)
            for index in range(1, len(queue)):
                request = queue[index]
                key = priority(request, request.row == open_row, now)
                if key > best_key:
                    best = request
                    best_key = key
            return best
        best_key = (not best.is_prefetch,) + priority(
            best, best.row == open_row, now
        )
        for index in range(1, len(queue)):
            request = queue[index]
            key = (not request.is_prefetch,) + priority(
                request, request.row == open_row, now
            )
            if key > best_key:
                best = request
                best_key = key
        return best
