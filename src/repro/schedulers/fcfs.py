"""FCFS — plain oldest-first scheduling.

Not evaluated in the paper's figures but the classical strawman FR-FCFS
improves upon; included for completeness and as a sanity baseline in
tests (FR-FCFS must beat FCFS on row-hit rate).
"""

from __future__ import annotations

from typing import Tuple

from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler


class FCFSScheduler(Scheduler):
    """Oldest-first, oblivious to row-buffer state and threads."""

    name = "FCFS"
    PRIORITY_COMPONENTS = ("age",)

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        return (-request.arrival,)

    def select(
        self, channel: Channel, bank_id: int, now: int
    ) -> MemoryRequest:
        # Queues append in arrival order, so the oldest request is the
        # head; same-cycle ties resolve to the first append, exactly
        # like the base first-maximal scan over ``(-arrival,)``.  The
        # demand-over-prefetch class bit only matters when prefetches
        # can exist, so defer to the generic scan then.
        if self._prefetch_possible:
            return super().select(channel, bank_id, now)
        queue = channel.queues[bank_id]
        if not queue:
            raise RuntimeError(
                f"select() on empty queue ch{channel.channel_id}/b{bank_id}"
            )
        return queue[0]
