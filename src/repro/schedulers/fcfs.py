"""FCFS — plain oldest-first scheduling.

Not evaluated in the paper's figures but the classical strawman FR-FCFS
improves upon; included for completeness and as a sanity baseline in
tests (FR-FCFS must beat FCFS on row-hit rate).
"""

from __future__ import annotations

from typing import Tuple

from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler


class FCFSScheduler(Scheduler):
    """Oldest-first, oblivious to row-buffer state and threads."""

    name = "FCFS"

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        return (-request.arrival,)
