"""STFM — Stall-Time Fair Memory scheduling (Mutlu & Moscibroda [13]).

STFM estimates each thread's memory slowdown — the ratio of its memory
stall time when sharing the system to an estimate of its stall time had
it run alone — and, whenever the ratio between the most- and
least-slowed threads exceeds ``FairnessThreshold``, prioritises the
most-slowed thread; otherwise it behaves like FR-FCFS.

Alone stall time is estimated by interference accounting: whenever a
request is serviced, every other thread's requests waiting at that bank
are being delayed by the service duration; those cycles are what the
thread would *not* have waited alone and are subtracted from its shared
memory time.

The accounting itself lives in :mod:`repro.obs.spans` — a
scheduler-independent mechanism this policy binds at attach time (see
:meth:`repro.schedulers.base.Scheduler.interference_accounting`).  STFM
keeps a private shadow of the per-victim totals, maintained with the
same grant-time rule, purely as a cross-check that the shared mechanism
it decides from never drifts from the paper's bookkeeping.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import STFMParams
from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler

#: Minimum accumulated shared memory cycles before a thread's slowdown
#: estimate is considered meaningful.
_MIN_SHARED_CYCLES = 1000


class STFMScheduler(Scheduler):
    """Stall-time fair scheduler with heuristic slowdown estimation."""

    name = "STFM"
    PRIORITY_COMPONENTS = ("is_victim", "row_hit", "age")

    def __init__(self, params: Optional[STFMParams] = None):
        super().__init__()
        self.params = params or STFMParams()
        self._t_shared: List[int] = []
        self._t_interference: List[int] = []
        self._victim: Optional[int] = None
        self._next_eval = 0
        self.evaluations = 0
        self.last_unfairness = 1.0

    def register_metrics(self, registry) -> None:
        super().register_metrics(registry)
        registry.register("stfm.evaluations", lambda: self.evaluations)
        registry.register("stfm.unfairness", lambda: self.last_unfairness)

    def prof_points(self):
        # periodic slowdown re-estimation over all threads
        return super().prof_points() + [
            ("sched.eval[STFM]", "_reevaluate"),
        ]

    def state_digest(self) -> dict:
        digest = super().state_digest()
        digest.update(
            t_shared=list(self._t_shared),
            t_interference=list(self._t_interference),
            victim=self._victim,
            next_eval=self._next_eval,
            evaluations=self.evaluations,
            last_unfairness=self.last_unfairness,
        )
        return digest

    def on_attach(self) -> None:
        n = self.system.workload.num_threads
        self._t_shared = [0] * n
        self._t_interference = [0] * n
        self._victim = None
        self._next_eval = self.params.interval_length
        self.interference_accounting()

    # ------------------------------------------------------------------
    # interference accounting
    # ------------------------------------------------------------------

    @property
    def accounting(self):
        """The run's shared interference accounting (``system._spans``).

        Read live rather than cached at attach time: a full span
        collector attached later in construction (``attach_spans``)
        replaces the lite one this policy bound, and both maintain the
        totals under the identical grant-time rule.
        """
        return self.system._spans

    def on_request_scheduled(
        self,
        request: MemoryRequest,
        waiting: List[MemoryRequest],
        busy_cycles: int,
        now: int,
    ) -> None:
        # private shadow of the shared grant-rule accounting; the spans
        # mechanism is the source of truth, this is the cross-check
        for other in waiting:
            if other.thread_id != request.thread_id:
                self._t_interference[other.thread_id] += busy_cycles

    def on_request_complete(self, request: MemoryRequest, now: int) -> None:
        self._t_shared[request.thread_id] += now - request.arrival
        if now >= self._next_eval:
            self._reevaluate(now)
            self._next_eval = now + self.params.interval_length

    # ------------------------------------------------------------------
    # slowdown estimation
    # ------------------------------------------------------------------

    def slowdown_estimate(self, tid: int) -> float:
        """Estimated memory slowdown of thread ``tid`` (>= 1.0)."""
        accounting = self.accounting
        shared = accounting.t_shared[tid]
        if shared < _MIN_SHARED_CYCLES:
            return 1.0
        alone = max(1, shared - accounting.t_interference[tid])
        return shared / alone

    def _reevaluate(self, now: int = 0) -> None:
        n = len(self._t_shared)
        slowdowns = [self.slowdown_estimate(t) for t in range(n)]
        s_max = max(slowdowns)
        s_min = min(s for s in slowdowns if s >= 1.0)
        if s_min > 0 and s_max / s_min > self.params.fairness_threshold:
            self._victim = slowdowns.index(s_max)
        else:
            self._victim = None
        self.evaluations += 1
        self.last_unfairness = s_max / s_min if s_min > 0 else 1.0
        self.trace("stfm_eval", now, unfairness=self.last_unfairness)

    # ------------------------------------------------------------------

    def explain_components(
        self, request: MemoryRequest, row_hit: bool, now: int, key=None
    ) -> dict:
        components = super().explain_components(
            request, row_hit, now, key
        )
        components["slowdown"] = self.slowdown_estimate(request.thread_id)
        components["unfairness"] = self.last_unfairness
        return components

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        is_victim = self._victim is not None and request.thread_id == self._victim
        return (is_victim, row_hit, -request.arrival)
