"""PAR-BS — Parallelism-Aware Batch Scheduling (Mutlu & Moscibroda [14]).

PAR-BS groups outstanding requests into *batches*: when the current
batch drains, up to ``BatchCap`` oldest requests per thread per bank
are marked.  Marked requests are strictly prioritised over unmarked
ones (bounding any thread's wait — the fairness mechanism).  Within a
batch, threads are ranked by the *max-total* (shortest-job-first) rule:
threads whose maximum per-bank marked-request count is smallest are
ranked highest, preserving their bank-level parallelism.

Batching is performed across all controllers at once (the synchronised
variant the paper's observations favour: "scheduling decisions are made
in a synchronized manner across all banks").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.config import PARBSParams
from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler


class PARBSScheduler(Scheduler):
    """Batch scheduler: marked-first, row-hit, rank, oldest."""

    name = "PAR-BS"
    PRIORITY_COMPONENTS = ("marked", "row_hit", "rank", "age")

    def __init__(self, params: Optional[PARBSParams] = None):
        super().__init__()
        self.params = params or PARBSParams()
        self._marked_remaining = 0
        self._rank: Dict[int, int] = {}
        self.batches_formed = 0

    def register_metrics(self, registry) -> None:
        super().register_metrics(registry)
        registry.register("parbs.batches", lambda: self.batches_formed)

    def prof_points(self):
        # batch formation walks every queue in the system — the cost
        # that scales with queue depth, kept visible on its own frame
        return super().prof_points() + [
            ("sched.batch[PAR-BS]", "_form_batch"),
            ("sched.rank[PAR-BS]", "_compute_ranking"),
        ]

    def epoch_annotations(self, thread_id: int) -> dict:
        if not self._rank:
            return {}
        return {"rank": self._rank.get(thread_id, 0)}

    def state_digest(self) -> dict:
        digest = super().state_digest()
        digest.update(
            marked_remaining=self._marked_remaining,
            rank=sorted(self._rank.items()),
            batches_formed=self.batches_formed,
        )
        return digest

    # ------------------------------------------------------------------
    # batch formation
    # ------------------------------------------------------------------

    def _form_batch(self) -> None:
        """Mark up to BatchCap oldest requests per thread per bank."""
        cap = self.params.batch_cap
        per_thread_bank: Dict[Tuple[int, int, int], List[MemoryRequest]]
        per_thread_bank = defaultdict(list)
        for channel in self.system.channels:
            for bank_id, queue in enumerate(channel.queues):
                for request in queue:
                    key = (request.thread_id, channel.channel_id, bank_id)
                    per_thread_bank[key].append(request)
        marked_counts: Dict[int, Dict[Tuple[int, int], int]] = defaultdict(dict)
        total_marked = 0
        for (tid, ch, bank), requests in per_thread_bank.items():
            requests.sort(key=lambda r: r.arrival)
            chosen = requests[:cap]
            for request in chosen:
                request.marked = True
            if chosen:
                marked_counts[tid][(ch, bank)] = len(chosen)
                total_marked += len(chosen)
        self._marked_remaining = total_marked
        if total_marked:
            self.batches_formed += 1
            self.trace("batch", getattr(self.system, "now", 0),
                       marked=total_marked)
        self._compute_ranking(marked_counts)

    def _compute_ranking(
        self, marked_counts: Dict[int, Dict[Tuple[int, int], int]]
    ) -> None:
        """Max-total rule: fewer max-per-bank marked requests ranks higher."""
        n = self.system.workload.num_threads
        def load(tid: int) -> Tuple[int, int]:
            counts = marked_counts.get(tid, {})
            max_load = max(counts.values()) if counts else 0
            total = sum(counts.values())
            return (max_load, total)
        order = sorted(range(n), key=lambda tid: (load(tid), tid))
        # rank: higher value = higher priority; lightest thread first
        self._rank = {tid: n - pos for pos, tid in enumerate(order)}

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------

    def on_request_arrival(self, request: MemoryRequest, now: int) -> None:
        if self._marked_remaining == 0:
            self._form_batch()

    def on_request_scheduled(
        self,
        request: MemoryRequest,
        waiting: List[MemoryRequest],
        busy_cycles: int,
        now: int,
    ) -> None:
        if request.marked:
            self._marked_remaining -= 1
            if self._marked_remaining == 0:
                self._form_batch()

    # ------------------------------------------------------------------

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        return (
            request.marked,
            row_hit,
            self._rank.get(request.thread_id, 0),
            -request.arrival,
        )
