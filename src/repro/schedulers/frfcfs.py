"""FR-FCFS — First-Ready, First-Come-First-Served (Rixner et al. [19]).

The thread-unaware baseline commonly employed in real controllers:
row-buffer-hit requests first, then oldest first.  Maximises DRAM
throughput but is prone to starving threads with poor locality.
"""

from __future__ import annotations

from typing import Tuple

from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler


class FRFCFSScheduler(Scheduler):
    """Row-hit-first, then oldest-first. No parameters."""

    name = "FR-FCFS"
    PRIORITY_COMPONENTS = ("row_hit", "age")

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        return (row_hit, -request.arrival)

    def select(
        self, channel: Channel, bank_id: int, now: int
    ) -> MemoryRequest:
        # Queues append in arrival order, so the first row hit in queue
        # order is the oldest row hit, and the head is the oldest
        # request overall — the base first-maximal scan over
        # ``(row_hit, -arrival)`` reduced to two attribute compares.
        # The demand-over-prefetch class bit only matters when
        # prefetches can exist; defer to the generic scan then.
        if self._prefetch_possible:
            return super().select(channel, bank_id, now)
        queue = channel.queues[bank_id]
        if not queue:
            raise RuntimeError(
                f"select() on empty queue ch{channel.channel_id}/b{bank_id}"
            )
        open_row = channel.banks[bank_id].open_row
        if open_row is not None:
            for request in queue:
                if request.row == open_row:
                    return request
        return queue[0]
