"""FR-FCFS — First-Ready, First-Come-First-Served (Rixner et al. [19]).

The thread-unaware baseline commonly employed in real controllers:
row-buffer-hit requests first, then oldest first.  Maximises DRAM
throughput but is prone to starving threads with poor locality.
"""

from __future__ import annotations

from typing import Tuple

from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler


class FRFCFSScheduler(Scheduler):
    """Row-hit-first, then oldest-first. No parameters."""

    name = "FR-FCFS"

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        return (row_hit, -request.arrival)
