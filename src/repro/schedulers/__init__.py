"""Memory-request schedulers: the four baselines and shared machinery.

TCM itself lives in :mod:`repro.core.tcm`; it is re-exported from the
registry here so callers can treat all five schedulers uniformly.
"""

from repro.schedulers.atlas import ATLASScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.fqm import FQMParams, FQMScheduler
from repro.schedulers.frfcfs import FRFCFSScheduler
from repro.schedulers.parbs import PARBSScheduler
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.schedulers.static import StaticPriorityScheduler
from repro.schedulers.stfm import STFMScheduler

__all__ = [
    "ATLASScheduler",
    "FCFSScheduler",
    "FQMParams",
    "FQMScheduler",
    "FRFCFSScheduler",
    "PARBSScheduler",
    "SCHEDULERS",
    "STFMScheduler",
    "Scheduler",
    "StaticPriorityScheduler",
    "make_scheduler",
]
