"""Static thread-priority scheduler.

Used by the paper's motivating experiment (Figure 2): two threads are
run together with one *strictly prioritised* over the other, to show
that a random-access thread suffers far more from deprioritisation
than a streaming thread does.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.config import StaticParams
from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler


class StaticPriorityScheduler(Scheduler):
    """Strictly prioritises threads in a fixed order, forever.

    ``order`` lists thread ids from highest priority to lowest; threads
    not listed (or an empty order) rank lowest and equal, so with no
    order at all the policy degenerates to FR-FCFS.  Accepts either a
    raw sequence or a :class:`~repro.config.StaticParams`.
    """

    name = "static"
    PRIORITY_COMPONENTS = ("rank", "row_hit", "age")

    def __init__(
        self, order: Optional[Sequence[int]] = None
    ):
        super().__init__()
        if isinstance(order, StaticParams):
            order = order.order
        order = tuple(order or ())
        if len(set(order)) != len(order):
            raise ValueError("duplicate thread ids in priority order")
        self.order = order
        self._rank: Dict[int, int] = {
            tid: len(order) - pos for pos, tid in enumerate(order)
        }

    def state_digest(self) -> dict:
        digest = super().state_digest()
        digest.update(order=list(self.order))
        return digest

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        return (
            self._rank.get(request.thread_id, 0),
            row_hit,
            -request.arrival,
        )
