"""FQM — Fair Queueing Memory scheduler (Nesbit et al. [16]).

The paper's related work: an adaptation of network fair queueing to
memory controllers.  Each thread owns a *virtual time* that advances by
the service it receives scaled by the number of sharers (i.e. by the
inverse of its 1/N bandwidth share); the scheduler always services the
request of the thread with the smallest virtual time, guaranteeing each
thread its proportional share of memory bandwidth.

Idle threads must not bank credit: on its first request after idling, a
thread's virtual time is brought forward to the minimum virtual time of
the active threads.

The paper characterises fair-queueing schedulers as fairness-oriented
with modest system throughput — FQM is included here as an additional
baseline for that comparison (it is not part of the paper's evaluated
five).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler


@dataclass(frozen=True)
class FQMParams:
    """FQM parameters.

    ``weights`` are optional proportional-share weights (defaults to
    equal shares).
    """

    weights: Optional[Tuple[int, ...]] = None


class FQMScheduler(Scheduler):
    """Fair queueing: earliest virtual time first."""

    name = "FQM"
    PRIORITY_COMPONENTS = ("neg_virtual_time", "row_hit", "age")

    def __init__(self, params: Optional[FQMParams] = None):
        super().__init__()
        self.params = params or FQMParams()
        self._virtual_time: List[float] = []
        self._weights: Tuple[int, ...] = ()
        self._active: List[int] = []   # outstanding request count per thread

    def on_attach(self) -> None:
        n = self.system.workload.num_threads
        self._weights = (
            self.params.weights
            or self.system.workload.weights
            or tuple([1] * n)
        )
        if len(self._weights) != n:
            raise ValueError(f"{len(self._weights)} weights for {n} threads")
        self._virtual_time = [0.0] * n
        self._active = [0] * n

    # ------------------------------------------------------------------

    def state_digest(self) -> dict:
        digest = super().state_digest()
        digest.update(
            virtual_time=list(self._virtual_time),
            active=list(self._active),
        )
        return digest

    def prof_points(self):
        # virtual-time floor scan over all threads, run per arrival
        return super().prof_points() + [
            ("sched.vt[FQM]", "_min_active_vt"),
        ]

    def _min_active_vt(self) -> float:
        active = [
            self._virtual_time[t]
            for t in range(len(self._active))
            if self._active[t] > 0
        ]
        return min(active) if active else 0.0

    def on_request_arrival(self, request: MemoryRequest, now: int) -> None:
        tid = request.thread_id
        if self._active[tid] == 0:
            # returning from idle: no banked credit
            self._virtual_time[tid] = max(
                self._virtual_time[tid], self._min_active_vt()
            )
        self._active[tid] += 1

    def on_request_scheduled(
        self,
        request: MemoryRequest,
        waiting: List[MemoryRequest],
        busy_cycles: int,
        now: int,
    ) -> None:
        tid = request.thread_id
        n = len(self._virtual_time)
        # service charged at the inverse of the thread's share
        share = self._weights[tid] / sum(self._weights)
        self._virtual_time[tid] += busy_cycles / (share * n)

    def on_request_complete(self, request: MemoryRequest, now: int) -> None:
        self._active[request.thread_id] -= 1

    # ------------------------------------------------------------------

    def explain_components(
        self, request: MemoryRequest, row_hit: bool, now: int, key=None
    ) -> dict:
        components = super().explain_components(
            request, row_hit, now, key
        )
        components["virtual_time"] = self._virtual_time[request.thread_id]
        return components

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        return (
            -self._virtual_time[request.thread_id],
            row_hit,
            -request.arrival,
        )
