"""Scheduler registry: build any evaluated scheduler by name."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.config import (
    ATLASParams,
    PARBSParams,
    STFMParams,
    StaticParams,
    TCMParams,
)
from repro.schedulers.atlas import ATLASScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.fqm import FQMParams, FQMScheduler
from repro.schedulers.frfcfs import FRFCFSScheduler
from repro.schedulers.parbs import PARBSScheduler
from repro.schedulers.static import StaticPriorityScheduler
from repro.schedulers.stfm import STFMScheduler


def _tcm_factory(*args, **kwargs) -> Scheduler:
    # Imported lazily: repro.core.tcm itself depends on the scheduler
    # base class, so a module-level import here would be circular.
    from repro.core.tcm import TCMScheduler

    return TCMScheduler(*args, **kwargs)


#: Factories for all schedulers, keyed by canonical name.
SCHEDULERS: Dict[str, Callable[..., Scheduler]] = {
    "fcfs": FCFSScheduler,
    "fqm": FQMScheduler,
    "frfcfs": FRFCFSScheduler,
    "stfm": STFMScheduler,
    "parbs": PARBSScheduler,
    "atlas": ATLASScheduler,
    "tcm": _tcm_factory,
    "static": StaticPriorityScheduler,
}

#: The five schedulers evaluated head-to-head in the paper's figures.
EVALUATED = ("frfcfs", "stfm", "parbs", "atlas", "tcm")


def make_scheduler(name: str, params: Optional[object] = None) -> Scheduler:
    """Instantiate a scheduler by name with optional parameter object.

    ``params`` must match the scheduler's parameter dataclass
    (:class:`~repro.config.TCMParams` for ``tcm``, etc.); schedulers
    without parameters (fcfs, frfcfs) accept only ``None``.
    """
    key = name.lower().replace("-", "").replace("_", "")
    aliases = {
        "fcfs": "fcfs",
        "fqm": "fqm",
        "frfcfs": "frfcfs",
        "stfm": "stfm",
        "parbs": "parbs",
        "atlas": "atlas",
        "tcm": "tcm",
        "static": "static",
        "staticpriority": "static",
    }
    if key not in aliases:
        raise KeyError(f"unknown scheduler {name!r}; options: {sorted(SCHEDULERS)}")
    factory = SCHEDULERS[aliases[key]]
    if params is None:
        return factory()
    expected = {
        "fqm": FQMParams,
        "stfm": STFMParams,
        "parbs": PARBSParams,
        "atlas": ATLASParams,
        "tcm": TCMParams,
        "static": StaticParams,
    }.get(aliases[key])
    if expected is None:
        raise ValueError(f"scheduler {name!r} takes no parameters")
    if not isinstance(params, expected):
        raise TypeError(
            f"scheduler {name!r} expects {expected.__name__}, "
            f"got {type(params).__name__}"
        )
    return factory(params)
