"""ATLAS — Adaptive per-Thread Least-Attained-Service scheduling [5].

ATLAS divides time into long quanta; at each boundary a meta-controller
aggregates every thread's *attained service* (memory service cycles,
exponentially averaged over past quanta with ``HistoryWeight``) and
ranks threads so that the thread with the **least** attained service
has the highest priority for the whole next quantum.  Least-attained-
service prioritisation maximises system throughput (light threads fly)
but strictly deprioritises the most memory-intensive threads, which is
exactly the unfairness TCM's shuffling repairs.

A starvation threshold ``T`` bounds the damage: requests older than
``T`` cycles are serviced first regardless of thread rank.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import ATLASParams
from repro.core.monitor import QuantumSnapshot
from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler


class ATLASScheduler(Scheduler):
    """Least-attained-service scheduler with its own quantum length."""

    name = "ATLAS"
    PRIORITY_COMPONENTS = ("starving", "rank", "row_hit", "age")

    def __init__(self, params: Optional[ATLASParams] = None):
        super().__init__()
        self.params = params or ATLASParams()
        self._attained: List[float] = []
        self._quantum_service: List[int] = []
        self._rank: Dict[int, int] = {}
        self._weights: Tuple[int, ...] = ()
        self.quanta_completed = 0

    def register_metrics(self, registry) -> None:
        super().register_metrics(registry)
        registry.register("atlas.quanta", lambda: self.quanta_completed)

    def epoch_annotations(self, thread_id: int) -> dict:
        if not self._rank:
            return {}
        return {"rank": self._rank.get(thread_id, 0)}

    def state_digest(self) -> dict:
        digest = super().state_digest()
        digest.update(
            attained=list(self._attained),
            quantum_service=list(self._quantum_service),
            rank=sorted(self._rank.items()),
            quanta_completed=self.quanta_completed,
        )
        return digest

    def on_attach(self) -> None:
        n = self.system.workload.num_threads
        self._attained = [0.0] * n
        self._quantum_service = [0] * n
        self._weights = self.system.workload.weights or tuple([1] * n)
        self._rank = {}
        self.system.schedule_timer(self.params.quantum_cycles, "atlas-quantum")

    # ------------------------------------------------------------------

    def on_request_scheduled(
        self,
        request: MemoryRequest,
        waiting: List[MemoryRequest],
        busy_cycles: int,
        now: int,
    ) -> None:
        self._quantum_service[request.thread_id] += busy_cycles

    def prof_points(self):
        # end-of-quantum attained-service decay + re-ranking
        return super().prof_points() + [
            ("sched.rank[ATLAS]", "_recompute_ranks"),
        ]

    def _recompute_ranks(self) -> None:
        """Decay attained service and re-rank (least attained first)."""
        alpha = self.params.history_weight
        n = len(self._attained)
        for tid in range(n):
            self._attained[tid] = (
                alpha * self._attained[tid]
                + (1.0 - alpha) * self._quantum_service[tid]
            )
            self._quantum_service[tid] = 0
        # Least attained service (weight-scaled) -> highest rank.
        order = sorted(
            range(n),
            key=lambda tid: (self._attained[tid] / self._weights[tid], tid),
        )
        self._rank = {tid: n - pos for pos, tid in enumerate(order)}

    def on_timer(self, now: int, key: str) -> None:
        if key != "atlas-quantum":
            return
        self._recompute_ranks()
        self.quanta_completed += 1
        self.trace(
            "rank", now,
            ranks={str(tid): rank for tid, rank in self._rank.items()},
        )
        self.system.schedule_timer(now + self.params.quantum_cycles, "atlas-quantum")

    # ------------------------------------------------------------------

    def explain_components(
        self, request: MemoryRequest, row_hit: bool, now: int, key=None
    ) -> dict:
        components = super().explain_components(
            request, row_hit, now, key
        )
        tid = request.thread_id
        if tid < len(self._attained):
            components["attained"] = self._attained[tid]
        return components

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        starving = (now - request.arrival) > self.params.starvation_threshold
        return (
            starving,
            self._rank.get(request.thread_id, 0),
            row_hit,
            -request.arrival,
        )
