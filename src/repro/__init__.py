"""repro — a reproduction of Thread Cluster Memory Scheduling (MICRO 2010).

Public API quick tour::

    from repro import SimConfig, System, make_scheduler
    from repro.workloads import make_intensity_workload

    workload = make_intensity_workload(0.5, num_threads=24, seed=0)
    system = System(workload, make_scheduler("tcm"), SimConfig())
    result = system.run()

    from repro.experiments import evaluate_workload
    scores = evaluate_workload(workload)   # WS / MS / HS for all schedulers

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (
    ATLASParams,
    DramTimings,
    PARBSParams,
    STFMParams,
    SimConfig,
    StaticParams,
    TCMParams,
)
from repro.core.tcm import TCMScheduler
from repro.metrics import harmonic_speedup, maximum_slowdown, weighted_speedup
from repro.schedulers import make_scheduler
from repro.sim import RunResult, System, ThreadResult
from repro.workloads import Workload, make_intensity_workload

__version__ = "1.0.0"

__all__ = [
    "ATLASParams",
    "DramTimings",
    "PARBSParams",
    "RunResult",
    "STFMParams",
    "SimConfig",
    "StaticParams",
    "System",
    "TCMParams",
    "TCMScheduler",
    "ThreadResult",
    "Workload",
    "harmonic_speedup",
    "make_intensity_workload",
    "make_scheduler",
    "maximum_slowdown",
    "weighted_speedup",
]
