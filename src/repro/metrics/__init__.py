"""Evaluation metrics (paper §6)."""

from repro.metrics.speedup import (
    harmonic_speedup,
    maximum_slowdown,
    slowdowns,
    weighted_speedup,
)

__all__ = [
    "harmonic_speedup",
    "maximum_slowdown",
    "slowdowns",
    "weighted_speedup",
]
