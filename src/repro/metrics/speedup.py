"""System throughput and fairness metrics (paper §6).

* Weighted speedup (system throughput):  WS = Σ_i IPC_shared_i / IPC_alone_i
* Maximum slowdown (unfairness):         MS = max_i IPC_alone_i / IPC_shared_i
* Harmonic speedup (balance):            HS = N / Σ_i IPC_alone_i / IPC_shared_i
"""

from __future__ import annotations

from typing import List, Sequence


def _validate(alone_ipcs: Sequence[float], shared_ipcs: Sequence[float]) -> None:
    if len(alone_ipcs) != len(shared_ipcs):
        raise ValueError(
            f"{len(alone_ipcs)} alone IPCs vs {len(shared_ipcs)} shared IPCs"
        )
    if not alone_ipcs:
        raise ValueError("need at least one thread")
    if any(ipc <= 0 for ipc in alone_ipcs):
        raise ValueError("alone IPCs must be positive")
    if any(ipc < 0 for ipc in shared_ipcs):
        raise ValueError("shared IPCs must be non-negative")


def slowdowns(
    alone_ipcs: Sequence[float], shared_ipcs: Sequence[float]
) -> List[float]:
    """Per-thread slowdowns IPC_alone / IPC_shared (inf if starved)."""
    _validate(alone_ipcs, shared_ipcs)
    return [
        float("inf") if shared == 0 else alone / shared
        for alone, shared in zip(alone_ipcs, shared_ipcs)
    ]


def weighted_speedup(
    alone_ipcs: Sequence[float], shared_ipcs: Sequence[float]
) -> float:
    """System throughput: sum of per-thread speedups vs running alone."""
    _validate(alone_ipcs, shared_ipcs)
    return sum(
        shared / alone for alone, shared in zip(alone_ipcs, shared_ipcs)
    )


def maximum_slowdown(
    alone_ipcs: Sequence[float], shared_ipcs: Sequence[float]
) -> float:
    """Unfairness: the largest per-thread slowdown."""
    return max(slowdowns(alone_ipcs, shared_ipcs))


def harmonic_speedup(
    alone_ipcs: Sequence[float], shared_ipcs: Sequence[float]
) -> float:
    """Harmonic mean of speedups: balances throughput and fairness."""
    downs = slowdowns(alone_ipcs, shared_ipcs)
    if any(d == float("inf") for d in downs):
        return 0.0
    return len(downs) / sum(downs)
