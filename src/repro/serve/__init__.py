"""repro.serve — async simulation-as-a-service.

Wraps the campaign engine in an asyncio service: a stdlib-only
HTTP/JSON API over a bounded priority-lane job queue, a sharded worker
pool speaking the engine's task protocol, content-hash idempotent job
deduplication against in-flight work and the persistent campaign
store, and Clockwork-style per-job deadline / SLO-attainment
accounting.  See ``docs/SERVING.md``.
"""

from repro.serve.client import (
    LoadGenerator,
    LoadReport,
    ServeClient,
    ServeClientError,
    cycle_jobs,
    noop_jobs,
    plan_jobs,
    run_loadgen,
)
from repro.serve.queue import (
    DEFAULT_LANES,
    JobQueue,
    QueueFull,
    UnknownLane,
)
from repro.serve.server import (
    ServeConfig,
    ServeServer,
    ServeService,
    start_serving,
)
from repro.serve.slo import (
    BurnRateMonitor,
    SLORecord,
    SLOTracker,
    format_slo_text,
)
from repro.serve.state import (
    CANCELLED,
    DEDUP_OUTCOMES,
    DONE,
    FAILED,
    Job,
    JobLedger,
    KIND_NOOP,
    KIND_POINT,
    OUTCOME_ACCEPTED,
    OUTCOME_HIT_INFLIGHT,
    OUTCOME_HIT_LEDGER,
    OUTCOME_HIT_STORE,
    OUTCOME_REJECTED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    job_key,
    noop_key,
)
from repro.serve.tracing import (
    STAGES,
    JobTrace,
    ServeTimeline,
    ServeTracer,
    StageSpan,
    sim_trace_locator,
    traces_to_perfetto,
    write_perfetto,
)
from repro.serve.workers import NoIdleShard, ShardPool, run_task

__all__ = [
    "BurnRateMonitor",
    "CANCELLED",
    "DEDUP_OUTCOMES",
    "DEFAULT_LANES",
    "DONE",
    "FAILED",
    "Job",
    "JobLedger",
    "JobQueue",
    "JobTrace",
    "KIND_NOOP",
    "KIND_POINT",
    "LoadGenerator",
    "LoadReport",
    "NoIdleShard",
    "OUTCOME_ACCEPTED",
    "OUTCOME_HIT_INFLIGHT",
    "OUTCOME_HIT_LEDGER",
    "OUTCOME_HIT_STORE",
    "OUTCOME_REJECTED",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "SLORecord",
    "SLOTracker",
    "STAGES",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeServer",
    "ServeService",
    "ServeTimeline",
    "ServeTracer",
    "ShardPool",
    "StageSpan",
    "TERMINAL_STATES",
    "UnknownLane",
    "cycle_jobs",
    "format_slo_text",
    "job_key",
    "noop_jobs",
    "noop_key",
    "plan_jobs",
    "run_loadgen",
    "run_task",
    "sim_trace_locator",
    "start_serving",
    "traces_to_perfetto",
    "write_perfetto",
]
