"""Per-job deadline tracking and service-level SLO attainment.

Clockwork-style accounting (the ``numSLOSat`` / ``numSLONotSat``
counters of the MSS exemplar): every *served* job with a deadline lands
in exactly one of two counters the moment it finishes — latency within
deadline is **sat**, anything else (including failure) is **not-sat**.
Cancelled jobs were never served and carry no verdict; jobs without a
deadline are tracked for latency but excluded from attainment.

The tracker keeps the full per-job ledger alongside the counters, so
the rolled-up :meth:`SLOTracker.report` is *recomputable* from first
principles — :meth:`verify` asserts the counters match the ledger
exactly, which the soak test (and anyone auditing an attainment claim)
relies on.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.serve.state import CANCELLED, DONE, FAILED, Job

#: latency percentiles reported everywhere
PERCENTILES = (0.50, 0.90, 0.99)


@dataclass(frozen=True)
class SLORecord:
    """Immutable verdict for one finished job."""

    key: str
    lane: str
    status: str
    deadline_s: Optional[float]
    latency_s: float
    cached: bool
    sat: Optional[bool]   # None = no deadline (excluded from attainment)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class SLOTracker:
    """Counters plus the per-job deadline ledger they roll up."""

    def __init__(self) -> None:
        self.records: List[SLORecord] = []
        self.num_sat = 0        # Clockwork: numSLOSat
        self.num_not_sat = 0    # Clockwork: numSLONotSat
        self.num_no_deadline = 0

    def observe(self, job: Job) -> Optional[SLORecord]:
        """Account one terminal job; cancelled jobs are not served."""
        if not job.terminal:
            raise ValueError(f"job {job.key} is not terminal")
        if job.status == CANCELLED:
            return None
        record = SLORecord(
            key=job.key,
            lane=job.lane,
            status=job.status,
            deadline_s=job.deadline_s,
            latency_s=job.latency_s or 0.0,
            cached=job.cached,
            sat=job.sat,
        )
        self.records.append(record)
        if record.sat is None:
            self.num_no_deadline += 1
        elif record.sat:
            self.num_sat += 1
        else:
            self.num_not_sat += 1
        return record

    # ------------------------------------------------------------------
    # roll-ups
    # ------------------------------------------------------------------

    @property
    def served(self) -> int:
        return len(self.records)

    def attainment(self) -> Optional[float]:
        """Fraction of deadline-carrying served jobs that met it."""
        total = self.num_sat + self.num_not_sat
        if total == 0:
            return None
        return self.num_sat / total

    def _latency_stats(self, records: List[SLORecord]) -> dict:
        lat = sorted(r.latency_s for r in records)
        return {
            "count": len(lat),
            "mean_s": sum(lat) / len(lat) if lat else 0.0,
            "max_s": lat[-1] if lat else 0.0,
            **{
                f"p{int(q * 100)}_s": _percentile(lat, q)
                for q in PERCENTILES
            },
        }

    def report(self) -> dict:
        """Service-level attainment report (JSON-ready)."""
        lanes: Dict[str, List[SLORecord]] = {}
        for r in self.records:
            lanes.setdefault(r.lane, []).append(r)

        def _bucket(records: List[SLORecord]) -> dict:
            sat = sum(1 for r in records if r.sat is True)
            not_sat = sum(1 for r in records if r.sat is False)
            return {
                "served": len(records),
                "slo_sat": sat,
                "slo_not_sat": not_sat,
                "no_deadline": sum(1 for r in records if r.sat is None),
                "attainment": (
                    sat / (sat + not_sat) if sat + not_sat else None
                ),
                "failed": sum(1 for r in records if r.status == FAILED),
                "cached": sum(1 for r in records if r.cached),
                "latency": self._latency_stats(records),
            }

        return {
            "format": "repro.serve.slo/v1",
            "overall": _bucket(self.records),
            "lanes": {lane: _bucket(rs) for lane, rs in sorted(lanes.items())},
        }

    def verify(self) -> dict:
        """Cross-check the counters against the per-job ledger.

        Returns the discrepancy report; ``ok`` is True iff the rolled-up
        counters match a from-scratch recount of ``records`` exactly.
        """
        sat = sum(1 for r in self.records if r.sat is True)
        not_sat = sum(1 for r in self.records if r.sat is False)
        none = sum(1 for r in self.records if r.sat is None)
        ok = (
            sat == self.num_sat
            and not_sat == self.num_not_sat
            and none == self.num_no_deadline
            and all(
                (r.sat is None) == (r.deadline_s is None)
                or r.status == DONE or r.status == FAILED
                for r in self.records
            )
        )
        return {
            "ok": ok,
            "counters": {"sat": self.num_sat, "not_sat": self.num_not_sat,
                         "no_deadline": self.num_no_deadline},
            "ledger": {"sat": sat, "not_sat": not_sat, "no_deadline": none},
        }


class BurnRateMonitor:
    """SRE-style error-budget burn-rate alerting on SLO verdicts.

    The error budget is ``1 - objective`` (e.g. objective 0.99 leaves
    a 1 % budget).  The *burn rate* of a window is the window's
    not-sat fraction divided by the budget: burn 1.0 consumes the
    budget exactly at the sustainable pace, burn N consumes it N× too
    fast.  The classic multi-window rule avoids flapping: the alert
    **fires** only when both a fast and a slow window burn at or above
    ``fire_threshold``, and **clears** once the fast window drops
    below ``clear_threshold`` — so a drained service clears as the bad
    verdicts age out of the fast window, without needing new traffic.

    Only deadline-carrying verdicts enter the windows (no-deadline
    jobs burn no budget, matching :class:`SLOTracker.attainment`).
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, objective: float = 0.99,
                 fast_window_s: float = 60.0,
                 slow_window_s: float = 300.0,
                 fire_threshold: float = 2.0,
                 clear_threshold: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1): {objective}")
        self.objective = objective
        self.budget = 1.0 - objective
        self.fast_window_s = fast_window_s
        self.slow_window_s = max(slow_window_s, fast_window_s)
        self.fire_threshold = fire_threshold
        self.clear_threshold = clear_threshold
        self.clock = clock
        self.samples: deque = deque()   # (t, sat: bool), time-ordered
        self.state = "ok"
        self.fired = 0
        self.transitions: List[dict] = []

    def observe(self, record: Optional[SLORecord]) -> None:
        """Feed one terminal verdict (None / no-deadline are ignored)."""
        if record is None or record.sat is None:
            return
        self.samples.append((self.clock(), record.sat))
        self.evaluate()

    def _burn(self, now: float, window_s: float) -> float:
        served = missed = 0
        cutoff = now - window_s
        for t, sat in reversed(self.samples):
            if t < cutoff:
                break
            served += 1
            if not sat:
                missed += 1
        if served == 0:
            return 0.0
        return (missed / served) / self.budget

    def evaluate(self, now: Optional[float] = None) -> dict:
        """Re-derive burn rates and advance the alert state machine.

        Called on every verdict *and* on timeline ticks, so the alert
        clears by aging even when no new jobs arrive.
        """
        if now is None:
            now = self.clock()
        cutoff = now - self.slow_window_s
        while self.samples and self.samples[0][0] < cutoff:
            self.samples.popleft()
        fast = self._burn(now, self.fast_window_s)
        slow = self._burn(now, self.slow_window_s)
        if self.state == "ok":
            if fast >= self.fire_threshold and slow >= self.fire_threshold:
                self.state = "firing"
                self.fired += 1
                self.transitions.append({"t": now, "state": "firing"})
        elif fast < self.clear_threshold:
            self.state = "ok"
            self.transitions.append({"t": now, "state": "ok"})
        return {
            "state": self.state,
            "objective": self.objective,
            "budget": self.budget,
            "burn_fast": fast,
            "burn_slow": slow,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fire_threshold": self.fire_threshold,
            "clear_threshold": self.clear_threshold,
            "fired": self.fired,
            "window_verdicts": len(self.samples),
        }


def format_slo_text(report: dict) -> str:
    """Aligned-text rendering of :meth:`SLOTracker.report`."""
    lines = []
    overall = report["overall"]
    att = overall["attainment"]
    lines.append(
        f"served {overall['served']}  "
        f"sat {overall['slo_sat']}  not-sat {overall['slo_not_sat']}  "
        f"attainment "
        + (f"{att:.2%}" if att is not None else "n/a (no deadlines)")
    )
    lat = overall["latency"]
    lines.append(
        f"latency p50 {lat['p50_s'] * 1e3:.1f}ms  "
        f"p90 {lat['p90_s'] * 1e3:.1f}ms  "
        f"p99 {lat['p99_s'] * 1e3:.1f}ms  "
        f"max {lat['max_s'] * 1e3:.1f}ms"
    )
    for lane, bucket in report["lanes"].items():
        att = bucket["attainment"]
        lines.append(
            f"  lane {lane:<12} served {bucket['served']:>6}  "
            f"sat {bucket['slo_sat']:>6}  "
            f"attainment "
            + (f"{att:.2%}" if att is not None else "n/a")
        )
    return "\n".join(lines)
