"""Per-job deadline tracking and service-level SLO attainment.

Clockwork-style accounting (the ``numSLOSat`` / ``numSLONotSat``
counters of the MSS exemplar): every *served* job with a deadline lands
in exactly one of two counters the moment it finishes — latency within
deadline is **sat**, anything else (including failure) is **not-sat**.
Cancelled jobs were never served and carry no verdict; jobs without a
deadline are tracked for latency but excluded from attainment.

The tracker keeps the full per-job ledger alongside the counters, so
the rolled-up :meth:`SLOTracker.report` is *recomputable* from first
principles — :meth:`verify` asserts the counters match the ledger
exactly, which the soak test (and anyone auditing an attainment claim)
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.serve.state import CANCELLED, DONE, FAILED, Job

#: latency percentiles reported everywhere
PERCENTILES = (0.50, 0.90, 0.99)


@dataclass(frozen=True)
class SLORecord:
    """Immutable verdict for one finished job."""

    key: str
    lane: str
    status: str
    deadline_s: Optional[float]
    latency_s: float
    cached: bool
    sat: Optional[bool]   # None = no deadline (excluded from attainment)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class SLOTracker:
    """Counters plus the per-job deadline ledger they roll up."""

    def __init__(self) -> None:
        self.records: List[SLORecord] = []
        self.num_sat = 0        # Clockwork: numSLOSat
        self.num_not_sat = 0    # Clockwork: numSLONotSat
        self.num_no_deadline = 0

    def observe(self, job: Job) -> Optional[SLORecord]:
        """Account one terminal job; cancelled jobs are not served."""
        if not job.terminal:
            raise ValueError(f"job {job.key} is not terminal")
        if job.status == CANCELLED:
            return None
        record = SLORecord(
            key=job.key,
            lane=job.lane,
            status=job.status,
            deadline_s=job.deadline_s,
            latency_s=job.latency_s or 0.0,
            cached=job.cached,
            sat=job.sat,
        )
        self.records.append(record)
        if record.sat is None:
            self.num_no_deadline += 1
        elif record.sat:
            self.num_sat += 1
        else:
            self.num_not_sat += 1
        return record

    # ------------------------------------------------------------------
    # roll-ups
    # ------------------------------------------------------------------

    @property
    def served(self) -> int:
        return len(self.records)

    def attainment(self) -> Optional[float]:
        """Fraction of deadline-carrying served jobs that met it."""
        total = self.num_sat + self.num_not_sat
        if total == 0:
            return None
        return self.num_sat / total

    def _latency_stats(self, records: List[SLORecord]) -> dict:
        lat = sorted(r.latency_s for r in records)
        return {
            "count": len(lat),
            "mean_s": sum(lat) / len(lat) if lat else 0.0,
            "max_s": lat[-1] if lat else 0.0,
            **{
                f"p{int(q * 100)}_s": _percentile(lat, q)
                for q in PERCENTILES
            },
        }

    def report(self) -> dict:
        """Service-level attainment report (JSON-ready)."""
        lanes: Dict[str, List[SLORecord]] = {}
        for r in self.records:
            lanes.setdefault(r.lane, []).append(r)

        def _bucket(records: List[SLORecord]) -> dict:
            sat = sum(1 for r in records if r.sat is True)
            not_sat = sum(1 for r in records if r.sat is False)
            return {
                "served": len(records),
                "slo_sat": sat,
                "slo_not_sat": not_sat,
                "no_deadline": sum(1 for r in records if r.sat is None),
                "attainment": (
                    sat / (sat + not_sat) if sat + not_sat else None
                ),
                "failed": sum(1 for r in records if r.status == FAILED),
                "cached": sum(1 for r in records if r.cached),
                "latency": self._latency_stats(records),
            }

        return {
            "format": "repro.serve.slo/v1",
            "overall": _bucket(self.records),
            "lanes": {lane: _bucket(rs) for lane, rs in sorted(lanes.items())},
        }

    def verify(self) -> dict:
        """Cross-check the counters against the per-job ledger.

        Returns the discrepancy report; ``ok`` is True iff the rolled-up
        counters match a from-scratch recount of ``records`` exactly.
        """
        sat = sum(1 for r in self.records if r.sat is True)
        not_sat = sum(1 for r in self.records if r.sat is False)
        none = sum(1 for r in self.records if r.sat is None)
        ok = (
            sat == self.num_sat
            and not_sat == self.num_not_sat
            and none == self.num_no_deadline
            and all(
                (r.sat is None) == (r.deadline_s is None)
                or r.status == DONE or r.status == FAILED
                for r in self.records
            )
        )
        return {
            "ok": ok,
            "counters": {"sat": self.num_sat, "not_sat": self.num_not_sat,
                         "no_deadline": self.num_no_deadline},
            "ledger": {"sat": sat, "not_sat": not_sat, "no_deadline": none},
        }


def format_slo_text(report: dict) -> str:
    """Aligned-text rendering of :meth:`SLOTracker.report`."""
    lines = []
    overall = report["overall"]
    att = overall["attainment"]
    lines.append(
        f"served {overall['served']}  "
        f"sat {overall['slo_sat']}  not-sat {overall['slo_not_sat']}  "
        f"attainment "
        + (f"{att:.2%}" if att is not None else "n/a (no deadlines)")
    )
    lat = overall["latency"]
    lines.append(
        f"latency p50 {lat['p50_s'] * 1e3:.1f}ms  "
        f"p90 {lat['p90_s'] * 1e3:.1f}ms  "
        f"p99 {lat['p99_s'] * 1e3:.1f}ms  "
        f"max {lat['max_s'] * 1e3:.1f}ms"
    )
    for lane, bucket in report["lanes"].items():
        att = bucket["attainment"]
        lines.append(
            f"  lane {lane:<12} served {bucket['served']:>6}  "
            f"sat {bucket['slo_sat']:>6}  "
            f"attainment "
            + (f"{att:.2%}" if att is not None else "n/a")
        )
    return "\n".join(lines)
