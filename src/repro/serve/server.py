"""The simulation service: orchestration core plus HTTP/JSON API.

:class:`ServeService` is the long-lived controller — the Clockwork
exemplar's controller/worker split applied to the campaign engine.  It
owns the bounded inbox (:class:`~repro.serve.queue.JobQueue`), the
shard pool (:class:`~repro.serve.workers.ShardPool`), the job ledger,
the SLO tracker, and the persistent result store.  Submissions are
idempotent: a job's key is its content hash, deduplicated against
in-flight work, this lifetime's finished jobs, and the
:class:`~repro.campaign.store.CampaignStore` (which campaigns and the
service share, so a sim-point computed by either is never recomputed
by the other).

:class:`ServeServer` is a dependency-free HTTP/1.1 front end on raw
asyncio streams (keep-alive, JSON bodies)::

    POST /v1/jobs                submit one job (429 + Retry-After when full)
    POST /v1/batch               submit many jobs in one request
    GET  /v1/jobs/<key>          job status (?result=1 includes the payload)
    GET  /v1/jobs/<key>/wait     long-poll for completion (?timeout_s=N)
    POST /v1/jobs/<key>/cancel   cancel a queued job (best-effort)
    GET  /v1/events              completion-event tail (?after=SEQ&timeout_s=N)
    GET  /v1/slo                 SLO attainment report + ledger cross-check
    GET  /v1/metrics             metrics snapshot (+ time series / stage
                                 percentiles when tracing is on)
    GET  /v1/obs                 full observability snapshot (timeline, stage
                                 stats, burn state, trace reconciliation)
    GET  /v1/traces              completed job traces (?limit=N)
    GET  /v1/health              queue depth, shard health, conservation,
                                 SLO burn-rate alert state
    POST /v1/shutdown            graceful stop ({"drain": true} to finish work)

With ``ServeConfig.tracing`` every job carries a
:class:`~repro.serve.tracing.JobTrace` whose stage spans exactly tile
its accept→terminal interval; with it off the service holds
``tracer is None`` and each hook site pays a single branch.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.parse
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.campaign.hashing import alone_key
from repro.campaign.plan import CampaignPoint
from repro.campaign.store import (
    KIND_ALONE,
    KIND_FAILURE,
    KIND_POINT,
    CampaignStore,
)
from repro.serve.queue import JobQueue, QueueFull, UnknownLane
from repro.serve.slo import BurnRateMonitor, SLOTracker
from repro.serve.state import (
    CANCELLED,
    DONE,
    FAILED,
    KIND_NOOP,
    KIND_POINT as JOB_POINT,
    OUTCOME_ACCEPTED,
    OUTCOME_HIT_INFLIGHT,
    OUTCOME_HIT_LEDGER,
    OUTCOME_HIT_STORE,
    OUTCOME_REJECTED,
    QUEUED,
    RUNNING,
    Job,
    JobLedger,
    job_key,
)
from repro.serve.tracing import ServeTimeline, ServeTracer
from repro.serve.workers import NoIdleShard, ShardPool
from repro.telemetry import MetricsRegistry
from repro.telemetry.log import get_logger

_LOG = get_logger("serve")

#: serve.latency_s histogram bucket bounds (seconds)
LATENCY_BOUNDS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                  0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


@dataclass
class ServeConfig:
    """Tunables of one service instance."""

    shards: int = 2
    #: run tasks in threads in-process (deterministic reference path)
    inline: bool = False
    queue_capacity: int = 512
    #: extra attempts after a first failure before a job fails
    retries: int = 1
    backoff_s: float = 0.25
    #: per-task wall-clock timeout (process shards only)
    job_timeout_s: Optional[float] = None
    #: deadline applied when a submission names none
    default_deadline_s: Optional[float] = None
    #: per-lane deadline overrides
    lane_deadlines: Dict[str, float] = field(default_factory=dict)
    #: compact the result store when its log exceeds this many bytes
    #: (and at least one record has been superseded); None disables
    compact_threshold_bytes: Optional[int] = 64 * 1024 * 1024
    start_method: Optional[str] = None
    #: completion events kept for /v1/events tailing
    events_buffer: int = 65536
    #: per-job stage-span tracing (admission/queue/dispatch/execute/…);
    #: off by default — the off path pays one branch per hook site
    tracing: bool = False
    #: completed job traces retained for export and percentiles
    trace_buffer: int = 4096
    #: campaign trace_dir for jobs submitted with ``trace=True`` —
    #: the per-point sim event log lands at ``<trace_dir>/<key>.jsonl``
    trace_dir: Optional[str] = None
    #: epoch counter granularity for per-point sim traces (cycles)
    trace_epoch_cycles: Optional[int] = None
    #: live time-series sampling period (requires tracing; <=0 disables)
    timeline_interval_s: float = 1.0
    #: timeline samples retained
    timeline_buffer: int = 720
    #: SLO objective feeding the error-budget burn-rate alert
    slo_objective: float = 0.99
    burn_fast_window_s: float = 60.0
    burn_slow_window_s: float = 300.0
    burn_fire_threshold: float = 2.0
    burn_clear_threshold: float = 1.0


class ServeService:
    """Async orchestration core: queue -> shards -> ledger/SLO/store."""

    def __init__(
        self,
        store: Union[CampaignStore, str, Path, None] = None,
        config: Optional[ServeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._owns_store = isinstance(store, (str, bytes, Path))
        self.store = CampaignStore(store) if self._owns_store else store
        self.ledger = JobLedger()
        self.queue = JobQueue(capacity=self.config.queue_capacity)
        self.slo = SLOTracker()
        self.pool = ShardPool(
            shards=self.config.shards,
            timeout_s=self.config.job_timeout_s,
            inline=self.config.inline,
            start_method=self.config.start_method,
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._init_metrics()
        self.burn = BurnRateMonitor(
            objective=self.config.slo_objective,
            fast_window_s=self.config.burn_fast_window_s,
            slow_window_s=self.config.burn_slow_window_s,
            fire_threshold=self.config.burn_fire_threshold,
            clear_threshold=self.config.burn_clear_threshold,
        )
        self.tracer: Optional[ServeTracer] = (
            ServeTracer(buffer=self.config.trace_buffer,
                        metrics=self.metrics,
                        latency_bounds=LATENCY_BOUNDS)
            if self.config.tracing else None
        )
        self.timeline: Optional[ServeTimeline] = (
            ServeTimeline(self.config.timeline_buffer)
            if self.config.tracing else None
        )
        self._timeline_task: Optional[asyncio.Task] = None
        #: alone-run artifacts known service-wide: key -> hint dict
        self._alone: Dict[str, dict] = {}
        if self.store is not None:
            for k in self.store.keys(KIND_ALONE):
                record = self.store.get(k)
                self._alone[k] = {
                    "key": k,
                    "spec": record["meta"]["spec"],
                    "seed": record["meta"]["seed"],
                    "ipc": record["payload"]["ipc"],
                }
        self._events: deque = deque(maxlen=self.config.events_buffer)
        self._event_seq = 0
        self._event_arrived = asyncio.Event()
        self._superseded = 0
        self._compactions = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._started_at: Optional[float] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def _init_metrics(self) -> None:
        m = self.metrics
        self._c = {
            name: m.counter(f"serve.jobs.{name}")
            for name in ("submitted", "accepted", "rejected", "done",
                         "failed", "cancelled", "retries", "hit_inflight",
                         "hit_ledger", "hit_store")
        }
        self._c["compactions"] = m.counter("serve.store.compactions")
        self._latency = m.histogram("serve.latency_s",
                                    bounds=LATENCY_BOUNDS)
        m.register("serve.queue.depth", self.queue.depth)
        for lane in self.queue.lanes:
            m.register("serve.queue.depth",
                       (lambda l: lambda: self.queue.depths()[l])(lane),
                       labels={"lane": lane})
        m.register("serve.shards.busy", lambda: self.pool.busy_count)
        m.register("serve.shards.alive", lambda: self.pool.alive_count)
        m.register("serve.jobs.active", lambda: len(self.ledger.active))

    def metrics_snapshot(self) -> Dict[str, float]:
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._started_at = time.monotonic()
        await self.pool.start(self._on_result)
        self._dispatcher_task = asyncio.create_task(self._dispatcher())
        if (self.timeline is not None
                and self.config.timeline_interval_s > 0):
            self._timeline_task = asyncio.create_task(
                self._timeline_loop())
        _LOG.info(
            "serve: %d %s shard(s), queue capacity %d, store=%s",
            self.config.shards,
            "inline" if self.config.inline else "process",
            self.config.queue_capacity,
            self.store.root if self.store is not None else None,
        )

    async def stop(self, drain: bool = False) -> None:
        """Stop the service; ``drain=True`` finishes accepted work first."""
        if self._stopping:
            return
        self._stopping = True
        self.queue.close()
        if drain:
            await self.drain()
        # Cancel whatever is still queued or running: every accepted
        # job must reach a terminal state (zero lost jobs).
        for job in self.ledger.active:
            if job.status in (QUEUED, RUNNING):
                self._complete(job, CANCELLED)
        if self._dispatcher_task is not None:
            self._dispatcher_task.cancel()
            try:
                await self._dispatcher_task
            except asyncio.CancelledError:
                pass
        if self._timeline_task is not None:
            self._sample_timeline()  # final post-drain sample
            self._timeline_task.cancel()
            try:
                await self._timeline_task
            except asyncio.CancelledError:
                pass
        await self.pool.shutdown()
        if self.store is not None:
            self.store.flush_index()
            if self._owns_store:
                self.store.close()
        _LOG.info("serve: stopped (%s)", self.ledger.counts())

    async def drain(self, poll_s: float = 0.02,
                    timeout: Optional[float] = None) -> bool:
        """Wait until no accepted job is queued or running."""
        deadline = time.monotonic() + timeout if timeout else None
        while self.ledger.active:
            if deadline is not None and time.monotonic() > deadline:
                return False
            await asyncio.sleep(poll_s)
        return True

    # ------------------------------------------------------------------
    # submission (idempotent)
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: dict,
        kind: str = JOB_POINT,
        lane: str = "default",
        deadline_s: Optional[float] = None,
        trace: bool = False,
    ) -> Tuple[str, Optional[Job], float]:
        """Submit one job; returns ``(outcome, job, retry_after)``.

        ``job`` is None only for :data:`OUTCOME_REJECTED`;
        ``retry_after`` is meaningful only for rejections.  ``trace``
        requests per-point sim tracing (needs ``ServeConfig.trace_dir``)
        and is deliberately outside the job's content hash.
        """
        if lane not in self.queue.lanes:
            raise UnknownLane(
                f"unknown lane {lane!r}; have {sorted(self.queue.lanes)}"
            )
        tracer = self.tracer
        t0_ns = time.monotonic_ns() if tracer is not None else 0
        point = CampaignPoint.from_dict(spec) if kind == JOB_POINT else None
        key = point.key if point is not None else job_key(kind, spec)
        self._c["submitted"].inc()

        existing = self.ledger.get(key)
        if existing is not None:
            outcome = (OUTCOME_HIT_LEDGER if existing.terminal
                       else OUTCOME_HIT_INFLIGHT)
            self.ledger.note(outcome)
            self._c["hit_ledger" if existing.terminal
                    else "hit_inflight"].inc()
            if tracer is not None:
                tracer.hit(key)
            return outcome, existing, 0.0

        if deadline_s is None:
            deadline_s = self.config.lane_deadlines.get(
                lane, self.config.default_deadline_s
            )

        if (kind == JOB_POINT and self.store is not None
                and self.store.kind(key) == KIND_POINT):
            record = self.store.get(key)
            job = Job(key=key, kind=kind, spec=spec, lane=lane,
                      deadline_s=deadline_s, point=point, cached=True,
                      submitted_at=time.monotonic())
            self.ledger.add(job)
            self.ledger.note(OUTCOME_HIT_STORE)
            self._c["hit_store"].inc()
            if tracer is not None:
                # zero-execute trace: admission only, hit-annotated
                tracer.begin(job, t0_ns, hit=OUTCOME_HIT_STORE)
            self._complete(job, DONE, payload=record["payload"])
            return OUTCOME_HIT_STORE, job, 0.0

        job = Job(key=key, kind=kind, spec=spec, lane=lane,
                  deadline_s=deadline_s, point=point, trace=trace,
                  submitted_at=time.monotonic())
        try:
            self.queue.offer(job)
        except QueueFull as exc:
            self.ledger.note(OUTCOME_REJECTED)
            self._c["rejected"].inc()
            return OUTCOME_REJECTED, None, exc.retry_after
        self.ledger.add(job)
        self.ledger.note(OUTCOME_ACCEPTED)
        self._c["accepted"].inc()
        if tracer is not None:
            tracer.begin(job, t0_ns)
            tracer.stage(job, "queue_wait", time.monotonic_ns())
        return OUTCOME_ACCEPTED, job, 0.0

    def cancel(self, key: str) -> bool:
        """Cancel a queued job (running jobs finish; returns False)."""
        job = self.ledger.get(key)
        if job is None or job.terminal or job.status == RUNNING:
            return False
        self.queue.remove(key)
        self._complete(job, CANCELLED)
        return True

    def job(self, key: str) -> Optional[Job]:
        return self.ledger.get(key)

    async def wait(self, key: str,
                   timeout: Optional[float] = None) -> Optional[Job]:
        job = self.ledger.get(key)
        if job is None:
            return None
        return await job.wait(timeout)

    # ------------------------------------------------------------------
    # dispatch + results
    # ------------------------------------------------------------------

    async def _dispatcher(self) -> None:
        while True:
            job = await self.queue.take()
            if job is None:
                break
            if job.status != QUEUED:
                continue  # cancelled while queued
            tracer = self.tracer
            if tracer is not None:
                # dispatch covers shard selection *and* any wait for
                # an idle shard below
                tracer.stage(job, "dispatch", time.monotonic_ns())
            while True:
                try:
                    job.attempts += 1
                    job.status = RUNNING
                    job.started_at = time.monotonic()
                    job.shard = self.pool.dispatch(self._task_payload(job))
                    if tracer is not None:
                        tracer.stage(job, "execute", time.monotonic_ns())
                    break
                except NoIdleShard:
                    job.attempts -= 1
                    job.status = QUEUED
                    await self.pool.idle_event.wait()
                    if job.status != QUEUED:
                        break  # cancelled while waiting for a shard

    def _task_payload(self, job: Job) -> dict:
        if job.kind == KIND_NOOP:
            return {"kind": "noop", "key": job.key,
                    "attempt": job.attempts, "spec": job.spec}
        task = {
            "kind": "point",
            "key": job.key,
            "attempt": job.attempts,
            "point": job.spec,
            "alone_hints": self._hints_for(job.point),
        }
        if job.trace and self.config.trace_dir:
            task["trace"] = {
                "dir": self.config.trace_dir,
                "epoch_cycles": self.config.trace_epoch_cycles,
            }
        return task

    def _hints_for(self, point: CampaignPoint) -> List[dict]:
        hints = []
        for spec in point.workload.specs:
            k = alone_key(spec, point.config, point.seed)
            hint = self._alone.get(k)
            if hint is not None and hint["seed"] == point.seed:
                hints.append(hint)
        return hints

    def _absorb_alone(self, records) -> None:
        for rec in records:
            if rec["key"] in self._alone:
                continue
            self._alone[rec["key"]] = rec
            if self.store is not None:
                self._store_put(
                    rec["key"], KIND_ALONE, {"ipc": rec["ipc"]},
                    meta={"spec": rec["spec"], "seed": rec["seed"],
                          "benchmark": rec["spec"]["name"]},
                )

    def _on_result(self, msg: dict) -> None:
        job = self.ledger.get(msg["key"])
        if (job is None or job.terminal or job.status != RUNNING
                or msg["attempt"] != job.attempts):
            return  # stale attempt (timeout raced the real result)
        tracer = self.tracer
        # all execute-span boundaries come from the *service* clock
        # (arrival of the result message); the worker's own duration
        # is attached as an annotation so clock skew cannot break the
        # tiling invariant
        exec_detail = None
        if tracer is not None:
            exec_detail = {"shard": msg["shard"],
                           "attempt": msg["attempt"],
                           "worker_s": msg.get("duration", 0.0)}
        if msg["ok"]:
            if tracer is not None:
                tracer.stage(job, "report", time.monotonic_ns(),
                             detail=exec_detail)
                if job.trace:
                    payload = msg.get("payload") or {}
                    sim_trace = (payload.get("telemetry") or {}).get("trace")
                    if sim_trace:
                        tracer.annotate(job, sim_trace=sim_trace)
            self._absorb_alone(msg.get("alone") or ())
            self._persist_success(job, msg)
            self._complete(job, DONE, payload=msg["payload"])
            return
        if job.attempts <= self.config.retries:
            self.ledger.counters["retries"] += 1
            self._c["retries"].inc()
            job.status = QUEUED
            job.shard = None
            if tracer is not None:
                exec_detail["error"] = msg["error"]
                tracer.stage(
                    job,
                    "timeout_kill" if msg.get("timeout") else "retry_backoff",
                    time.monotonic_ns(), detail=exec_detail)
            delay = self.config.backoff_s * (2 ** (job.attempts - 1))
            _LOG.warning("retrying %s in %.2fs (attempt %d failed: %s)",
                         job.key, delay, job.attempts, msg["error"])
            self._loop.call_later(delay, self._requeue, job)
            return
        _LOG.error("%s failed permanently after %d attempts: %s",
                   job.key, job.attempts, msg["error"])
        if tracer is not None:
            exec_detail["error"] = msg["error"]
            tracer.stage(job, "report", time.monotonic_ns(),
                         detail=exec_detail)
        self._persist_failure(job, msg)
        self._complete(job, FAILED, error=msg["error"])

    def _requeue(self, job: Job) -> None:
        if job.status == QUEUED and not self._stopping:
            if self.tracer is not None:
                self.tracer.stage(job, "queue_wait", time.monotonic_ns())
            self.queue.offer(job, front=True)

    def _complete(self, job: Job, status: str, *,
                  payload: Optional[dict] = None,
                  error: Optional[str] = None) -> None:
        job.finish(status, payload=payload, error=error)
        self.ledger.note_terminal(job)
        self._c[status].inc()
        if status == DONE and not job.cached:
            self.queue.note_done()
        self.burn.observe(self.slo.observe(job))
        if job.latency_s is not None and status != CANCELLED:
            self._latency.observe(job.latency_s)
        if self.tracer is not None:
            self.tracer.finish(job, time.monotonic_ns())
        self._emit_event(job)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _store_put(self, key: str, kind: str, payload: dict,
                   meta: Optional[dict] = None) -> None:
        if key in self.store:
            self._superseded += 1
        self.store.put(key, kind, payload, meta=meta)
        self._maybe_compact()

    def _persist_success(self, job: Job, msg: dict) -> None:
        if self.store is None or job.kind != JOB_POINT:
            return
        point = job.point
        self._store_put(
            job.key, KIND_POINT, msg["payload"],
            meta={
                "workload": point.workload.name,
                "scheduler": point.scheduler,
                "seed": point.seed,
                "tag": point.tag,
                "attempts": job.attempts,
                "duration": msg["duration"],
            },
        )

    def _persist_failure(self, job: Job, msg: dict) -> None:
        if self.store is None or job.kind != JOB_POINT:
            return
        point = job.point
        self._store_put(
            job.key, KIND_FAILURE,
            {"error": msg["error"], "traceback": msg.get("traceback"),
             "attempts": job.attempts},
            meta={
                "workload": point.workload.name,
                "scheduler": point.scheduler,
                "seed": point.seed,
                "tag": point.tag,
            },
        )

    def _maybe_compact(self) -> None:
        threshold = self.config.compact_threshold_bytes
        if (threshold is None or self.store is None
                or self._superseded == 0):
            return
        if not self.store.log_path.exists():
            return
        if self.store.log_path.stat().st_size <= threshold:
            return
        stats = self.store.compact()
        self._superseded = 0
        self._compactions += 1
        self._c["compactions"].inc()
        _LOG.info("serve: compacted store %s: %s", self.store.root, stats)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def _emit_event(self, job: Job) -> None:
        self._event_seq += 1
        self._events.append(
            {
                "seq": self._event_seq,
                "key": job.key,
                "kind": job.kind,
                "status": job.status,
                "lane": job.lane,
                "latency_s": job.latency_s,
                "sat": job.sat,
                "cached": job.cached,
                "attempts": job.attempts,
            }
        )
        self._event_arrived.set()

    def events_since(self, after: int, limit: int = 4096) -> dict:
        events = [e for e in self._events if e["seq"] > after][:limit]
        return {
            "events": events,
            "next": events[-1]["seq"] if events else after,
            "latest": self._event_seq,
        }

    async def events_wait(self, after: int, timeout: float = 10.0,
                          limit: int = 4096) -> dict:
        """Long-poll variant of :meth:`events_since`."""
        deadline = time.monotonic() + timeout
        while True:
            batch = self.events_since(after, limit)
            if batch["events"] or self._stopping:
                return batch
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return batch
            self._event_arrived.clear()
            try:
                await asyncio.wait_for(self._event_arrived.wait(),
                                       remaining)
            except asyncio.TimeoutError:
                return self.events_since(after, limit)

    # ------------------------------------------------------------------
    # live observability (timeline + snapshots)
    # ------------------------------------------------------------------

    async def _timeline_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.timeline_interval_s)
            self._sample_timeline()

    def _sample_timeline(self) -> None:
        if self.timeline is None:
            return
        burn = self.burn.evaluate()  # ticking also ages alerts clear
        c = self.ledger.counters
        submitted = c["submitted"]
        self.timeline.record({
            "t_s": (time.monotonic() - self._started_at
                    if self._started_at else 0.0),
            "depth": self.queue.depth(),
            "depths": self.queue.depths(),
            "shards_busy": self.pool.busy_count,
            "shards_alive": self.pool.alive_count,
            "utilization": self.pool.busy_count / self.pool.size,
            "busy_s": self.pool.busy_s,
            "active": len(self.ledger.active),
            "done": c["done"],
            "failed": c["failed"],
            "hit_rate": self.ledger.hits / submitted if submitted else 0.0,
            "attainment": self.slo.attainment(),
            "burn_fast": burn["burn_fast"],
            "burn_slow": burn["burn_slow"],
            "alert": burn["state"],
        })

    def obs_snapshot(self) -> dict:
        """Everything the dashboard (and ``/v1/obs``) needs, one dict."""
        snap = {
            "format": "repro.serve.obs/v1",
            "tracing": self.tracer is not None,
            "uptime_s": (
                time.monotonic() - self._started_at
                if self._started_at else 0.0
            ),
            "jobs": self.ledger.counts(),
            "conservation": self.ledger.conservation(),
            "queue": self.queue.stats(),
            "shards": self.pool.stats(),
            "slo": self.slo_report(),
            "burn": self.burn.evaluate(),
            "timeline": (self.timeline.snapshot()
                         if self.timeline is not None else []),
        }
        if self.tracer is not None:
            snap["stages"] = self.tracer.stage_stats()
            snap["lanes"] = self.tracer.lane_stats()
            snap["tiling"] = self.tracer.tiling_report()
            snap["reconcile"] = self.tracer.reconcile(self.ledger, self.slo)
        return snap

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------

    def slo_report(self) -> dict:
        report = self.slo.report()
        report["verified"] = self.slo.verify()
        report["conservation"] = self.ledger.conservation()
        return report

    def health(self) -> dict:
        store_info = None
        if self.store is not None:
            size = (self.store.log_path.stat().st_size
                    if self.store.log_path.exists() else 0)
            store_info = {
                "path": str(self.store.root),
                "records": len(self.store),
                "bytes": size,
                "compactions": self._compactions,
            }
        return {
            "status": "stopping" if self._stopping else "serving",
            "uptime_s": (
                time.monotonic() - self._started_at
                if self._started_at else 0.0
            ),
            "queue": {
                "depth": self.queue.depth(),
                "depths": self.queue.depths(),
                "capacity": self.queue.capacity,
                "retry_after": self.queue.retry_after(),
                "service_rate": self.queue.service_rate(),
            },
            "shards": self.pool.stats(),
            "jobs": self.ledger.counts(),
            "conservation": self.ledger.conservation(),
            "slo_alert": self.burn.evaluate(),
            "store": store_info,
        }


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 409: "Conflict",
            429: "Too Many Requests", 500: "Internal Server Error"}


class ServeServer:
    """Minimal HTTP/1.1 JSON API over one :class:`ServeService`."""

    def __init__(self, service: ServeService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.shutdown_requested = asyncio.Event()
        self._drain_on_shutdown: Optional[bool] = None

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _LOG.info("serve: listening on http://%s:%d", self.host, self.port)
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def run_until_shutdown(self, drain: bool = True) -> None:
        """Block until ``/v1/shutdown`` (or :meth:`request_shutdown`)."""
        await self.shutdown_requested.wait()
        if self._drain_on_shutdown is not None:
            drain = self._drain_on_shutdown
        await self.stop()
        await self.service.stop(drain=drain)

    def request_shutdown(self) -> None:
        self.shutdown_requested.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, query, headers, body = request
                try:
                    status, payload, extra = await self._route(
                        method, path, query, body
                    )
                except Exception as exc:  # surface, don't kill the conn
                    _LOG.exception("serve: %s %s failed", method, path)
                    status, payload, extra = 500, {"error": repr(exc)}, {}
                await self._respond(writer, status, payload, extra)
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length else b""
        parsed = urllib.parse.urlsplit(target)
        query = {
            k: v[-1]
            for k, v in urllib.parse.parse_qs(parsed.query).items()
        }
        return method.upper(), parsed.path, query, headers, body

    @staticmethod
    async def _respond(writer, status: int, payload: dict,
                       extra_headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: keep-alive",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def _submit_one(self, item: dict) -> Tuple[int, dict, dict]:
        kind = item.get("kind", JOB_POINT)
        spec = item.get("spec")
        if not isinstance(spec, dict):
            return 400, {"error": "missing job spec"}, {}
        try:
            outcome, job, retry_after = self.service.submit(
                spec, kind=kind,
                lane=item.get("lane", "default"),
                deadline_s=item.get("deadline_s"),
                trace=bool(item.get("trace", False)),
            )
        except (UnknownLane, ValueError, KeyError, TypeError) as exc:
            return 400, {"error": repr(exc)}, {}
        if outcome == OUTCOME_REJECTED:
            return (
                429,
                {"outcome": outcome, "retry_after": retry_after},
                {"Retry-After": f"{retry_after:.3f}"},
            )
        return 202, {"outcome": outcome, "job": job.to_dict()}, {}

    async def _route(self, method: str, path: str, query: dict,
                     body: bytes) -> Tuple[int, dict, dict]:
        data = {}
        if body:
            try:
                data = json.loads(body)
            except ValueError:
                return 400, {"error": "invalid JSON body"}, {}

        if method == "POST" and path == "/v1/jobs":
            return self._submit_one(data)

        if method == "POST" and path == "/v1/batch":
            jobs = data.get("jobs")
            if not isinstance(jobs, list):
                return 400, {"error": "body must carry a jobs list"}, {}
            results = []
            for item in jobs:
                status, payload, _ = self._submit_one(item)
                results.append({"status": status, **payload})
                # yield so the dispatcher interleaves with a big batch
                await asyncio.sleep(0)
            counts: Dict[str, int] = {}
            for r in results:
                outcome = r.get("outcome", "error")
                counts[outcome] = counts.get(outcome, 0) + 1
            return 200, {"results": results, "counts": counts}, {}

        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if method == "GET" and rest.endswith("/wait"):
                key = rest[: -len("/wait")]
                timeout = float(query.get("timeout_s", 30.0))
                job = await self.service.wait(key, timeout)
                if job is None:
                    return 404, {"error": f"unknown job {key}"}, {}
                return (200 if job.terminal else 202,
                        {"job": job.to_dict(include_payload=job.terminal)},
                        {})
            if method == "POST" and rest.endswith("/cancel"):
                key = rest[: -len("/cancel")]
                job = self.service.job(key)
                if job is None:
                    return 404, {"error": f"unknown job {key}"}, {}
                cancelled = self.service.cancel(key)
                return (200 if cancelled else 409,
                        {"cancelled": cancelled, "job": job.to_dict()}, {})
            if method == "GET":
                job = self.service.job(rest)
                if job is None:
                    return 404, {"error": f"unknown job {rest}"}, {}
                include = query.get("result") in ("1", "true", "yes")
                return 200, {"job": job.to_dict(include_payload=include)}, {}

        if method == "GET" and path == "/v1/events":
            after = int(query.get("after", 0))
            timeout = float(query.get("timeout_s", 0.0))
            limit = int(query.get("limit", 4096))
            if timeout > 0:
                batch = await self.service.events_wait(after, timeout,
                                                       limit)
            else:
                batch = self.service.events_since(after, limit)
            return 200, batch, {}

        if method == "GET" and path == "/v1/slo":
            return 200, self.service.slo_report(), {}

        if method == "GET" and path == "/v1/metrics":
            payload = {"metrics": self.service.metrics_snapshot()}
            if self.service.timeline is not None:
                payload["series"] = self.service.timeline.snapshot()
            if self.service.tracer is not None:
                payload["stages"] = self.service.tracer.stage_stats()
                payload["lanes"] = self.service.tracer.lane_stats()
            return 200, payload, {}

        if method == "GET" and path == "/v1/obs":
            return 200, self.service.obs_snapshot(), {}

        if method == "GET" and path == "/v1/traces":
            tracer = self.service.tracer
            if tracer is None:
                return 404, {"error": "tracing disabled "
                                      "(boot with ServeConfig.tracing)"}, {}
            limit = int(query.get("limit", -1))
            return 200, tracer.snapshot(None if limit < 0 else limit), {}

        if method == "GET" and path == "/v1/health":
            return 200, self.service.health(), {}

        if method == "POST" and path == "/v1/shutdown":
            drain = bool(data.get("drain", True))
            # respond first, then tear down
            asyncio.get_running_loop().call_soon(self.request_shutdown)
            self._drain_on_shutdown = drain
            return 200, {"stopping": True, "drain": drain}, {}

        return 404, {"error": f"no route {method} {path}"}, {}


async def start_serving(
    store=None,
    config: Optional[ServeConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[ServeService, ServeServer]:
    """Boot a service plus its HTTP server; returns both, started."""
    service = ServeService(store=store, config=config, metrics=metrics)
    await service.start()
    server = ServeServer(service, host=host, port=port)
    await server.start()
    return service, server
