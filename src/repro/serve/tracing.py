"""End-to-end job tracing for the serving layer.

Every job admitted by :class:`~repro.serve.server.ServeService` gets a
:class:`JobTrace`: a sequence of **disjoint, contiguous stage spans**

    admission / queue_wait / dispatch / execute /
    (retry_backoff | timeout_kill)* / report

that exactly tiles the job's accept→terminal interval.  "Exactly" is
load-bearing: all boundaries are captured as ``time.monotonic_ns()``
integers on the *service* clock, so the telescoping sum

    sum(end - start for span in spans) == terminal_ns - accepted_ns

holds bit-for-bit — no float rounding, no worker-clock skew.  Worker
shards report their own measured ``duration``; it is recorded as an
annotation on the ``execute`` span (``worker_s``, with the service/
worker delta in ``skew_s``) but never used for span boundaries, so a
skewed or slow shard clock cannot break tiling.

The tracer is the service-side counterpart of ``repro.obs``'s request
spans: O(1) per transition, a bounded ring of completed traces for
percentiles/export, cumulative per-lane/per-stage counters for exact
reconciliation against the :class:`~repro.serve.state.JobLedger`
conservation laws and the SLO record ledger, and Perfetto export
through ``repro.telemetry.sinks`` so service traces open in the same
UI as simulator traces (with sim spans nested under their job's
``execute`` span when the job ran with sim tracing on).

Everything here is behind the repo's one-branch-when-off guard: with
``ServeConfig.tracing`` off the service holds ``tracer = None`` and
every hook site pays a single ``is None`` test.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..telemetry.sinks import events_to_perfetto, rebase_trace_events

#: canonical stage order (waterfall order; retries interleave)
STAGES = (
    "admission",
    "queue_wait",
    "dispatch",
    "execute",
    "retry_backoff",
    "timeout_kill",
    "report",
)

#: legal successor stages — the trace grammar as a transition table
_NEXT = {
    "admission": {"queue_wait", "report"},
    "queue_wait": {"dispatch", "report"},
    "dispatch": {"execute", "report"},
    "execute": {"retry_backoff", "timeout_kill", "report"},
    "retry_backoff": {"queue_wait", "report"},
    "timeout_kill": {"queue_wait", "report"},
    "report": set(),
}

_NS = 1_000_000_000


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (same rule as ``repro.serve.slo``)."""
    if not sorted_values:
        return 0.0
    idx = max(0, min(len(sorted_values) - 1,
                     int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[idx]


@dataclass
class StageSpan:
    """One closed stage interval, ``[start_ns, end_ns)`` on the
    service monotonic clock (ns since the tracer epoch)."""

    __slots__ = ("stage", "start_ns", "end_ns", "detail")

    stage: str
    start_ns: int
    end_ns: int
    detail: Optional[Dict[str, Any]]

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / _NS

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "stage": self.stage,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.detail:
            d["detail"] = self.detail
        return d


@dataclass
class JobTrace:
    """All stage spans of one job, plus identity and annotations."""

    key: str
    kind: str
    lane: str
    spans: List[StageSpan] = field(default_factory=list)
    status: Optional[str] = None
    attempts: int = 0
    hits: int = 0                      # dedup attachments after admission
    hit: Optional[str] = None          # zero-execute tier: "hit-store"
    annotations: Dict[str, Any] = field(default_factory=dict)
    _open_stage: Optional[str] = None
    _open_ns: int = 0

    # -- span construction (driven by ServeTracer) --------------------
    def _transition(self, stage: str, t_ns: int,
                    detail: Optional[Dict[str, Any]] = None) -> None:
        if self._open_stage is not None:
            span = StageSpan(self._open_stage, self._open_ns,
                             max(t_ns, self._open_ns), detail)
            if detail is not None and "worker_s" in detail:
                # worker-measured duration vs the service-clock span:
                # the skew is diagnostic only, never a span boundary
                detail["skew_s"] = span.duration_s - detail["worker_s"]
            self.spans.append(span)
        self._open_stage = stage
        self._open_ns = max(t_ns, self._open_ns)

    def _close(self, t_ns: int,
               detail: Optional[Dict[str, Any]] = None) -> None:
        if self._open_stage is None:
            return
        t = max(t_ns, self._open_ns)
        if self._open_stage == "report":
            # normal terminal: the report phase was opened when the
            # result arrived; seal it at the terminal instant.
            self.spans.append(StageSpan("report", self._open_ns, t, detail))
        else:
            # a trace sealed mid-stage (store hit, cancellation, …):
            # close the open stage and append a zero-length report
            # marker so the grammar still terminates in report.
            self.spans.append(StageSpan(self._open_stage, self._open_ns, t,
                                        detail))
            self.spans.append(StageSpan("report", t, t, None))
        self._open_stage = None

    # -- invariants ---------------------------------------------------
    @property
    def accepted_ns(self) -> int:
        return self.spans[0].start_ns if self.spans else 0

    @property
    def terminal_ns(self) -> int:
        return self.spans[-1].end_ns if self.spans else 0

    @property
    def latency_s(self) -> float:
        return (self.terminal_ns - self.accepted_ns) / _NS

    def stage_s(self, stage: str) -> float:
        return sum(s.duration_ns for s in self.spans
                   if s.stage == stage) / _NS

    def tiling_ok(self) -> bool:
        """Exact tiling: non-negative, contiguous, telescoping spans."""
        if not self.spans:
            return False
        if any(s.end_ns < s.start_ns for s in self.spans):
            return False
        for prev, cur in zip(self.spans, self.spans[1:]):
            if cur.start_ns != prev.end_ns:
                return False
        total = sum(s.duration_ns for s in self.spans)
        return total == self.terminal_ns - self.accepted_ns

    def grammar_ok(self) -> bool:
        """Spans follow the stage grammar and terminate in report."""
        if not self.spans or self.spans[0].stage != "admission":
            return False
        if self.spans[-1].stage != "report":
            return False
        for prev, cur in zip(self.spans, self.spans[1:]):
            if cur.stage not in _NEXT[prev.stage]:
                return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "key": self.key,
            "kind": self.kind,
            "lane": self.lane,
            "status": self.status,
            "attempts": self.attempts,
            "hits": self.hits,
            "accepted_ns": self.accepted_ns,
            "terminal_ns": self.terminal_ns,
            "latency_s": self.latency_s,
            "spans": [s.to_dict() for s in self.spans],
        }
        if self.hit:
            d["hit"] = self.hit
        if self.annotations:
            d["annotations"] = self.annotations
        return d


class ServeTracer:
    """Collects :class:`JobTrace` objects and reconciles the books.

    One instance per service; all methods are O(1) per call (the ring
    buffer bounds memory at ``buffer`` completed traces while the
    cumulative counters keep exact totals forever).
    """

    def __init__(self, buffer: int = 4096, metrics=None,
                 latency_bounds: Optional[Sequence[float]] = None) -> None:
        self.active: Dict[str, JobTrace] = {}
        self.completed: deque = deque(maxlen=max(1, buffer))
        self.started = 0
        self.finished = 0
        self.hits_attached = 0
        self.tiling_checked = 0
        self.tiling_violations = 0
        self.grammar_violations = 0
        self.first_violation: Optional[Dict[str, Any]] = None
        #: lane -> status -> count of finished traces
        self.finished_by_lane: Dict[str, Dict[str, int]] = {}
        #: lane -> stage -> cumulative span count
        self.spans_by_lane: Dict[str, Dict[str, int]] = {}
        #: stage -> [count, total_s, max_s] (cumulative, exact)
        self.stage_totals: Dict[str, List[float]] = {}
        self._hist = {}
        if metrics is not None and latency_bounds is not None:
            for stage in STAGES:
                self._hist[stage] = metrics.histogram(
                    "serve.stage_s", {"stage": stage},
                    bounds=latency_bounds)

    # -- lifecycle hooks ----------------------------------------------
    def begin(self, job, t_ns: int, hit: Optional[str] = None) -> JobTrace:
        """Open a trace with its ``admission`` span starting at t_ns."""
        trace = JobTrace(key=job.key, kind=job.kind, lane=job.lane, hit=hit)
        trace._open_stage = "admission"
        trace._open_ns = t_ns
        self.active[job.key] = trace
        self.started += 1
        return trace

    def stage(self, job, stage: str, t_ns: int,
              detail: Optional[Dict[str, Any]] = None) -> None:
        """Close the open stage (attaching ``detail`` to it) and open
        ``stage`` — the single transition primitive."""
        trace = self.active.get(job.key)
        if trace is not None:
            trace._transition(stage, t_ns, detail)

    def annotate(self, job, **kv: Any) -> None:
        trace = self.active.get(job.key)
        if trace is not None:
            trace.annotations.update(kv)

    def hit(self, key: str) -> None:
        """A dedup submission attached to an existing trace."""
        self.hits_attached += 1
        trace = self.active.get(key)
        if trace is not None:
            trace.hits += 1

    def finish(self, job, t_ns: int,
               detail: Optional[Dict[str, Any]] = None) -> None:
        """Seal the trace at the job's terminal instant and audit it."""
        trace = self.active.pop(job.key, None)
        if trace is None:
            return
        trace._close(t_ns, detail)
        trace.status = job.status
        trace.attempts = job.attempts
        self.finished += 1

        lane = trace.lane
        by_status = self.finished_by_lane.setdefault(lane, {})
        by_status[trace.status] = by_status.get(trace.status, 0) + 1
        by_stage = self.spans_by_lane.setdefault(lane, {})
        for span in trace.spans:
            by_stage[span.stage] = by_stage.get(span.stage, 0) + 1
            agg = self.stage_totals.setdefault(span.stage, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += span.duration_s
            agg[2] = max(agg[2], span.duration_s)
            hist = self._hist.get(span.stage)
            if hist is not None:
                hist.observe(span.duration_s)

        self.tiling_checked += 1
        tiling = trace.tiling_ok()
        grammar = trace.grammar_ok()
        if not tiling:
            self.tiling_violations += 1
        if not grammar:
            self.grammar_violations += 1
        if not (tiling and grammar) and self.first_violation is None:
            self.first_violation = {
                "key": trace.key,
                "tiling_ok": tiling,
                "grammar_ok": grammar,
                "spans": [s.to_dict() for s in trace.spans],
            }
        self.completed.append(trace)

    # -- aggregate views ----------------------------------------------
    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        """Cumulative totals + percentiles over the completed ring."""
        recent: Dict[str, List[float]] = {}
        for trace in self.completed:
            for span in trace.spans:
                recent.setdefault(span.stage, []).append(span.duration_s)
        stats: Dict[str, Dict[str, float]] = {}
        for stage in STAGES:
            agg = self.stage_totals.get(stage)
            if agg is None:
                continue
            count, total_s, max_s = agg
            durs = sorted(recent.get(stage, ()))
            stats[stage] = {
                "count": int(count),
                "total_s": total_s,
                "mean_s": total_s / count if count else 0.0,
                "max_s": max_s,
                "p50_s": _percentile(durs, 0.50),
                "p90_s": _percentile(durs, 0.90),
                "p99_s": _percentile(durs, 0.99),
            }
        return stats

    def lane_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-lane wait/service percentiles over the completed ring."""
        waits: Dict[str, List[float]] = {}
        services: Dict[str, List[float]] = {}
        for trace in self.completed:
            waits.setdefault(trace.lane, []).append(
                trace.stage_s("queue_wait"))
            services.setdefault(trace.lane, []).append(
                trace.stage_s("execute"))
        lanes: Dict[str, Dict[str, Any]] = {}
        for lane, by_status in sorted(self.finished_by_lane.items()):
            w = sorted(waits.get(lane, ()))
            s = sorted(services.get(lane, ()))
            lanes[lane] = {
                "finished": sum(by_status.values()),
                "by_status": dict(sorted(by_status.items())),
                "spans": dict(sorted(
                    self.spans_by_lane.get(lane, {}).items())),
                "wait": {"p50_s": _percentile(w, 0.50),
                         "p90_s": _percentile(w, 0.90),
                         "p99_s": _percentile(w, 0.99)},
                "service": {"p50_s": _percentile(s, 0.50),
                            "p90_s": _percentile(s, 0.90),
                            "p99_s": _percentile(s, 0.99)},
            }
        return lanes

    def tiling_report(self) -> Dict[str, Any]:
        return {
            "checked": self.tiling_checked,
            "violations": self.tiling_violations,
            "grammar_violations": self.grammar_violations,
            "first_violation": self.first_violation,
        }

    def reconcile(self, ledger, slo) -> Dict[str, Any]:
        """Cross-check the trace books against the job ledger and the
        SLO record ledger — every check is an exact integer equality.
        """
        checks: Dict[str, Any] = {}
        counters = ledger.counters
        checks["started_eq_finished_plus_active"] = (
            self.started == self.finished + len(self.active))
        checks["started_eq_accepted_plus_store_hits"] = (
            self.started == counters.get("accepted", 0)
            + counters.get("hit_store", 0))
        checks["hits_eq_ledger_dedup"] = (
            self.hits_attached == counters.get("hit_inflight", 0)
            + counters.get("hit_ledger", 0))

        # per-lane: traces that reached a terminal state minus the
        # cancellations (which the SLO tracker does not serve) must
        # equal the SLO ledger's per-lane served counts; and every
        # finished trace contributed exactly one report span.
        slo_lanes: Dict[str, int] = {}
        for record in slo.records:
            slo_lanes[record.lane] = slo_lanes.get(record.lane, 0) + 1
        lanes_ok = True
        lane_detail: Dict[str, Dict[str, int]] = {}
        for lane in sorted(set(self.finished_by_lane) | set(slo_lanes)):
            by_status = self.finished_by_lane.get(lane, {})
            finished = sum(by_status.values())
            cancelled = by_status.get("cancelled", 0)
            served = slo_lanes.get(lane, 0)
            reports = self.spans_by_lane.get(lane, {}).get("report", 0)
            ok = (finished - cancelled == served) and (reports == finished)
            lanes_ok = lanes_ok and ok
            lane_detail[lane] = {
                "finished": finished, "cancelled": cancelled,
                "slo_served": served, "report_spans": reports,
            }
        checks["lanes_match_slo_ledger"] = lanes_ok
        checks["tiling_violations_zero"] = self.tiling_violations == 0
        checks["grammar_violations_zero"] = self.grammar_violations == 0
        conservation = ledger.conservation()
        checks["ledger_conservation"] = bool(conservation["ok"])
        return {
            "ok": all(v for k, v in checks.items()),
            "checks": checks,
            "lanes": lane_detail,
            "conservation": conservation,
        }

    def snapshot(self, limit: Optional[int] = None) -> Dict[str, Any]:
        traces = list(self.completed)
        if limit is not None and limit >= 0:
            traces = traces[-limit:]
        return {
            "format": "repro.serve.trace/v1",
            "started": self.started,
            "finished": self.finished,
            "active": len(self.active),
            "hits_attached": self.hits_attached,
            "dropped": max(0, self.finished - len(self.completed)),
            "tiling": self.tiling_report(),
            "traces": [t.to_dict() for t in traces],
        }


class ServeTimeline:
    """Periodic time-series snapshots of the live service surface.

    A bounded ring of samples (queue depths per lane, shard
    utilization, dedup-hit rate, burn state, …) powering the
    ``/v1/metrics`` ``series`` key and the dashboard's lane/burn
    charts.  Sampling cost is a handful of dict reads — it runs on an
    asyncio timer, never on the job hot path.
    """

    def __init__(self, capacity: int = 720) -> None:
        self.samples: deque = deque(maxlen=max(2, capacity))
        self.ticks = 0

    def record(self, sample: Dict[str, Any]) -> None:
        self.ticks += 1
        self.samples.append(sample)

    def snapshot(self) -> List[Dict[str, Any]]:
        return list(self.samples)


# -- Perfetto export ---------------------------------------------------

def trace_events(traces: List[Dict[str, Any]],
                 timeline: Optional[List[Dict[str, Any]]] = None,
                 ) -> List[Dict[str, Any]]:
    """Flatten job traces (+ optional timeline) into ``job_span`` /
    ``serve_sample`` telemetry events for ``events_to_perfetto``."""
    events: List[Dict[str, Any]] = []
    for trace in traces:
        base = {
            "key": trace["key"],
            "lane": trace["lane"],
            "status": trace.get("status"),
        }
        t0, t1 = trace["accepted_ns"], trace["terminal_ns"]
        events.append({
            "ev": "job_span", "stage": "job",
            "ts": t0 / 1000.0, "dur": max(0.0, (t1 - t0) / 1000.0),
            "hits": trace.get("hits", 0),
            "attempts": trace.get("attempts", 0), **base,
        })
        for span in trace["spans"]:
            ev = {
                "ev": "job_span", "stage": span["stage"],
                "ts": span["start_ns"] / 1000.0,
                "dur": (span["end_ns"] - span["start_ns"]) / 1000.0,
                **base,
            }
            detail = span.get("detail") or {}
            if "shard" in detail:
                ev["shard"] = detail["shard"]
            events.append(ev)
    for sample in timeline or ():
        events.append({
            "ev": "serve_sample",
            "ts": sample.get("t_s", 0.0) * 1e6,
            "depths": sample.get("depths", {}),
            "shards_busy": sample.get("shards_busy", 0),
            "burn_fast": sample.get("burn_fast", 0.0),
        })
    return events


def traces_to_perfetto(traces: List[Dict[str, Any]],
                       timeline: Optional[List[Dict[str, Any]]] = None,
                       sim_trace_for: Optional[Callable[[Dict[str, Any]],
                                                        Optional[str]]] = None,
                       ) -> Dict[str, Any]:
    """Convert job traces to one Perfetto/Chrome trace document.

    ``sim_trace_for`` maps a trace dict to the path of its per-point
    sim JSONL (or None); when it yields a path, the sim's own events
    are converted with the shared ``events_to_perfetto`` and rebased —
    unique pid block per job, timestamps linearly mapped into the
    job's ``execute`` window — so the simulator's DRAM/policy tracks
    nest visually under the service-side ``execute`` span.
    """
    doc = events_to_perfetto(trace_events(traces, timeline))
    if sim_trace_for is None:
        return doc
    for idx, trace in enumerate(traces):
        path = sim_trace_for(trace)
        if not path:
            continue
        execute = [s for s in trace["spans"] if s["stage"] == "execute"]
        if not execute:
            continue
        try:
            with open(path, "r", encoding="utf-8") as fh:
                sim_events = [json.loads(line) for line in fh if line.strip()]
        except OSError:
            continue
        if not sim_events:
            continue
        # map the sim's [0, t_max] onto the final execute window
        t_max = 0.0
        for ev in sim_events:
            t_max = max(t_max, float(ev.get("ts", 0.0)),
                        float(ev.get("end", 0.0)))
        window = execute[-1]
        start_us = window["start_ns"] / 1000.0
        dur_us = (window["end_ns"] - window["start_ns"]) / 1000.0
        scale = (dur_us / t_max) if t_max > 0 else 1.0
        sub = events_to_perfetto(sim_events)
        rebase_trace_events(
            sub, ts_scale=scale, ts_offset=start_us,
            pid_base=100 + 10 * idx,
            process_prefix=f"sim {trace['key'][:8]} · ")
        doc["traceEvents"].extend(sub["traceEvents"])
    return doc


def write_perfetto(traces: List[Dict[str, Any]], path: str,
                   timeline: Optional[List[Dict[str, Any]]] = None,
                   sim_trace_for: Optional[Callable[[Dict[str, Any]],
                                                    Optional[str]]] = None,
                   ) -> Dict[str, Any]:
    """Write job traces as a Perfetto JSON file; returns the document."""
    doc = traces_to_perfetto(traces, timeline, sim_trace_for)
    from ..telemetry.sinks import _open_creating_dirs
    with _open_creating_dirs(path) as fh:
        json.dump(doc, fh)
    return doc


def sim_trace_locator(trace_dir: Optional[str]
                      ) -> Callable[[Dict[str, Any]], Optional[str]]:
    """Locator for per-point sim JSONLs: prefer the path the worker
    annotated on the trace, else ``<trace_dir>/<key>.jsonl``."""
    import os

    def locate(trace: Dict[str, Any]) -> Optional[str]:
        path = (trace.get("annotations") or {}).get("sim_trace")
        if path and os.path.exists(path):
            return path
        if trace_dir:
            candidate = os.path.join(trace_dir, f"{trace['key']}.jsonl")
            if os.path.exists(candidate):
                return candidate
        return None

    return locate
