"""Sharded worker pool bridging the asyncio service to sim processes.

Each shard is one long-lived process running the campaign engine's
task protocol (the same payload/result dict shapes
:func:`repro.campaign.engine._worker_main` speaks), so a shard owns its
own scheduler registry and process-local alone-IPC cache — exactly the
isolation the campaign engine's workers have.  On top of the engine
protocol the pool adds one task kind, ``noop`` (configurable sleep /
injected failure), used by load generators and benches to exercise the
service plumbing without paying for simulation.

The asyncio side never blocks on a multiprocessing queue: a single
drain thread parks on the shared result queue and trampolines every
message onto the event loop via ``call_soon_threadsafe``.  A monitor
coroutine enforces per-task deadlines and liveness — a hung or dead
shard is killed, respawned, and its task surfaced as a failed attempt,
mirroring the campaign engine's fault tolerance.

``inline=True`` swaps the process shards for a thread pool running the
identical task function — the deterministic in-process reference path
(and the fast path for unit tests), analogous to the engine's
``workers <= 1`` mode.  Inline shards do not enforce timeouts.
"""

from __future__ import annotations

import asyncio
import queue as queue_mod
import signal
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional

from repro.campaign.engine import _default_context, _execute_task
from repro.telemetry.log import get_logger

_LOG = get_logger("serve.workers")

#: extra slack over the task timeout before the monitor respawns
_MONITOR_INTERVAL = 0.2


class NoIdleShard(RuntimeError):
    """Dispatch was attempted with every shard busy."""


def run_task(task: dict) -> dict:
    """Execute one serve task: the engine protocol plus ``noop``."""
    if task["kind"] == "noop":
        spec = task.get("spec") or {}
        sleep_s = float(spec.get("sleep_s") or 0.0)
        if sleep_s > 0:
            time.sleep(sleep_s)
        if spec.get("fail"):
            raise RuntimeError("injected noop failure")
        if spec.get("hang"):
            time.sleep(3600.0)
        return {"payload": {"noop": True, "spec": spec}, "alone": []}
    return _execute_task(task)


def _shard_main(shard_id: int, task_q, result_q) -> None:
    """Shard process loop: run tasks until the ``None`` sentinel."""
    try:
        # The service owns shutdown; a terminal Ctrl-C must not spray
        # tracebacks from every shard.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    while True:
        task = task_q.get()
        if task is None:
            break
        t0 = time.monotonic()
        base = {
            "shard": shard_id,
            "key": task["key"],
            "attempt": task["attempt"],
        }
        try:
            out = run_task(task)
            result_q.put(
                {**base, "ok": True, "duration": time.monotonic() - t0,
                 **out}
            )
        except Exception as exc:  # never let a task kill the shard
            result_q.put(
                {
                    **base,
                    "ok": False,
                    "duration": time.monotonic() - t0,
                    "error": repr(exc),
                    "traceback": traceback.format_exc(),
                }
            )


class _Shard:
    """Service-side handle of one shard process."""

    def __init__(self, ctx, shard_id: int, result_q) -> None:
        self.id = shard_id
        self.ctx = ctx
        self.result_q = result_q
        self.key: Optional[str] = None
        self.attempt: int = 0
        self.deadline: float = float("inf")
        self.tasks_done = 0
        self.busy_s = 0.0
        self.respawns = 0
        self.proc = None
        self.task_q = None

    def spawn(self) -> None:
        self.task_q = self.ctx.Queue(maxsize=1)
        self.proc = self.ctx.Process(
            target=_shard_main,
            args=(self.id, self.task_q, self.result_q),
            daemon=True,
            name=f"serve-shard-{self.id}",
        )
        self.proc.start()

    @property
    def idle(self) -> bool:
        return self.key is None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def release(self) -> None:
        self.key = None
        self.attempt = 0
        self.deadline = float("inf")

    def respawn(self) -> None:
        self.respawns += 1
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5.0)
        self.task_q.close()
        self.release()
        self.spawn()

    def shutdown(self) -> None:
        try:
            self.task_q.put_nowait(None)
        except queue_mod.Full:
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5.0)

    def stats(self) -> dict:
        return {
            "shard": self.id,
            "alive": self.alive,
            "busy": not self.idle,
            "key": self.key,
            "tasks_done": self.tasks_done,
            "busy_s": self.busy_s,
            "respawns": self.respawns,
        }


class ShardPool:
    """N worker shards with asyncio dispatch and health monitoring.

    ``on_result`` (passed to :meth:`start`) is invoked on the event
    loop with every raw result message::

        {"shard": int, "key": str, "attempt": int, "ok": bool,
         "duration": float, "payload": {...}, "alone": [...]}   # ok
        {"shard": ..., "ok": False, "error": str,
         "traceback": str | None, "timeout": bool}              # failed
    """

    def __init__(
        self,
        shards: int = 2,
        timeout_s: Optional[float] = None,
        inline: bool = False,
        start_method: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.size = shards
        self.timeout_s = timeout_s
        self.inline = inline
        self.start_method = start_method
        self.idle_event = asyncio.Event()
        self._on_result: Optional[Callable[[dict], None]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping = False
        # mp mode
        self._ctx = None
        self._result_q = None
        self._shards: List[_Shard] = []
        self._drain_thread: Optional[threading.Thread] = None
        self._monitor_task: Optional[asyncio.Task] = None
        # inline mode
        self._executor: Optional[ThreadPoolExecutor] = None
        self._inline_busy: Dict[int, Optional[str]] = {}
        self._inline_done: List[int] = [0] * shards
        self._inline_busy_s: List[float] = [0.0] * shards

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self, on_result: Callable[[dict], None]) -> None:
        self._on_result = on_result
        self._loop = asyncio.get_running_loop()
        self.idle_event.set()
        if self.inline:
            self._executor = ThreadPoolExecutor(
                max_workers=self.size,
                thread_name_prefix="serve-inline-shard",
            )
            self._inline_busy = {i: None for i in range(self.size)}
            return
        self._ctx = _default_context(self.start_method)
        self._result_q = self._ctx.Queue()
        self._shards = [
            _Shard(self._ctx, i, self._result_q) for i in range(self.size)
        ]
        for shard in self._shards:
            shard.spawn()
        self._drain_thread = threading.Thread(
            target=self._drain, name="serve-result-drain", daemon=True
        )
        self._drain_thread.start()
        self._monitor_task = asyncio.create_task(self._monitor())

    async def shutdown(self) -> None:
        self._stopping = True
        if self.inline:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
            return
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._shutdown_shards)
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=5.0)
        self._result_q.close()

    def _shutdown_shards(self) -> None:
        for shard in self._shards:
            shard.shutdown()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    @property
    def idle_count(self) -> int:
        if self.inline:
            return sum(1 for k in self._inline_busy.values() if k is None)
        return sum(1 for s in self._shards if s.idle)

    @property
    def busy_count(self) -> int:
        return self.size - self.idle_count

    @property
    def alive_count(self) -> int:
        if self.inline:
            return self.size
        return sum(1 for s in self._shards if s.alive)

    def dispatch(self, task: dict) -> int:
        """Send one task to an idle shard; returns the shard id."""
        if self.inline:
            return self._dispatch_inline(task)
        shard = next((s for s in self._shards if s.idle), None)
        if shard is None:
            self.idle_event.clear()
            raise NoIdleShard("all shards busy")
        shard.key = task["key"]
        shard.attempt = task["attempt"]
        shard.deadline = (
            time.monotonic() + self.timeout_s
            if self.timeout_s else float("inf")
        )
        shard.task_q.put(task)
        if self.idle_count == 0:
            self.idle_event.clear()
        return shard.id

    def _dispatch_inline(self, task: dict) -> int:
        slot = next(
            (i for i, k in self._inline_busy.items() if k is None), None
        )
        if slot is None:
            self.idle_event.clear()
            raise NoIdleShard("all inline shards busy")
        self._inline_busy[slot] = task["key"]
        if self.idle_count == 0:
            self.idle_event.clear()

        def _run() -> dict:
            t0 = time.monotonic()
            base = {"shard": slot, "key": task["key"],
                    "attempt": task["attempt"]}
            try:
                out = run_task(task)
                return {**base, "ok": True,
                        "duration": time.monotonic() - t0, **out}
            except Exception as exc:
                return {
                    **base, "ok": False,
                    "duration": time.monotonic() - t0,
                    "error": repr(exc),
                    "traceback": traceback.format_exc(),
                }

        def _done(future) -> None:
            if self._stopping:
                return
            try:
                self._loop.call_soon_threadsafe(
                    self._inline_result, slot, future.result()
                )
            except RuntimeError:  # loop closed during shutdown
                pass

        self._executor.submit(_run).add_done_callback(_done)
        return slot

    def _inline_result(self, slot: int, msg: dict) -> None:
        self._inline_busy[slot] = None
        self._inline_done[slot] += 1
        self._inline_busy_s[slot] += msg.get("duration", 0.0)
        self.idle_event.set()
        self._on_result(msg)

    # ------------------------------------------------------------------
    # mp result path + health monitor
    # ------------------------------------------------------------------

    def _drain(self) -> None:
        """(thread) park on the result queue, trampoline to the loop."""
        while not self._stopping:
            try:
                msg = self._result_q.get(timeout=0.2)
            except (queue_mod.Empty, OSError, ValueError):
                continue
            if self._stopping:
                break
            try:
                self._loop.call_soon_threadsafe(self._mp_result, msg)
            except RuntimeError:  # loop closed during shutdown
                break

    def _mp_result(self, msg: dict) -> None:
        shard = self._shards[msg["shard"]]
        if shard.key != msg["key"] or shard.attempt != msg["attempt"]:
            _LOG.debug("dropping stale result for %s (attempt %d)",
                       msg["key"], msg["attempt"])
            return
        shard.release()
        shard.tasks_done += 1
        shard.busy_s += msg.get("duration", 0.0)
        self.idle_event.set()
        self._on_result(msg)

    async def _monitor(self) -> None:
        """Enforce deadlines and liveness; respawn and fail the task."""
        while True:
            await asyncio.sleep(_MONITOR_INTERVAL)
            now = time.monotonic()
            for shard in self._shards:
                if shard.idle:
                    if not shard.alive:
                        _LOG.warning("idle shard %d died; respawning",
                                     shard.id)
                        shard.respawn()
                    continue
                timed_out = now > shard.deadline
                died = not shard.alive
                if not timed_out and not died:
                    continue
                key, attempt = shard.key, shard.attempt
                if timed_out:
                    shard.busy_s += self.timeout_s or 0.0
                    error = (f"TimeoutError('task exceeded "
                             f"{self.timeout_s}s')")
                    _LOG.warning("shard %d timed out on %s; respawning",
                                 shard.id, key)
                else:
                    error = (f"RuntimeError('shard died, exit code "
                             f"{shard.proc.exitcode}')")
                    _LOG.warning("shard %d died (exit=%s) on %s; "
                                 "respawning", shard.id,
                                 shard.proc.exitcode, key)
                shard.respawn()
                self.idle_event.set()
                self._on_result(
                    {
                        "shard": shard.id,
                        "key": key,
                        "attempt": attempt,
                        "ok": False,
                        "duration": self.timeout_s or 0.0,
                        "error": error,
                        "traceback": None,
                        "timeout": timed_out,
                    }
                )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> List[dict]:
        if self.inline:
            return [
                {
                    "shard": i,
                    "alive": True,
                    "busy": self._inline_busy.get(i) is not None,
                    "key": self._inline_busy.get(i),
                    "tasks_done": self._inline_done[i],
                    "busy_s": self._inline_busy_s[i],
                    "respawns": 0,
                }
                for i in range(self.size)
            ]
        return [s.stats() for s in self._shards]

    @property
    def tasks_done(self) -> int:
        if self.inline:
            return sum(self._inline_done)
        return sum(s.tasks_done for s in self._shards)

    @property
    def busy_s(self) -> float:
        """Cumulative task-execution seconds across all shards."""
        if self.inline:
            return sum(self._inline_busy_s)
        return sum(s.busy_s for s in self._shards)
