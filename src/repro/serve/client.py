"""HTTP client and load generator for the simulation service.

:class:`ServeClient` is a keep-alive JSON client over raw asyncio
streams (no third-party HTTP stack), one in-flight request per
connection, auto-reconnecting.

:class:`LoadGenerator` drives a service the way Clockwork drives its
controller: an outbox of submissions and an inbox of completion events.
Three modes:

* ``open``   — open-loop Poisson arrivals at a configurable rate
  (seeded, reproducible); rejected jobs are shed (counted), mimicking
  a real overloaded front end.
* ``closed`` — N closed-loop workers, each submit -> wait -> repeat;
  rejections back off by the server's ``retry_after`` hint.
* ``batch``  — maximum-throughput batched submission (the soak path:
  millions of queued sim-points arrive in batches, not one TCP round
  trip each).

Every run ends with a :class:`LoadReport`: client-side accept
latencies, server-side completion latencies, outcome counts, the
zero-lost-jobs check, and the service's own SLO attainment report.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.slo import _percentile
from repro.serve.state import DEDUP_OUTCOMES, OUTCOME_REJECTED
from repro.telemetry.log import get_logger

_LOG = get_logger("serve.client")


class ServeClientError(RuntimeError):
    """Transport-level client failure (connect/IO)."""


class ServeClient:
    """Keep-alive JSON/HTTP client for one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass
            self._reader = self._writer = None

    async def _request(self, method: str, path: str,
                       body: Optional[dict] = None) -> Tuple[int, dict]:
        """One serialized request; reconnects once on a dead socket."""
        async with self._lock:
            for attempt in (1, 2):
                if self._writer is None:
                    try:
                        await self._connect()
                    except OSError as exc:
                        raise ServeClientError(
                            f"cannot connect to {self.host}:{self.port}: "
                            f"{exc}"
                        ) from exc
                try:
                    return await self._roundtrip(method, path, body)
                except (ConnectionResetError, BrokenPipeError,
                        asyncio.IncompleteReadError, OSError) as exc:
                    await self.close()
                    if attempt == 2:
                        raise ServeClientError(
                            f"{method} {path} failed: {exc}"
                        ) from exc

    async def _roundtrip(self, method, path, body) -> Tuple[int, dict]:
        payload = json.dumps(body).encode("utf-8") if body is not None \
            else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        data = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(data)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    async def submit(self, spec: dict, kind: str = "point",
                     lane: str = "default",
                     deadline_s: Optional[float] = None,
                     trace: bool = False) -> Tuple[int, dict]:
        body = {"kind": kind, "spec": spec, "lane": lane,
                "deadline_s": deadline_s}
        if trace:
            body["trace"] = True
        return await self._request("POST", "/v1/jobs", body)

    async def submit_batch(self, items: List[dict]) -> Tuple[int, dict]:
        return await self._request("POST", "/v1/batch", {"jobs": items})

    async def status(self, key: str,
                     result: bool = False) -> Tuple[int, dict]:
        suffix = "?result=1" if result else ""
        return await self._request("GET", f"/v1/jobs/{key}{suffix}")

    async def wait(self, key: str,
                   timeout_s: float = 30.0) -> Tuple[int, dict]:
        return await self._request(
            "GET", f"/v1/jobs/{key}/wait?timeout_s={timeout_s}"
        )

    async def cancel(self, key: str) -> Tuple[int, dict]:
        return await self._request("POST", f"/v1/jobs/{key}/cancel")

    async def events(self, after: int = 0, timeout_s: float = 0.0,
                     limit: int = 4096) -> Tuple[int, dict]:
        return await self._request(
            "GET",
            f"/v1/events?after={after}&timeout_s={timeout_s}"
            f"&limit={limit}",
        )

    async def slo(self) -> Tuple[int, dict]:
        return await self._request("GET", "/v1/slo")

    async def metrics(self) -> Tuple[int, dict]:
        return await self._request("GET", "/v1/metrics")

    async def obs(self) -> Tuple[int, dict]:
        """Full observability snapshot (timeline, stages, burn state)."""
        return await self._request("GET", "/v1/obs")

    async def traces(self, limit: Optional[int] = None) -> Tuple[int, dict]:
        """Completed job traces (requires a tracing-enabled service)."""
        suffix = f"?limit={limit}" if limit is not None else ""
        return await self._request("GET", f"/v1/traces{suffix}")

    async def health(self) -> Tuple[int, dict]:
        return await self._request("GET", "/v1/health")

    async def shutdown(self, drain: bool = True) -> Tuple[int, dict]:
        return await self._request("POST", "/v1/shutdown",
                                   {"drain": drain})


# ----------------------------------------------------------------------
# job-list builders
# ----------------------------------------------------------------------


def noop_jobs(n: int, sleep_ms: float = 0.0, seed: int = 0,
              lane: str = "default",
              deadline_s: Optional[float] = None,
              trace: bool = False) -> List[dict]:
    """``n`` unique synthetic jobs (keys depend on index and seed)."""
    return [
        {
            "kind": "noop",
            "spec": {"index": i, "salt": seed,
                     "sleep_s": sleep_ms / 1000.0},
            "lane": lane,
            "deadline_s": deadline_s,
            **({"trace": True} if trace else {}),
        }
        for i in range(n)
    ]


def plan_jobs(plan, lane: str = "default",
              deadline_s: Optional[float] = None,
              trace: bool = False) -> List[dict]:
    """Submission items for every point of a campaign plan."""
    return [
        {
            "kind": "point",
            "spec": point.to_dict(),
            "lane": lane,
            "deadline_s": deadline_s,
            **({"trace": True} if trace else {}),
        }
        for point in plan
    ]


def cycle_jobs(jobs: List[dict], n: int) -> List[dict]:
    """Repeat a base job list out to ``n`` submissions (dedup workload)."""
    if not jobs:
        raise ValueError("empty job list")
    return [jobs[i % len(jobs)] for i in range(n)]


# ----------------------------------------------------------------------
# load generation
# ----------------------------------------------------------------------


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str
    wall_s: float = 0.0
    submitted: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    lost: int = 0
    errors: int = 0
    accept_latency: Dict[str, float] = field(default_factory=dict)
    completion_latency: Dict[str, float] = field(default_factory=dict)
    slo: Optional[dict] = None

    @property
    def accepted(self) -> int:
        return self.outcomes.get("accepted", 0)

    @property
    def rejected(self) -> int:
        return self.outcomes.get(OUTCOME_REJECTED, 0)

    @property
    def dedup(self) -> int:
        return sum(self.outcomes.get(o, 0) for o in DEDUP_OUTCOMES)

    @property
    def throughput(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return (self.completed + self.failed) / self.wall_s

    def to_dict(self) -> dict:
        return {
            "format": "repro.serve.load/v1",
            "mode": self.mode,
            "wall_s": self.wall_s,
            "submitted": self.submitted,
            "outcomes": dict(self.outcomes),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "dedup": self.dedup,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "lost": self.lost,
            "errors": self.errors,
            "throughput_jobs_per_s": self.throughput,
            "accept_latency": self.accept_latency,
            "completion_latency": self.completion_latency,
            "slo": self.slo,
        }

    def format_text(self) -> str:
        lines = [
            f"loadgen [{self.mode}] {self.submitted} submitted in "
            f"{self.wall_s:.2f}s "
            f"({self.throughput:.1f} completions/s)",
            f"  outcomes: accepted {self.accepted}  dedup {self.dedup}  "
            f"rejected {self.rejected}",
            f"  terminal: completed {self.completed}  failed "
            f"{self.failed}  cancelled {self.cancelled}  "
            f"lost {self.lost}  client-errors {self.errors}",
        ]
        if self.accept_latency:
            a = self.accept_latency
            lines.append(
                f"  accept   p50 {a['p50_s'] * 1e3:.1f}ms  "
                f"p99 {a['p99_s'] * 1e3:.1f}ms  "
                f"max {a['max_s'] * 1e3:.1f}ms"
            )
        if self.completion_latency:
            c = self.completion_latency
            lines.append(
                f"  complete p50 {c['p50_s'] * 1e3:.1f}ms  "
                f"p99 {c['p99_s'] * 1e3:.1f}ms  "
                f"max {c['max_s'] * 1e3:.1f}ms"
            )
        if self.slo:
            overall = self.slo["overall"]
            att = overall.get("attainment")
            lines.append(
                f"  server SLO: served {overall['served']}  "
                f"sat {overall['slo_sat']}  "
                f"not-sat {overall['slo_not_sat']}  attainment "
                + (f"{att:.2%}" if att is not None else "n/a")
            )
        return "\n".join(lines)


def _latency_summary(values: List[float]) -> Dict[str, float]:
    if not values:
        return {}
    ordered = sorted(values)
    return {
        "count": float(len(ordered)),
        "mean_s": sum(ordered) / len(ordered),
        "p50_s": _percentile(ordered, 0.50),
        "p90_s": _percentile(ordered, 0.90),
        "p99_s": _percentile(ordered, 0.99),
        "max_s": ordered[-1],
    }


class LoadGenerator:
    """Drive a running service and account for every submission."""

    def __init__(
        self,
        host: str,
        port: int,
        jobs: List[dict],
        mode: str = "open",
        rate: float = 200.0,
        concurrency: int = 8,
        batch: int = 100,
        seed: int = 0,
        on_reject: str = "drop",
        wait_timeout_s: float = 120.0,
    ) -> None:
        if mode not in ("open", "closed", "batch"):
            raise ValueError(f"unknown loadgen mode {mode!r}")
        if on_reject not in ("drop", "retry"):
            raise ValueError(f"unknown on_reject policy {on_reject!r}")
        self.host = host
        self.port = port
        self.jobs = list(jobs)
        self.mode = mode
        self.rate = rate
        self.concurrency = max(1, concurrency)
        self.batch = max(1, batch)
        self.seed = seed
        self.on_reject = on_reject
        self.wait_timeout_s = wait_timeout_s
        self._report = LoadReport(mode=mode)
        #: keys this run accepted that still owe a terminal event
        self._pending: Dict[str, int] = {}
        self._completion_latencies: List[float] = []
        self._accept_latencies: List[float] = []

    # -- bookkeeping ----------------------------------------------------

    def _note_outcome(self, outcome: str, job: Optional[dict]) -> None:
        report = self._report
        report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
        if job is None:
            return
        if job.get("status") in ("done", "failed", "cancelled"):
            self._note_terminal(job["key"], job["status"],
                               job.get("latency_s"))
        else:
            self._pending[job["key"]] = self._pending.get(job["key"], 0) + 1

    def _note_terminal(self, key: str, status: str,
                       latency_s: Optional[float]) -> None:
        report = self._report
        if status == "done":
            report.completed += 1
        elif status == "failed":
            report.failed += 1
        else:
            report.cancelled += 1
        if latency_s is not None:
            self._completion_latencies.append(latency_s)

    def _absorb_event(self, event: dict) -> None:
        count = self._pending.pop(event["key"], 0)
        for _ in range(count):
            self._note_terminal(event["key"], event["status"],
                               event.get("latency_s"))

    # -- submission paths ----------------------------------------------

    async def _submit_one(self, client: ServeClient, item: dict) -> None:
        t0 = time.monotonic()
        try:
            status, payload = await client.submit(
                item["spec"], kind=item.get("kind", "point"),
                lane=item.get("lane", "default"),
                deadline_s=item.get("deadline_s"),
                trace=bool(item.get("trace", False)),
            )
        except ServeClientError:
            self._report.errors += 1
            return
        self._accept_latencies.append(time.monotonic() - t0)
        self._report.submitted += 1
        if status == 429:
            self._note_outcome(OUTCOME_REJECTED, None)
            if self.on_reject == "retry":
                await asyncio.sleep(payload.get("retry_after", 0.5))
                await self._submit_one(client, item)
            return
        if status != 202:
            self._report.errors += 1
            return
        self._note_outcome(payload["outcome"], payload.get("job"))

    async def _run_open(self) -> None:
        rng = random.Random(self.seed)
        client = ServeClient(self.host, self.port)
        try:
            for item in self.jobs:
                if self.rate > 0:
                    await asyncio.sleep(rng.expovariate(self.rate))
                await self._submit_one(client, item)
        finally:
            await client.close()

    async def _run_batch(self) -> None:
        client = ServeClient(self.host, self.port)
        try:
            for start in range(0, len(self.jobs), self.batch):
                chunk = self.jobs[start:start + self.batch]
                t0 = time.monotonic()
                status, payload = await client.submit_batch(chunk)
                self._accept_latencies.append(time.monotonic() - t0)
                if status != 200:
                    self._report.errors += len(chunk)
                    continue
                self._report.submitted += len(chunk)
                for result in payload["results"]:
                    if result.get("status") == 429:
                        self._note_outcome(OUTCOME_REJECTED, None)
                    elif result.get("status") == 202:
                        self._note_outcome(result["outcome"],
                                           result.get("job"))
                    else:
                        self._report.errors += 1
        finally:
            await client.close()

    async def _run_closed(self) -> None:
        queue: asyncio.Queue = asyncio.Queue()
        for item in self.jobs:
            queue.put_nowait(item)

        async def worker() -> None:
            client = ServeClient(self.host, self.port)
            try:
                while True:
                    try:
                        item = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    before = dict(self._pending)
                    await self._submit_one(client, item)
                    # wait for whatever this submission put in flight
                    new_keys = [
                        k for k, n in self._pending.items()
                        if n > before.get(k, 0)
                    ]
                    for key in new_keys:
                        status, payload = await client.wait(
                            key, timeout_s=self.wait_timeout_s
                        )
                        if status == 200:
                            job = payload["job"]
                            if self._pending.get(key):
                                self._pending[key] -= 1
                                if not self._pending[key]:
                                    self._pending.pop(key)
                                self._note_terminal(
                                    key, job["status"],
                                    job.get("latency_s"),
                                )
            finally:
                await client.close()

        await asyncio.gather(*(worker()
                               for _ in range(self.concurrency)))

    # -- completion tracking -------------------------------------------

    async def _drain_events(self, after: int,
                            deadline: float) -> None:
        client = ServeClient(self.host, self.port)
        try:
            while self._pending and time.monotonic() < deadline:
                remaining = min(5.0, deadline - time.monotonic())
                try:
                    status, payload = await client.events(
                        after=after, timeout_s=max(0.1, remaining)
                    )
                except ServeClientError:
                    self._report.errors += 1
                    return
                if status != 200:
                    self._report.errors += 1
                    return
                for event in payload["events"]:
                    after = max(after, event["seq"])
                    self._absorb_event(event)
        finally:
            await client.close()

    async def run(self) -> LoadReport:
        t0 = time.monotonic()
        if self.mode == "open":
            await self._run_open()
        elif self.mode == "batch":
            await self._run_batch()
        else:
            await self._run_closed()
        if self._pending:
            await self._drain_events(
                0, time.monotonic() + self.wait_timeout_s
            )
        report = self._report
        report.wall_s = time.monotonic() - t0
        report.lost = sum(self._pending.values())
        report.accept_latency = _latency_summary(self._accept_latencies)
        report.completion_latency = _latency_summary(
            self._completion_latencies
        )
        client = ServeClient(self.host, self.port)
        try:
            status, payload = await client.slo()
            if status == 200:
                report.slo = payload
        except ServeClientError:
            pass
        finally:
            await client.close()
        return report


async def run_loadgen(host: str, port: int, jobs: List[dict],
                      **kwargs) -> LoadReport:
    """Convenience wrapper: build and run one :class:`LoadGenerator`."""
    return await LoadGenerator(host, port, jobs, **kwargs).run()
