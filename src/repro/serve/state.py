"""Job lifecycle state and the service-wide job ledger.

A :class:`Job` is one unit of work flowing through the service — a
simulation point (the campaign engine's task protocol) or a synthetic
no-op used by load tests.  Its identity is a content hash: point jobs
reuse the campaign's :func:`~repro.campaign.hashing.point_key` (built
on the same field-complete canonicalisation as
``SimConfig.cache_key()``), so a job resubmitted with the same inputs
is *the same job* — against in-flight work, against this service
lifetime's terminal ledger, and against the persistent
:class:`~repro.campaign.store.CampaignStore`.

The :class:`JobLedger` is the accounting backbone: every submission
lands in exactly one outcome counter, and the conservation law

    ``submitted == accepted + hits + rejected``
    ``accepted  == done + failed + cancelled + active``

is checkable at any instant (:meth:`JobLedger.conservation`), which is
what "zero lost jobs" means operationally.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.hashing import canonicalize, stable_hash
from repro.campaign.plan import CampaignPoint

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED))

#: Submission outcomes (what happened to one ``submit()`` call).
OUTCOME_ACCEPTED = "accepted"
OUTCOME_HIT_INFLIGHT = "hit-inflight"   # deduped against queued/running work
OUTCOME_HIT_LEDGER = "hit-ledger"       # deduped against a finished job
OUTCOME_HIT_STORE = "hit-store"         # deduped against the result store
OUTCOME_REJECTED = "rejected"           # back-pressure (429)

#: Outcomes that count as idempotent-resubmit cache hits.
DEDUP_OUTCOMES = frozenset(
    (OUTCOME_HIT_INFLIGHT, OUTCOME_HIT_LEDGER, OUTCOME_HIT_STORE)
)

KIND_POINT = "point"
KIND_NOOP = "noop"


def noop_key(spec: dict) -> str:
    """Content hash of a synthetic no-op job (distinct hash domain)."""
    return stable_hash({"kind": "serve-noop", "spec": canonicalize(spec)})


def job_key(kind: str, spec: dict) -> str:
    """Idempotent content hash of one job spec.

    Point jobs hash exactly like campaign points, so serve results and
    campaign results share one cache universe.
    """
    if kind == KIND_POINT:
        return CampaignPoint.from_dict(spec).key
    if kind == KIND_NOOP:
        return noop_key(spec)
    raise ValueError(f"unknown job kind {kind!r}")


@dataclass
class Job:
    """One unit of work owned by the service."""

    key: str
    kind: str
    spec: dict
    lane: str = "default"
    deadline_s: Optional[float] = None
    status: str = QUEUED
    submitted_at: float = 0.0        # time.monotonic()
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    shard: Optional[int] = None
    payload: Optional[dict] = None
    error: Optional[str] = None
    #: satisfied straight from the result store (no simulation run)
    cached: bool = False
    #: run the simulation with per-point event tracing (the campaign
    #: engine's ``trace_dir`` path); deliberately *not* part of the
    #: hashed spec, so a traced and an untraced submission dedup to
    #: the same job
    trace: bool = False
    #: resolved lazily for point jobs (never serialised)
    point: Optional[CampaignPoint] = field(
        default=None, repr=False, compare=False
    )
    _done: asyncio.Event = field(
        default_factory=asyncio.Event, repr=False, compare=False
    )

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-finish wall seconds (None until terminal)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def sat(self) -> Optional[bool]:
        """SLO verdict: True/False once terminal, None before (or no
        deadline).  Cancelled jobs carry no verdict — they were never
        served."""
        if not self.terminal or self.status == CANCELLED:
            return None
        if self.deadline_s is None:
            return None
        if self.status == FAILED:
            return False
        return (self.latency_s or 0.0) <= self.deadline_s

    def finish(self, status: str, *, payload: Optional[dict] = None,
               error: Optional[str] = None) -> None:
        self.status = status
        self.payload = payload
        self.error = error
        self.finished_at = time.monotonic()
        self._done.set()

    async def wait(self, timeout: Optional[float] = None) -> "Job":
        """Block until the job reaches a terminal state."""
        if timeout is None:
            await self._done.wait()
        else:
            try:
                await asyncio.wait_for(self._done.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        return self

    def to_dict(self, include_payload: bool = False) -> dict:
        data = {
            "key": self.key,
            "kind": self.kind,
            "lane": self.lane,
            "status": self.status,
            "deadline_s": self.deadline_s,
            "attempts": self.attempts,
            "shard": self.shard,
            "cached": self.cached,
            "trace": self.trace,
            "latency_s": self.latency_s,
            "sat": self.sat,
            "error": self.error,
        }
        if include_payload:
            data["payload"] = self.payload
        return data


class JobLedger:
    """Every job this service lifetime, plus the outcome counters."""

    def __init__(self) -> None:
        self.jobs: Dict[str, Job] = {}
        self.order: List[str] = []
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "accepted": 0,
            "hit_inflight": 0,
            "hit_ledger": 0,
            "hit_store": 0,
            "rejected": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "retries": 0,
        }

    def get(self, key: str) -> Optional[Job]:
        return self.jobs.get(key)

    def add(self, job: Job) -> None:
        """Register a freshly accepted (or store-satisfied) job."""
        if job.key in self.jobs:
            raise ValueError(f"job {job.key} already in ledger")
        self.jobs[job.key] = job
        self.order.append(job.key)

    def note(self, outcome: str) -> None:
        self.counters["submitted"] += 1
        name = outcome.replace("-", "_")
        if name not in self.counters:
            raise ValueError(f"unknown outcome {outcome!r}")
        self.counters[name] += 1

    def note_terminal(self, job: Job) -> None:
        self.counters[job.status] += 1

    @property
    def active(self) -> List[Job]:
        return [j for j in self.jobs.values() if not j.terminal]

    @property
    def hits(self) -> int:
        c = self.counters
        return c["hit_inflight"] + c["hit_ledger"] + c["hit_store"]

    def conservation(self) -> dict:
        """The zero-lost-jobs invariant, checked from the counters.

        ``accepted`` counts only jobs that entered the queue; jobs
        satisfied instantly from the store arrive terminal and are
        counted under ``hit_store`` (they still live in ``jobs`` so
        later resubmissions hit the ledger).
        """
        c = self.counters
        store_jobs = sum(
            1 for j in self.jobs.values() if j.cached
        )
        active = len(self.active)
        terminal = c["done"] + c["failed"] + c["cancelled"]
        return {
            "submitted": c["submitted"],
            "accounted": c["accepted"] + self.hits + c["rejected"],
            "accepted": c["accepted"],
            "terminal": terminal,
            "active": active,
            "lost": c["accepted"] + store_jobs - terminal - active,
            "ok": (
                c["submitted"] == c["accepted"] + self.hits + c["rejected"]
                and c["accepted"] + store_jobs == terminal + active
            ),
        }

    def counts(self) -> dict:
        return dict(self.counters)
