"""Bounded, priority-laned job queue with back-pressure.

The service inbox.  Three default lanes (``interactive`` before
``default`` before ``batch``) drain strictly by lane priority, FIFO
within a lane.  Capacity is bounded across all lanes: when the inbox
is full, :meth:`JobQueue.offer` raises :class:`QueueFull` carrying a
``retry_after`` hint derived from the observed service rate — the
429-style rejection the HTTP layer surfaces with a ``Retry-After``
header.  The design assumption (millions of queued sim-points) is that
the queue must *shed* load it cannot buffer, never grow without bound.

Single-consumer: the service's dispatcher is the only ``take()``er.
Retried jobs re-enter at the *front* of their lane (they already spent
queue time and hold an accepted-job slot).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Deque, Dict, Optional

from repro.serve.state import Job

#: Default lanes, lower number drains first.
DEFAULT_LANES: Dict[str, int] = {
    "interactive": 0,
    "default": 1,
    "batch": 2,
}

#: Bounds on the retry-after hint (seconds).
RETRY_AFTER_MIN = 0.05
RETRY_AFTER_MAX = 30.0
RETRY_AFTER_DEFAULT = 1.0


class QueueFull(Exception):
    """The bounded inbox rejected a job (back-pressure)."""

    def __init__(self, retry_after: float, depth: int, capacity: int):
        super().__init__(
            f"queue full ({depth}/{capacity}); retry after "
            f"{retry_after:.2f}s"
        )
        self.retry_after = retry_after
        self.depth = depth
        self.capacity = capacity


class UnknownLane(ValueError):
    """Job named a lane the queue does not have."""


class JobQueue:
    """Bounded multi-lane FIFO with a service-rate-based retry hint."""

    def __init__(self, capacity: int = 512,
                 lanes: Optional[Dict[str, int]] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.lanes = dict(lanes if lanes is not None else DEFAULT_LANES)
        self._order = sorted(self.lanes, key=lambda k: self.lanes[k])
        self._queues: Dict[str, Deque[Job]] = {
            lane: deque() for lane in self._order
        }
        self._event = asyncio.Event()
        self._closed = False
        #: monotonic completion stamps for the service-rate estimate
        self._done_stamps: Deque[float] = deque(maxlen=128)
        #: cumulative per-lane flow counters (exact, never reset) —
        #: the tracing/timeline layer reconciles against these
        self.offered: Dict[str, int] = {lane: 0 for lane in self._order}
        self.taken: Dict[str, int] = {lane: 0 for lane in self._order}

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def offer(self, job: Job, front: bool = False) -> None:
        """Enqueue ``job`` or raise :class:`QueueFull`.

        ``front=True`` (retries) bypasses the capacity check: the job
        already holds an accepted slot and must not be lost to a burst
        that arrived while it was in flight.
        """
        if job.lane not in self._queues:
            raise UnknownLane(
                f"unknown lane {job.lane!r}; have {self._order}"
            )
        if not front and self.depth() >= self.capacity:
            raise QueueFull(self.retry_after(), self.depth(), self.capacity)
        if front:
            self._queues[job.lane].appendleft(job)
        else:
            self._queues[job.lane].append(job)
        self.offered[job.lane] += 1
        self._event.set()

    # ------------------------------------------------------------------
    # consumer side (the dispatcher)
    # ------------------------------------------------------------------

    async def take(self) -> Optional[Job]:
        """Next job by lane priority; ``None`` once closed and drained."""
        while True:
            for lane in self._order:
                q = self._queues[lane]
                if q:
                    self.taken[lane] += 1
                    return q.popleft()
            if self._closed:
                return None
            self._event.clear()
            await self._event.wait()

    def remove(self, key: str) -> Optional[Job]:
        """Drop a queued job by key (cancellation); None if not queued."""
        for q in self._queues.values():
            for job in q:
                if job.key == key:
                    q.remove(job)
                    return job
        return None

    def close(self) -> None:
        """No further blocking: ``take`` returns None once drained."""
        self._closed = True
        self._event.set()

    # ------------------------------------------------------------------
    # introspection / back-pressure hint
    # ------------------------------------------------------------------

    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depths(self) -> Dict[str, int]:
        return {lane: len(self._queues[lane]) for lane in self._order}

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-lane flow: current depth + cumulative offered/taken."""
        return {
            lane: {
                "depth": len(self._queues[lane]),
                "offered": self.offered[lane],
                "taken": self.taken[lane],
            }
            for lane in self._order
        }

    def note_done(self) -> None:
        """Record one service completion (feeds the rate estimate)."""
        self._done_stamps.append(time.monotonic())

    def service_rate(self) -> Optional[float]:
        """Observed completions/second over the recent window."""
        stamps = self._done_stamps
        if len(stamps) < 2:
            return None
        span = stamps[-1] - stamps[0]
        if span <= 0:
            return None
        return (len(stamps) - 1) / span

    def retry_after(self) -> float:
        """Seconds a rejected client should wait before resubmitting.

        Estimated time to drain half the queue at the observed service
        rate; a fixed default before any completion has been seen.
        """
        rate = self.service_rate()
        if rate is None:
            return RETRY_AFTER_DEFAULT
        hint = (self.depth() / 2.0) / rate
        return min(max(hint, RETRY_AFTER_MIN), RETRY_AFTER_MAX)
