"""Command-line driver for the experiment harness.

Usage::

    python -m repro.experiments.cli fig4 --per-category 4
    python -m repro.experiments.cli fig2
    python -m repro.experiments.cli table6 --per-category 8
    python -m repro.experiments.cli run --intensity 0.75 --seed 3

Every sub-command prints the regenerated table/series as aligned text;
``--cycles`` scales the run length (default 400k).  Figure/table suite
commands accept ``--workers N`` (parallel campaign execution) and
``--store DIR`` (persistent result cache).

Campaign subcommands drive the engine directly::

    python -m repro.experiments.cli campaign run --preset fig4 \\
        --store fig4-store --workers 8
    python -m repro.experiments.cli campaign status --preset fig4 \\
        --store fig4-store
    python -m repro.experiments.cli campaign resume --preset fig4 \\
        --store fig4-store --workers 8

``campaign run`` is already resumable (finished points are skipped via
the store); ``resume`` is an explicit alias.  A plan can also come
from a JSON file (``--plan plan.json``, see
:meth:`repro.campaign.CampaignPlan.save`).

Telemetry subcommands observe a single traced run::

    python -m repro.experiments.cli telemetry report --intensity 0.75
    python -m repro.experiments.cli telemetry trace --trace-out run
    python -m repro.experiments.cli telemetry trace --trace-in run.jsonl

``report`` prints per-epoch MPKI/RBL/BLP/cluster tables and a Fig.
7-style cluster timeline; ``trace`` writes (or converts a JSONL log
into) a Chrome/Perfetto-loadable trace.  All commands accept
``--log-level {debug,...}``.

Observability subcommands (see docs/OBSERVABILITY.md)::

    python -m repro.experiments.cli obs report --intensity 0.75
    python -m repro.experiments.cli obs attribution --scheduler stfm
    python -m repro.experiments.cli obs dashboard --out run.html
    python -m repro.experiments.cli obs dashboard --store fig4-store \\
        --out campaign.html

``obs report`` runs one workload with request-lifecycle spans enabled
and prints the interference-attribution matrix (who delayed whom, in
cycles), per-thread cause breakdowns, and slowdown estimates;
``attribution`` prints just the matrix; ``dashboard`` renders a
self-contained HTML page for the run — or, with ``--store``, for a
whole campaign.

Validation subcommands (see docs/VALIDATION.md)::

    python -m repro.experiments.cli validate run --intensity 0.75
    python -m repro.experiments.cli validate goldens
    python -m repro.experiments.cli validate goldens --update

``validate run`` executes the workload under every registered
scheduler with the invariant oracle attached and exits non-zero on
any violation; ``validate goldens`` recomputes the pinned golden
matrix and fails on fingerprint drift (``--update`` regenerates it) —
exit 3 means values drifted, exit 4 means only the matrix structure
changed, and ``--forensics DIR`` launches a lockstep bisection of the
first failing point.

Divergence-forensics subcommands (see docs/DIVERGENCE.md)::

    python -m repro.experiments.cli diverge run --cycles 150000
    python -m repro.experiments.cli diverge bisect --seed 11 --seed-b 12 \\
        --backend-b reference --json-out report.json
    python -m repro.experiments.cli diverge bisect --record baseline.json
    python -m repro.experiments.cli diverge run --baseline baseline.json
    python -m repro.experiments.cli diverge report --json-in report.json \\
        --out report.html --perfetto trace.json

``diverge run`` lockstep-compares two runs (reference vs fast by
default; vary ``--seed-b``/``--scheduler-b``/``--backend-*``)
checkpoint by checkpoint and stops at the first mismatch; ``bisect``
refines that mismatch down to the exact first divergent cycle and
prints the field-level state diff; ``report`` re-renders a saved
forensic report.  Exit code 2 signals a divergence.

Self-profiling subcommands (see docs/PROFILING.md)::

    python -m repro.experiments.cli prof run --scheduler tcm
    python -m repro.experiments.cli prof run --deep
    python -m repro.experiments.cli prof flame --out flame.svg \\
        --collapsed flame.txt
    python -m repro.experiments.cli prof history
    python -m repro.experiments.cli prof compare --against new.json
    python -m repro.experiments.cli prof dashboard --out perf.html

``prof run`` profiles the *simulator itself* on one workload and
prints component wall-time shares plus the slowest stack paths
(``--deep`` adds a cProfile table); ``flame`` writes a self-contained
SVG flame graph (and optionally Brendan Gregg collapsed stacks);
``history`` lists the BENCH_history.json records; ``compare`` checks
the latest records against a baseline history and exits non-zero on a
same-machine regression under ``REPRO_BENCH_STRICT=1`` or
``--strict``; ``dashboard`` renders the perf trajectory page.

Serving subcommands (see docs/SERVING.md)::

    python -m repro.experiments.cli serve run --shards 4 --tracing
    python -m repro.experiments.cli serve loadgen --noop 500 --trace
    python -m repro.experiments.cli serve trace --out serve_trace
    python -m repro.experiments.cli serve dashboard --out serve.html
    python -m repro.experiments.cli telemetry report --serve

``serve run --tracing`` boots the service with per-job stage-span
tracing and the observability timeline on; ``serve trace`` pulls the
completed job traces off a running service and writes both the raw
trace JSON and a Perfetto-loadable file; ``serve dashboard`` renders
the live service observability page; ``telemetry report --serve``
prints the service's metrics registry / stage-latency report instead
of running a simulation.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.config import SimConfig
from repro.experiments import (
    evaluate_workload,
    figure1,
    figure2,
    figure3,
    figure4,
    figure6,
    figure7,
    figure8,
    format_scatter,
    format_table,
    table1,
    table2,
    table4,
    table6,
    table7,
    table8,
)
from repro.experiments.figures import ALL_SCHEDULERS, FIGURE8_BENCHMARKS
from repro.telemetry.log import add_log_level_argument, configure_logging
from repro.workloads import make_intensity_workload


def _scatter(points, title):
    print(
        format_scatter(
            [(p.scheduler, p.weighted_speedup, p.maximum_slowdown)
             for p in points],
            title=title,
        )
    )


def _cmd_run(args, config):
    if args.workload_file:
        from repro.workloads import load_workload

        workload = load_workload(args.workload_file)
    else:
        workload = make_intensity_workload(
            args.intensity, num_threads=config.num_threads, seed=args.seed
        )
    names = (
        tuple(args.schedulers.split(","))
        if args.schedulers
        else ("frfcfs", "stfm", "parbs", "atlas", "tcm")
    )
    scores = evaluate_workload(workload, names, config=config, seed=args.seed)
    rows = [
        [name, s.weighted_speedup, s.maximum_slowdown, s.harmonic_speedup]
        for name, s in scores.items()
    ]
    print(
        format_table(
            ["scheduler", "WS", "MS", "HS"], rows,
            title=f"workload {workload.name}",
        )
    )


def _cmd_fig1(args, config):
    _scatter(
        figure1(args.per_category, config, args.seed,
                workers=args.workers, store=args.store),
        "Figure 1",
    )


def _cmd_fig2(args, config):
    result = figure2(config, seed=args.seed)
    print(
        format_table(
            ["policy", "random-access slowdown", "streaming slowdown"],
            [
                ["prioritize random-access", *result.prioritize_random],
                ["prioritize streaming", *result.prioritize_streaming],
            ],
            title="Figure 2",
        )
    )


def _cmd_fig3(args, config):
    sequences = figure3(num_threads=4)
    rows = [
        [i, str(rr), str(ins)]
        for i, (rr, ins) in enumerate(
            zip(sequences["round_robin"], sequences["insertion"])
        )
    ]
    print(format_table(["interval", "round-robin", "insertion"], rows,
                       title="Figure 3"))


def _cmd_fig4(args, config):
    _scatter(
        figure4(args.per_category, config, base_seed=args.seed,
                workers=args.workers, store=args.store),
        "Figure 4",
    )


def _cmd_fig5(args, config):
    from repro.experiments import figure5
    from repro.experiments.figures import ALL_SCHEDULERS

    results = figure5(config, avg_workloads=args.per_category,
                      base_seed=args.seed, workers=args.workers,
                      store=args.store)
    rows = []
    for workload in ("A", "B", "C", "D", "AVG"):
        rows.append(
            [workload]
            + [f"{results[workload][s].weighted_speedup:.2f}/"
               f"{results[workload][s].maximum_slowdown:.2f}"
               for s in ALL_SCHEDULERS]
        )
    print(format_table(["workload"] + [f"{s} WS/MS" for s in ALL_SCHEDULERS],
                       rows, title="Figure 5"))


def _cmd_leakage(args, config):
    from repro.experiments.leakage import measure_leakage
    from repro.workloads import make_intensity_workload

    workload = make_intensity_workload(
        1.0, num_threads=config.num_threads, seed=args.seed
    )
    result = measure_leakage(workload, config, seed=args.seed)
    rows = [
        [pos, f"{share:.1%}"]
        for pos, share in enumerate(result.shares, start=1)
        if share >= 0.005
    ]
    print(format_table(["rank position", "service share"], rows,
                       title="Memory service leakage (paper 3.3)"))


def _cmd_fig6(args, config):
    curves = figure6(args.per_category, config, base_seed=args.seed,
                     workers=args.workers, store=args.store)
    rows = [
        [name, f"{p.parameter}={p.value}", p.weighted_speedup,
         p.maximum_slowdown]
        for name, points in curves.items()
        for p in points
    ]
    print(format_table(["scheduler", "point", "WS", "MS"], rows,
                       title="Figure 6"))


def _cmd_fig7(args, config):
    results = figure7(args.per_category, config=config, base_seed=args.seed,
                      workers=args.workers, store=args.store)
    rows = []
    for intensity, points in sorted(results.items()):
        by_name = {p.scheduler: p for p in points}
        rows.append(
            [f"{intensity:.0%}"]
            + [f"{by_name[s].weighted_speedup:.2f}/"
               f"{by_name[s].maximum_slowdown:.2f}" for s in ALL_SCHEDULERS]
        )
    print(format_table(["intensity"] + [f"{s} WS/MS" for s in ALL_SCHEDULERS],
                       rows, title="Figure 7"))


def _cmd_fig8(args, config):
    result = figure8(config, seed=args.seed, workers=args.workers,
                     store=args.store)
    rows = [
        [f"{name} (w={w})", result.speedups["atlas"][name],
         result.speedups["tcm"][name]]
        for name, w in FIGURE8_BENCHMARKS
    ]
    print(format_table(["benchmark", "ATLAS", "TCM"], rows, title="Figure 8"))


def _cmd_table1(args, config):
    rows = table1(config.with_(phase_mean_cycles=0), seed=args.seed)
    _print_characteristics(rows, "Table 1")


def _cmd_table2(args, config):
    cost = table2()
    print(
        format_table(
            ["monitor", "bits"],
            [["MPKI", cost.mpki_counter], ["load", cost.load_counter],
             ["BLP", cost.blp_counter + cost.blp_average],
             ["shadow index", cost.shadow_row_index],
             ["shadow hits", cost.shadow_row_hits],
             ["TOTAL", cost.total_bits]],
            title="Table 2",
        )
    )


def _cmd_table4(args, config):
    rows = table4(config.with_(phase_mean_cycles=0), seed=args.seed)
    _print_characteristics(rows, "Table 4")


def _print_characteristics(rows, title):
    print(
        format_table(
            ["benchmark", "MPKI tgt", "MPKI", "RBL tgt", "RBL",
             "BLP tgt", "BLP", "IPC"],
            [
                [r.benchmark, r.target_mpki, r.measured_mpki, r.target_rbl,
                 r.measured_rbl, r.target_blp, r.measured_blp, r.alone_ipc]
                for r in rows
            ],
            title=title,
        )
    )


def _cmd_table6(args, config):
    rows = table6(args.per_category, config, base_seed=args.seed,
                  workers=args.workers, store=args.store)
    print(
        format_table(
            ["algorithm", "MS avg", "MS var"],
            [[r.algorithm, r.ms_average, r.ms_variance] for r in rows],
            title="Table 6",
        )
    )


def _cmd_table7(args, config):
    points = table7(args.per_category, config, base_seed=args.seed,
                    workers=args.workers, store=args.store)
    print(
        format_table(
            ["parameter", "value", "WS", "MS"],
            [[p.parameter, p.value, p.weighted_speedup, p.maximum_slowdown]
             for p in points],
            title="Table 7",
        )
    )


def _cmd_table8(args, config):
    rows = table8(per_category=1, config=config, base_seed=args.seed,
                  workers=args.workers, store=args.store)
    print(
        format_table(
            ["dimension", "value", "TCM WS", "ATLAS WS", "TCM MS", "ATLAS MS"],
            [[r.dimension, r.value, r.tcm_ws, r.atlas_ws, r.tcm_ms, r.atlas_ms]
             for r in rows],
            title="Table 8",
        )
    )


# ----------------------------------------------------------------------
# telemetry subcommands
# ----------------------------------------------------------------------


def _telemetry_workload(args, config):
    if args.workload_file:
        from repro.workloads import load_workload

        return load_workload(args.workload_file)
    return make_intensity_workload(
        args.intensity, num_threads=config.num_threads, seed=args.seed
    )


def _cmd_telemetry(args, config):
    from repro.telemetry import Telemetry, jsonl_to_perfetto
    from repro.telemetry.report import render_report

    action = args.action or "report"
    if action not in ("report", "trace"):
        raise SystemExit(
            f"telemetry: unknown action {action!r} (report|trace)"
        )

    if action == "report" and args.serve:
        # Service-side report: pull /v1/metrics off a running service
        # instead of running a simulation.
        import asyncio

        from repro.serve import ServeClient
        from repro.telemetry.report import render_metrics_report

        async def _fetch():
            client = ServeClient(args.host, args.port)
            try:
                _, payload = await client.metrics()
            finally:
                await client.close()
            return payload

        snapshot = asyncio.run(_fetch())
        print(f"service metrics — {args.host}:{args.port}")
        print(render_metrics_report(snapshot))
        return

    if action == "trace" and args.trace_in:
        # Pure conversion: JSONL event log -> Perfetto trace_event JSON.
        out = args.trace_out or args.trace_in.rsplit(".", 1)[0] + ".json"
        count = jsonl_to_perfetto(args.trace_in, out)
        print(f"wrote {out} ({count} events)")
        return

    from repro.experiments.runner import run_shared

    workload = _telemetry_workload(args, config)
    scheduler = args.scheduler or "tcm"
    if action == "trace":
        if not args.trace_out:
            raise SystemExit(
                "telemetry trace: provide --trace-out PREFIX (or "
                "--trace-in FILE to convert an existing log)"
            )
        base = args.trace_out.rsplit(".", 1)[0]
        telemetry = Telemetry.tracing(
            jsonl_path=base + ".jsonl", perfetto_path=base + ".json",
            epoch_cycles=args.epoch_cycles,
        )
        run_shared(workload, scheduler, config, seed=args.seed,
                   telemetry=telemetry)
        telemetry.close()
        print(f"wrote {base}.jsonl and {base}.json "
              f"({telemetry.tracer.events_emitted} events, "
              f"{len(telemetry.samples)} epochs)")
        return

    telemetry = Telemetry.in_memory(epoch_cycles=args.epoch_cycles,
                                    validate=False)
    if args.explain:
        # explain-augmented report: same run, with shadow-policy
        # counterfactuals attached; the disagreement and margin tables
        # append to the ordinary telemetry report
        from repro.explain import explain_run, render_explain_report

        _, collector = explain_run(
            workload, scheduler, config=config, seed=args.seed,
            shadows=_explain_shadow_specs(args, scheduler),
            telemetry=telemetry,
        )
        print(f"workload {workload.name} under {scheduler}")
        print(render_report(telemetry.samples,
                            benchmarks=workload.benchmark_names))
        print()
        print(render_explain_report(collector.snapshot()))
        return
    run_shared(workload, scheduler, config, seed=args.seed,
               telemetry=telemetry)
    print(f"workload {workload.name} under {scheduler}")
    print(render_report(telemetry.samples,
                        benchmarks=workload.benchmark_names))


# ----------------------------------------------------------------------
# explain subcommands
# ----------------------------------------------------------------------


def _explain_shadow_specs(args, primary: str):
    """``--shadows`` list, or every evaluated policy except the primary."""
    from repro.explain import canonical_policy_key
    from repro.schedulers.registry import EVALUATED

    if args.shadows:
        return tuple(s for s in args.shadows.split(",") if s)
    primary_key = canonical_policy_key(primary)
    return tuple(
        name for name in EVALUATED
        if canonical_policy_key(name) != primary_key
    )


def _cmd_explain(args, config):
    import json as json_mod
    from pathlib import Path

    from repro.explain import explain_run, render_explain_report
    from repro.obs.dashboard import (
        render_explain_dashboard,
        write_dashboard,
    )

    action = args.action or "run"
    if action not in ("run", "report", "dashboard"):
        raise SystemExit(
            f"explain: unknown action {action!r} (run|report|dashboard)"
        )

    if action in ("report", "dashboard") and args.json_in:
        # render a saved snapshot: no simulation
        snapshot = json_mod.loads(Path(args.json_in).read_text())
        if action == "dashboard":
            html = render_explain_dashboard(snapshot)
            out = args.out or "explain.html"
            print(f"wrote {write_dashboard(html, out)}")
        else:
            print(render_explain_report(snapshot))
        return

    workload = _telemetry_workload(args, config)
    scheduler = args.scheduler or "tcm"
    shadows = _explain_shadow_specs(args, scheduler)
    telemetry = None
    if args.trace_out:
        from repro.telemetry import Telemetry

        base = args.trace_out.rsplit(".", 1)[0]
        telemetry = Telemetry.tracing(
            jsonl_path=base + ".jsonl", perfetto_path=base + ".json",
            epoch_cycles=args.epoch_cycles,
        )
    result, collector = explain_run(
        workload, scheduler, config=config, seed=args.seed,
        shadows=shadows, telemetry=telemetry,
    )
    if telemetry is not None:
        telemetry.close()
        base = args.trace_out.rsplit(".", 1)[0]
        print(f"wrote {base}.jsonl and {base}.json "
              f"({telemetry.tracer.events_emitted} events)")
    snapshot = collector.snapshot()
    if args.json_out:
        out = Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json_mod.dumps(snapshot, indent=1))
        print(f"wrote {out}")
    if action == "dashboard":
        html = render_explain_dashboard(
            snapshot, title=f"{workload.name} under {scheduler}"
        )
        out = args.out or "explain.html"
        print(f"wrote {write_dashboard(html, out)}")
        return
    print(f"workload {workload.name} under {scheduler} "
          f"(seed {args.seed}, {result.cycles} cycles, "
          f"{result.total_requests} requests)")
    print()
    print(render_explain_report(snapshot))


# ----------------------------------------------------------------------
# obs subcommands
# ----------------------------------------------------------------------


def _cmd_obs(args, config):
    from repro.obs.aggregate import observe_campaign, observe_run
    from repro.obs.attribution import render_matrix_text
    from repro.obs.dashboard import (
        render_campaign_dashboard,
        render_run_dashboard,
        write_dashboard,
    )

    action = args.action or "report"
    if action not in ("report", "attribution", "dashboard"):
        raise SystemExit(
            f"obs: unknown action {action!r} (report|attribution|dashboard)"
        )

    if action == "dashboard" and args.store:
        # campaign page straight from a result store: no simulation
        obs = observe_campaign(args.store)
        html = render_campaign_dashboard(obs, title=str(args.store))
        out = args.out or "obs_campaign.html"
        print(f"wrote {write_dashboard(html, out)}")
        return

    workload = _telemetry_workload(args, config)
    scheduler = args.scheduler or "tcm"
    obs = observe_run(workload, scheduler, config, seed=args.seed,
                      epoch_cycles=args.epoch_cycles)
    if action == "dashboard":
        html = render_run_dashboard(obs)
        out = args.out or "obs_run.html"
        print(f"wrote {write_dashboard(html, out)}")
        return

    print(f"workload {obs.workload} under {obs.scheduler} "
          f"(seed {obs.seed}, {obs.cycles} cycles)")
    print()
    print(render_matrix_text(obs.report, benchmarks=obs.benchmarks))
    print()
    print("reconciliation: "
          + ", ".join(f"{k}={v}" for k, v in obs.report.checks.items()))
    if action == "report":
        if obs.report.causes is not None:
            rows = [
                [f"t{t}:{obs.benchmarks[t]}", row["queue"], row["row"],
                 row["bus"], row["queue_partial"]]
                for t, row in enumerate(obs.report.causes)
            ]
            print()
            print(format_table(
                ["thread", "queueing", "row-conflict", "bus", "partial"],
                rows, title="other-inflicted delay by cause (cycles)",
            ))
        if obs.metrics:
            print()
            print(f"WS={obs.metrics['ws']:.3f}  "
                  f"MS={obs.metrics['ms']:.3f}  "
                  f"HS={obs.metrics['hs']:.3f}  "
                  f"requests={obs.total_requests}  "
                  f"row-hit={obs.row_hit_rate:.1%}")


# ----------------------------------------------------------------------
# validate subcommands
# ----------------------------------------------------------------------


def _goldens_forensics(drifts, directory) -> None:
    """Bisect the first drifting golden point (reference vs fast) and
    drop forensic artifacts — drift list, report JSON, HTML panel —
    into ``directory`` for CI upload."""
    import json as json_mod
    from pathlib import Path

    from repro.diverge import (
        bisect_divergence,
        build_report,
        resolve_cadence,
        spec_for_golden_key,
        write_report,
        write_report_html,
    )
    from repro.validate import drift_point_rows
    from repro.validate.goldens import is_structural

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "goldens_drift.json").write_text(json_mod.dumps(
        [dict(zip(("backend", "mix", "scheduler", "seed", "field",
                   "expected", "actual"), row))
         for row in drift_point_rows(drifts)],
        indent=1,
    ))
    # bisect a point whose fingerprint *value* drifted if there is one;
    # structural drifts (missing/new entries) have nothing to replay
    key = next(
        (d.key for d in drifts if not is_structural(d)), drifts[0].key
    )
    try:
        spec_a = spec_for_golden_key(key, backend="reference")
        spec_b = spec_for_golden_key(key, backend="fast")
    except ValueError as exc:
        print(f"forensics: {exc}; wrote drift list only")
        return
    print(f"forensics: lockstep bisect on {key} (reference vs fast)")
    result = bisect_divergence(
        spec_a.factory(), spec_b.factory(),
        horizon=spec_a.run_cycles,
        cadence=resolve_cadence("quantum"),
    )
    print(f"forensics: {result.summary()}")
    if not result.diverged:
        print("forensics: both backends agree — the drift is against "
              "the *committed* golden, i.e. behaviour changed on both "
              "engines (see the drift list)")
    report = build_report(
        result, label_a=spec_a.label(), label_b=spec_b.label(),
        context={"golden_key": key, "reason": "goldens drift"},
    )
    write_report(report, directory / "diverge_report.json")
    write_report_html(report, directory / "diverge_report.html")
    print(f"forensics: artifacts in {directory}")


def _cmd_validate(args, config):
    from repro.validate import (
        OracleConfig,
        check_goldens,
        checked_run,
        compare_fingerprints,
        compute_golden_matrix,
        drift_point_rows,
        drifts_exit_code,
        format_drift_report,
        save_goldens,
    )

    action = args.action or "run"
    if action not in ("run", "goldens"):
        raise SystemExit(
            f"validate: unknown action {action!r} (run|goldens)"
        )

    if action == "goldens":
        path = args.goldens_path or None
        kwargs = {"path": path} if path else {}
        backend = args.goldens_backend
        if args.update and args.check:
            raise SystemExit("validate goldens: --update and --check "
                             "are mutually exclusive")
        if args.update:
            matrix = compute_golden_matrix(progress=True,
                                           backend="reference")
            if backend == "both":
                fast = compute_golden_matrix(progress=True, backend="fast")
                parity = compare_fingerprints(matrix, fast)
                if parity:
                    print(format_drift_report(parity))
                    print("backend parity violated — not writing goldens")
                    raise SystemExit(1)
            where = save_goldens(matrix, **kwargs) if path else \
                save_goldens(matrix)
            print(f"wrote {where} ({len(matrix)} points)")
            return
        drifts = check_goldens(**kwargs, progress=True, backend=backend)
        if drifts:
            print(format_drift_report(drifts))
            print()
            print(format_table(
                ["backend", "mix", "scheduler", "seed", "field",
                 "expected", "actual"],
                drift_point_rows(drifts),
                title="golden mismatches by point",
            ))
            if args.forensics:
                _goldens_forensics(drifts, args.forensics)
            code = drifts_exit_code(drifts)
            print(f"exit {code}: "
                  + ("fingerprint drift — behaviour changed"
                     if code == 3 else
                     "matrix structure changed — goldens out of date "
                     "(regenerate with scripts/update_goldens.py)"))
            raise SystemExit(code)
        print(f"goldens: no drift (backend: {backend})")
        return

    from repro.schedulers import SCHEDULERS

    workload = _telemetry_workload(args, config)
    names = (
        tuple(args.schedulers.split(","))
        if args.schedulers
        else tuple(sorted(SCHEDULERS))
    )
    rows = []
    failed = False
    oracle_config = OracleConfig(raise_on_violation=False)
    for name in names:
        result, report = checked_run(
            workload, name, config, seed=args.seed,
            oracle_config=oracle_config,
        )
        rows.append([name, "ok" if report.ok else "FAIL",
                     report.total_checks, result.total_requests])
        for violation in report.violations:
            failed = True
            print(f"VIOLATION [{name}] {violation}")
    print(
        format_table(
            ["scheduler", "oracle", "checks", "requests"], rows,
            title=f"invariant oracle: workload {workload.name}",
        )
    )
    if failed:
        raise SystemExit(1)


# ----------------------------------------------------------------------
# diverge subcommands
# ----------------------------------------------------------------------


def _cmd_diverge(args, config):
    import json as json_mod
    from pathlib import Path

    from repro.diverge import (
        RunSpec,
        bisect_divergence,
        build_report,
        compare_to_recording,
        export_perfetto,
        load_report,
        lockstep_compare,
        record_checkpoints,
        resolve_cadence,
        write_report,
        write_report_html,
    )

    action = args.action or "bisect"
    if action not in ("run", "bisect", "report"):
        raise SystemExit(
            f"diverge: unknown action {action!r} (run|bisect|report)"
        )

    if action == "report":
        if not args.json_in:
            raise SystemExit("diverge report: --json-in REPORT.json "
                             "is required")
        report = load_report(args.json_in)
        print(report["summary"])
        if args.out:
            where = write_report_html(report, args.out)
            print(f"wrote {where}")
        if args.perfetto:
            where = export_perfetto(report, args.perfetto)
            print(f"wrote {where} (load at https://ui.perfetto.dev)")
        return

    cadence = resolve_cadence(args.cadence, config)
    scheduler = args.scheduler or "tcm"
    spec_a = RunSpec(
        scheduler=scheduler,
        intensity=args.intensity,
        seed=args.seed,
        backend=args.backend_a,
        run_cycles=args.cycles,
    )

    if args.record:
        recording = record_checkpoints(
            spec_a.factory(), args.cycles, cadence,
            path=args.record, spec=spec_a,
        )
        print(f"wrote {args.record} "
              f"({len(recording['checkpoints'])} checkpoints, "
              f"cadence {cadence})")
        return

    if args.baseline:
        recording = json_mod.loads(Path(args.baseline).read_text())
        result = compare_to_recording(spec_a.factory(), recording)
        label_a = f"baseline:{args.baseline}"
        label_b = spec_a.label()
        context = {"spec_b": spec_a.to_json(),
                   "baseline_spec": recording.get("spec")}
    else:
        spec_b = RunSpec(
            scheduler=args.scheduler_b or scheduler,
            intensity=args.intensity,
            seed=args.seed if args.seed_b is None else args.seed_b,
            backend=args.backend_b,
            run_cycles=args.cycles,
        )
        if spec_a == spec_b:
            raise SystemExit(
                "diverge: both sides are the identical run — vary "
                "--backend-a/--backend-b, --seed-b or --scheduler-b"
            )
        label_a, label_b = spec_a.label(), spec_b.label()
        context = {"spec_a": spec_a.to_json(), "spec_b": spec_b.to_json()}
        compare = lockstep_compare if action == "run" else bisect_divergence
        kwargs = {} if action == "run" else {"refine": args.refine}
        result = compare(
            spec_a.factory(), spec_b.factory(), args.cycles, cadence,
            **kwargs,
        )

    print(f"{label_a}  vs  {label_b}")
    print(result.summary())
    divergence = result.divergence
    if divergence is not None:
        shown = divergence.diff[:10]
        for entry in shown:
            print(f"  {entry['path']}: {entry['a']!r} -> {entry['b']!r}")
        more = len(divergence.diff) - len(shown)
        if more > 0:
            print(f"  ... and {more} more differing field(s) "
                  "(see --json-out report)")
    report = build_report(result, label_a, label_b, context=context)
    if args.json_out:
        where = write_report(report, args.json_out)
        print(f"wrote {where}")
    if args.out:
        where = write_report_html(report, args.out)
        print(f"wrote {where}")
    if args.perfetto:
        where = export_perfetto(report, args.perfetto)
        print(f"wrote {where} (load at https://ui.perfetto.dev)")
    if result.diverged:
        raise SystemExit(2)


# ----------------------------------------------------------------------
# prof subcommands
# ----------------------------------------------------------------------


def _cmd_prof(args, config):
    from repro.prof import (
        compare_histories,
        load,
        profile_run,
        render_flame_svg,
        strict_mode,
        write_flame_svg,
    )

    action = args.action or "run"
    if action not in ("run", "flame", "history", "compare", "dashboard"):
        raise SystemExit(
            f"prof: unknown action {action!r} "
            "(run|flame|history|compare|dashboard)"
        )
    history_path = args.history or "BENCH_history.json"

    if action == "history":
        records = load(history_path)
        print(
            format_table(
                ["bench", "date", "sha", "median s", "best s", "events/s"],
                [[r.get("bench", "?"), r.get("recorded_on", "?"),
                  (r.get("git_sha") or "?")[:9],
                  round(r["wall_s"]["median"], 4),
                  round(r["wall_s"]["best"], 4),
                  (round(r["events_per_sec"])
                   if r.get("events_per_sec") else "-")]
                 for r in records],
                title=f"{history_path} ({len(records)} records)",
            )
        )
        return

    if action == "compare":
        against = args.against or history_path
        verdicts = compare_histories(history_path, against,
                                     tolerance=args.tolerance)
        if not verdicts:
            print("prof compare: no overlapping benches to compare")
            return
        rows = [[v.bench, v.verdict,
                 f"{v.ratio:.3f}x" if v.ratio is not None else "-",
                 v.message]
                for v in verdicts]
        print(format_table(["bench", "verdict", "ratio", "detail"], rows,
                           title=f"{history_path} vs {against}"))
        regressions = [v for v in verdicts if v.failed]
        if regressions and (args.strict or strict_mode()):
            raise SystemExit(
                f"prof compare: {len(regressions)} regression(s)"
            )
        return

    # run | flame | dashboard all profile one run
    workload = _telemetry_workload(args, config)
    scheduler = args.scheduler or "tcm"
    result, report = profile_run(
        workload, scheduler, config, seed=args.seed, deep=args.deep
    )

    if action == "run":
        print(report.format_text())
        return

    title = (f"repro.prof — {workload.name} under {scheduler} "
             f"({result.cycles} cycles)")
    if action == "flame":
        out = args.out or "flame.svg"
        print(f"wrote {write_flame_svg(report, out, title=title)}")
        if args.collapsed:
            from pathlib import Path

            from repro.prof import render_collapsed

            Path(args.collapsed).write_text(render_collapsed(report),
                                            encoding="utf-8")
            print(f"wrote {args.collapsed}")
        return

    from repro.obs.dashboard import write_dashboard
    from repro.prof.dashboard import render_perf_dashboard

    try:
        records = load(history_path)
    except (ValueError, OSError):
        records = []
    html = render_perf_dashboard(
        records, report=report,
        flame_svg=render_flame_svg(report, title=title),
    )
    out = args.out or "perf.html"
    print(f"wrote {write_dashboard(html, out)}")


# ----------------------------------------------------------------------
# campaign subcommands
# ----------------------------------------------------------------------


def _campaign_plan(args, config):
    from repro.campaign import CampaignPlan, preset_plan

    if args.plan:
        return CampaignPlan.load(args.plan)
    if args.preset:
        try:
            return preset_plan(
                args.preset, per_category=args.per_category, config=config,
                base_seed=args.seed,
            )
        except KeyError as exc:
            raise SystemExit(f"campaign: {exc.args[0]}") from None
    raise SystemExit("campaign: provide --plan FILE or --preset NAME")


def _cmd_campaign(args, config):
    from repro.campaign import (
        KIND_FAILURE,
        KIND_POINT,
        CampaignStore,
        execute_plan,
    )

    action = args.action or "run"
    if action not in ("run", "resume", "status", "compact"):
        raise SystemExit(
            f"campaign: unknown action {action!r} "
            "(run|resume|status|compact)"
        )

    if action == "compact":
        # needs no plan: compaction is a property of the store alone
        if args.store is None:
            raise SystemExit("campaign compact: --store DIR is required")
        with CampaignStore(args.store) as store:
            stats = store.compact()
        print(
            format_table(
                ["stat", "value"],
                [[name, stats[name]] for name in (
                    "records_before", "records_after", "superseded",
                    "bytes_before", "bytes_after", "bytes_reclaimed",
                )],
                title=f"compacted {args.store}",
            )
        )
        return

    plan = _campaign_plan(args, config)

    if action == "status":
        if args.store is None:
            raise SystemExit("campaign status: --store DIR is required")
        with CampaignStore(args.store) as store:
            states = {"done": 0, "failed": 0, "pending": 0}
            for key in plan.keys:
                kind = store.kind(key)
                if kind == KIND_POINT:
                    states["done"] += 1
                elif kind == KIND_FAILURE:
                    states["failed"] += 1
                else:
                    states["pending"] += 1
        print(
            format_table(
                ["state", "points"],
                [[name, count] for name, count in states.items()],
                title=f"campaign {plan.name} ({len(plan)} points)",
            )
        )
        return

    report = execute_plan(
        plan,
        store=args.store,
        workers=args.workers or 1,
        timeout=args.timeout,
        retries=args.retries,
        force=args.force,
        progress=True,
        trace_dir=args.trace_dir,
        trace_epoch_cycles=args.epoch_cycles,
    )
    print(report.summary)
    for failure in report.failed:
        print(
            f"FAILED {failure.point.workload.name}/"
            f"{failure.point.scheduler}: {failure.error}"
        )


# ----------------------------------------------------------------------
# serve subcommands
# ----------------------------------------------------------------------


def _serve_jobs(args, config):
    """Build the submission list: synthetic no-ops or plan points."""
    from repro.serve import cycle_jobs, noop_jobs, plan_jobs

    if args.noop:
        jobs = noop_jobs(
            args.noop, sleep_ms=args.sleep_ms, seed=args.seed,
            lane=args.lane, deadline_s=args.deadline_s,
            trace=args.trace,
        )
    else:
        plan = _campaign_plan(args, config)
        jobs = plan_jobs(plan, lane=args.lane,
                         deadline_s=args.deadline_s,
                         trace=args.trace)
    if args.jobs and args.jobs > len(jobs):
        jobs = cycle_jobs(jobs, args.jobs)
    return jobs


def _cmd_serve(args, config):
    import asyncio
    import json as json_mod

    from repro.serve import (
        LoadGenerator,
        ServeClient,
        ServeConfig,
        start_serving,
    )

    action = args.action or "run"
    if action not in ("run", "submit", "status", "loadgen", "shutdown",
                      "trace", "dashboard"):
        raise SystemExit(
            f"serve: unknown action {action!r} "
            "(run|submit|status|loadgen|shutdown|trace|dashboard)"
        )

    if action == "run":
        async def _run():
            cfg = ServeConfig(
                shards=args.shards,
                queue_capacity=args.queue_capacity,
                retries=args.retries,
                job_timeout_s=args.job_timeout,
                default_deadline_s=args.deadline_s,
                compact_threshold_bytes=args.compact_threshold,
                tracing=args.tracing or bool(args.trace_dir),
                trace_dir=args.trace_dir,
                trace_epoch_cycles=args.epoch_cycles,
            )
            service, server = await start_serving(
                args.store, cfg, host=args.host, port=args.port,
            )
            print(
                f"serving on http://{server.host}:{server.port}  "
                f"shards={args.shards}  "
                f"store={args.store or '(none)'}  "
                f"tracing={'on' if cfg.tracing else 'off'}",
                flush=True,
            )
            try:
                await server.run_until_shutdown()
            finally:
                await service.stop()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            print("serve: interrupted, shut down cleanly",
                  file=sys.stderr)
        return

    if action == "status":
        async def _status():
            client = ServeClient(args.host, args.port)
            try:
                if args.job:
                    _, payload = await client.status(args.job,
                                                     result=True)
                else:
                    _, payload = await client.health()
                print(json_mod.dumps(payload, indent=2))
            finally:
                await client.close()

        asyncio.run(_status())
        return

    if action == "shutdown":
        async def _shutdown():
            client = ServeClient(args.host, args.port)
            try:
                _, payload = await client.shutdown(drain=True)
                print(json_mod.dumps(payload))
            finally:
                await client.close()

        asyncio.run(_shutdown())
        return

    if action == "trace":
        from repro.serve import sim_trace_locator, write_perfetto

        prefix = args.out or "serve_trace"
        if prefix.endswith(".json"):
            prefix = prefix[:-5]

        async def _trace():
            client = ServeClient(args.host, args.port)
            try:
                code, snap = await client.traces()
                if code != 200:
                    raise SystemExit(
                        f"serve trace: {snap.get('error', snap)}")
                _, obs = await client.obs()
            finally:
                await client.close()
            raw_path = f"{prefix}_traces.json"
            with open(raw_path, "w", encoding="utf-8") as f:
                json_mod.dump(snap, f, indent=2)
            locate = (sim_trace_locator(args.trace_dir)
                      if args.trace_dir else None)
            write_perfetto(
                snap["traces"], f"{prefix}.json",
                timeline=obs.get("timeline"), sim_trace_for=locate,
            )
            tiling = snap.get("tiling", {})
            print(f"wrote {raw_path} and {prefix}.json "
                  f"({len(snap['traces'])} traces, "
                  f"{tiling.get('checked', 0)} tiling-checked, "
                  f"{tiling.get('violations', 0)} violations)")

        asyncio.run(_trace())
        return

    if action == "dashboard":
        from repro.obs.dashboard import (
            render_serve_dashboard,
            write_dashboard,
        )

        async def _dashboard():
            client = ServeClient(args.host, args.port)
            try:
                _, obs = await client.obs()
            finally:
                await client.close()
            html = render_serve_dashboard(
                obs, title=f"{args.host}:{args.port}")
            out = args.out or "serve_dashboard.html"
            print(f"wrote {write_dashboard(html, out)}")

        asyncio.run(_dashboard())
        return

    # submit | loadgen both drive the LoadGenerator; submit is the
    # fire-everything-and-wait special case.
    jobs = _serve_jobs(args, config)
    mode = "batch" if action == "submit" else args.mode

    async def _drive():
        gen = LoadGenerator(
            args.host, args.port, jobs,
            mode=mode, rate=args.rate, concurrency=args.concurrency,
            batch=args.batch, seed=args.seed,
        )
        return await gen.run()

    report = asyncio.run(_drive())
    print(report.format_text())
    if args.slo_out and report.slo is not None:
        with open(args.slo_out, "w", encoding="utf-8") as f:
            json_mod.dump(report.slo, f, indent=2)
        print(f"wrote {args.slo_out}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json_mod.dump(report.to_dict(), f, indent=2)
        print(f"wrote {args.json_out}")
    if report.lost or report.errors:
        raise SystemExit(1)


_COMMANDS = {
    "campaign": _cmd_campaign,
    "diverge": _cmd_diverge,
    "explain": _cmd_explain,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
    "prof": _cmd_prof,
    "telemetry": _cmd_telemetry,
    "validate": _cmd_validate,
    "run": _cmd_run,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "leakage": _cmd_leakage,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table4": _cmd_table4,
    "table6": _cmd_table6,
    "table7": _cmd_table7,
    "table8": _cmd_table8,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.cli",
        description="Regenerate the TCM paper's tables and figures.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS))
    parser.add_argument("action", nargs="?", default=None,
                        help="campaign action: run | resume | status | "
                             "compact; "
                             "serve action: run | submit | status | "
                             "loadgen | shutdown | trace | dashboard; "
                             "telemetry action: report | trace; "
                             "validate action: run | goldens; "
                             "diverge action: run | bisect | report; "
                             "explain action: run | report | dashboard; "
                             "obs action: report | attribution | dashboard; "
                             "prof action: run | flame | history | "
                             "compare | dashboard")
    parser.add_argument("--cycles", type=int, default=400_000,
                        help="simulated cycles per run")
    parser.add_argument("--per-category", type=int, default=2,
                        help="workloads per intensity category")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--intensity", type=float, default=0.5,
                        help="memory-intensive fraction (run command)")
    parser.add_argument("--workload-file", default=None,
                        help="JSON workload definition (run command; see "
                             "repro.workloads.save_workload)")
    parser.add_argument("--schedulers", default=None,
                        help="comma-separated scheduler list (run command)")
    parser.add_argument("--workers", type=int, default=None,
                        help="campaign worker processes (default: serial)")
    parser.add_argument("--store", default=None,
                        help="campaign store directory (persistent result "
                             "cache; enables resume)")
    parser.add_argument("--plan", default=None,
                        help="campaign plan JSON file (campaign command)")
    parser.add_argument("--preset", default=None,
                        help="named preset campaign, e.g. fig4, fig7, "
                             "table6, smoke (campaign command)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-point timeout in seconds (campaign "
                             "command, workers > 1)")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries per failed point (campaign command)")
    parser.add_argument("--force", action="store_true",
                        help="re-run campaign points even if stored")
    parser.add_argument("--scheduler", default=None,
                        help="scheduler for telemetry runs (default tcm)")
    parser.add_argument("--epoch-cycles", type=int, default=None,
                        help="epoch-sampler period in cycles (default: "
                             "quantum length)")
    parser.add_argument("--trace-in", default=None,
                        help="existing JSONL event log to convert "
                             "(telemetry trace)")
    parser.add_argument("--trace-out", default=None,
                        help="output path/prefix for trace files "
                             "(telemetry trace)")
    parser.add_argument("--trace-dir", default=None,
                        help="write per-point JSONL traces here "
                             "(campaign run; serve run — also turns "
                             "tracing on; serve trace — locate sim "
                             "traces for Perfetto nesting)")
    parser.add_argument("--out", default=None,
                        help="output path (obs/serve dashboard HTML; "
                             "serve trace file prefix)")
    parser.add_argument("--deep", action="store_true",
                        help="prof run/flame: add cProfile deep mode")
    parser.add_argument("--collapsed", default=None,
                        help="prof flame: also write Brendan Gregg "
                             "collapsed stacks to this path")
    parser.add_argument("--history", default=None,
                        help="prof: benchmark history file (default "
                             "BENCH_history.json)")
    parser.add_argument("--against", default=None,
                        help="prof compare: newer history file to check "
                             "against --history (default: compare the "
                             "last two records per bench in --history)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="prof compare: regression tolerance on the "
                             "median ratio (default: the baseline "
                             "record's own, then 1.05)")
    parser.add_argument("--strict", action="store_true",
                        help="prof compare: exit non-zero on regression "
                             "even without REPRO_BENCH_STRICT=1")
    parser.add_argument("--update", action="store_true",
                        help="regenerate the golden matrix instead of "
                             "checking it (validate goldens)")
    parser.add_argument("--check", action="store_true",
                        help="validate goldens: explicitly request the "
                             "check (the default); on failure prints the "
                             "per-point mismatch table and exits 3 "
                             "(value drift) or 4 (structure changed)")
    parser.add_argument("--forensics", default=None,
                        help="validate goldens: on drift, lockstep-bisect "
                             "the first failing point (reference vs fast) "
                             "and write forensic artifacts to this "
                             "directory")
    parser.add_argument("--cadence", default=None,
                        help="diverge: checkpoint cadence — 'quantum' "
                             "(default), 'cycle', or an integer cycle "
                             "count")
    parser.add_argument("--refine", type=int, default=8,
                        help="diverge bisect: cadence shrink factor per "
                             "refinement round")
    parser.add_argument("--backend-a", default="reference",
                        choices=("reference", "fast"),
                        help="diverge: engine backend for side A")
    parser.add_argument("--backend-b", default="fast",
                        choices=("reference", "fast"),
                        help="diverge: engine backend for side B")
    parser.add_argument("--seed-b", type=int, default=None,
                        help="diverge: run seed for side B (default: "
                             "same as --seed)")
    parser.add_argument("--scheduler-b", default=None,
                        help="diverge: scheduler for side B (default: "
                             "same as --scheduler)")
    parser.add_argument("--record", default=None,
                        help="diverge run|bisect: record side A's "
                             "checkpoint fingerprints to this JSON "
                             "baseline instead of comparing")
    parser.add_argument("--baseline", default=None,
                        help="diverge: compare side A against a recorded "
                             "baseline instead of a second live run")
    parser.add_argument("--json-in", default=None,
                        help="diverge report: forensic report JSON to "
                             "render; explain report|dashboard: saved "
                             "snapshot JSON to render")
    parser.add_argument("--perfetto", default=None,
                        help="diverge: also export a Chrome trace_event "
                             "JSON with the divergence marked")
    parser.add_argument("--goldens-path", default=None,
                        help="golden matrix JSON path (validate goldens; "
                             "default tests/goldens/golden_matrix.json)")
    parser.add_argument("--backend", dest="goldens_backend", default="both",
                        choices=("reference", "fast", "both"),
                        help="engine backend(s) for validate goldens "
                             "(default both — the check then also proves "
                             "cross-backend parity at golden scale)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve: bind/connect address")
    parser.add_argument("--port", type=int, default=8765,
                        help="serve: TCP port (0 = ephemeral for run)")
    parser.add_argument("--shards", type=int, default=2,
                        help="serve run: worker shard processes")
    parser.add_argument("--queue-capacity", type=int, default=512,
                        help="serve run: bounded inbox size "
                             "(back-pressure beyond this)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="serve run: per-job wall-clock timeout "
                             "in seconds")
    parser.add_argument("--compact-threshold", type=int,
                        default=64 * 1024 * 1024,
                        help="serve run: compact the store once its log "
                             "exceeds this many bytes")
    parser.add_argument("--noop", type=int, default=None,
                        help="serve submit/loadgen: submit N synthetic "
                             "no-op jobs instead of plan points")
    parser.add_argument("--sleep-ms", type=float, default=0.0,
                        help="serve: per-noop-job simulated service time")
    parser.add_argument("--jobs", type=int, default=None,
                        help="serve loadgen: total submissions (cycles "
                             "the base job list; exercises dedup)")
    parser.add_argument("--mode", default="batch",
                        choices=("open", "closed", "batch"),
                        help="serve loadgen: arrival process")
    parser.add_argument("--rate", type=float, default=200.0,
                        help="serve loadgen open mode: mean arrivals/s "
                             "(Poisson)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="serve loadgen closed mode: in-flight "
                             "clients")
    parser.add_argument("--batch", type=int, default=100,
                        help="serve loadgen batch mode: jobs per request")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="serve: per-job SLO deadline in seconds")
    parser.add_argument("--lane", default="default",
                        help="serve: priority lane "
                             "(interactive|default|batch)")
    parser.add_argument("--job", default=None,
                        help="serve status: show one job by key")
    parser.add_argument("--tracing", action="store_true",
                        help="serve run: per-job stage-span tracing + "
                             "observability timeline")
    parser.add_argument("--trace", action="store_true",
                        help="serve submit/loadgen: ask the service to "
                             "write a per-point sim trace for each "
                             "submitted job (needs a --trace-dir run)")
    parser.add_argument("--serve", action="store_true",
                        help="telemetry report: pull /v1/metrics from a "
                             "running service instead of simulating")
    parser.add_argument("--shadows", default=None,
                        help="explain: comma-separated shadow policies "
                             "(default: every evaluated policy except "
                             "the primary)")
    parser.add_argument("--explain", action="store_true",
                        help="telemetry report: attach shadow-policy "
                             "counterfactuals and append disagreement / "
                             "margin tables")
    parser.add_argument("--slo-out", default=None,
                        help="serve submit/loadgen: write the service "
                             "SLO attainment report JSON here")
    parser.add_argument("--json-out", default=None,
                        help="serve submit/loadgen: write the full "
                             "loadgen report JSON here; diverge: write "
                             "the forensic report JSON here; explain: "
                             "write the collector snapshot JSON here")
    add_log_level_argument(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    config = SimConfig(run_cycles=args.cycles)
    try:
        _COMMANDS[args.command](args, config)
    except KeyboardInterrupt as exc:
        # CampaignInterrupted (a KeyboardInterrupt subclass) carries the
        # flushed-and-resumable message; a bare Ctrl-C elsewhere gets
        # the conventional 130 without a stack trace either way.
        detail = str(exc)
        print(f"interrupted: {detail}" if detail else "interrupted",
              file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout consumer went away (e.g. `... | head`); not an error.
        # Point stdout at devnull so interpreter teardown doesn't try
        # to flush the dead pipe and print a second traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
