"""Canonical simulation configurations.

Three scales of the same Table 3 system:

* :func:`quick_config` — CI-speed smoke runs (sub-second per run).
* :func:`default_config` — the calibrated configuration all recorded
  results use (see EXPERIMENTS.md).
* :func:`paper_scale_config` — the paper's native scale (1M-cycle
  quanta, 100M-cycle runs).  Hours per workload in pure Python; use
  only for spot checks.
"""

from __future__ import annotations

from repro.config import PAPER_QUANTUM_CYCLES, PAPER_RUN_CYCLES, SimConfig


def quick_config(**overrides) -> SimConfig:
    """Small runs for smoke tests: 100k cycles, 25k quanta."""
    base = SimConfig(quantum_cycles=25_000, run_cycles=100_000)
    return base.with_(**overrides) if overrides else base


def default_config(**overrides) -> SimConfig:
    """The calibrated 1/20-scale configuration (50k quanta, 600k runs)."""
    base = SimConfig()
    return base.with_(**overrides) if overrides else base


def paper_scale_config(**overrides) -> SimConfig:
    """The paper's native scale: 1M-cycle quanta, 100M-cycle runs."""
    base = SimConfig(
        quantum_cycles=PAPER_QUANTUM_CYCLES,
        run_cycles=PAPER_RUN_CYCLES,
        # phases scale with the quantum so there are still several
        # per quantum at native scale
        phase_mean_cycles=800_000,
    )
    return base.with_(**overrides) if overrides else base
