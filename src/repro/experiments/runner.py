"""Run workloads under schedulers and score them against alone runs.

The paper's metrics (weighted speedup, maximum slowdown, harmonic
speedup) compare each thread's shared-system IPC against its IPC when
running **alone** on the same memory system.  Alone runs depend only on
the benchmark and the system configuration — not on the scheduler or
the co-runners — so they are cached in two layers:

* **L1** — a process-local dict (``_ALONE_CACHE``), always on.
* **L2** — an optional persistent :class:`repro.campaign.CampaignStore`
  attached with :func:`set_alone_store`; misses read through to it and
  fresh computations write back, so alone IPCs survive process exit
  and are shared across campaigns and sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.metrics import harmonic_speedup, maximum_slowdown, weighted_speedup
from repro.schedulers import make_scheduler
from repro.sim import RunResult, System
from repro.workloads.mixes import Workload, workload_from_specs
from repro.workloads.spec import BenchmarkSpec

#: L1: process-local alone-run IPCs, keyed by :func:`_alone_key`.
_ALONE_CACHE: Dict[Tuple, float] = {}
#: L2: optional persistent campaign store (read-through/write-back).
_ALONE_STORE = None


@dataclass(frozen=True)
class SchedulerScore:
    """One scheduler's metrics on one workload."""

    scheduler: str
    workload: str
    weighted_speedup: float
    maximum_slowdown: float
    harmonic_speedup: float
    result: RunResult


def _alone_key(spec: BenchmarkSpec, config: SimConfig, seed: int) -> Tuple:
    """L1 cache key: *every* config field, via :meth:`SimConfig.cache_key`.

    ``num_threads`` and ``config.seed`` are normalised away because an
    alone run simulates exactly one thread (``System`` sizes itself off
    the workload) with an explicitly passed seed — so e.g. a core-count
    sweep shares one alone run per benchmark.  All other fields —
    including any added later — are covered automatically by the
    dataclass-derived key, so a new config field can never silently
    alias cache entries.
    """
    return (
        spec.name,
        spec.mpki,
        spec.rbl,
        spec.blp,
        config.with_(num_threads=1, seed=0).cache_key(),
        seed,
    )


def set_alone_store(store):
    """Attach (or with None, detach) the persistent L2 alone-run store.

    ``store`` is a :class:`repro.campaign.CampaignStore` (or anything
    with its ``get``/``put``/``kind`` interface).  Returns the
    previously attached store so callers can restore it.
    """
    global _ALONE_STORE
    previous = _ALONE_STORE
    _ALONE_STORE = store
    return previous


def prime_alone_cache(
    spec: BenchmarkSpec, config: SimConfig, seed: int, ipc: float
) -> None:
    """Insert a known alone-run IPC into the process-local L1 cache.

    Campaign workers use this to seed their cache from store-backed
    hints so they never recompute an alone run another process already
    did.
    """
    _ALONE_CACHE[_alone_key(spec, config, seed)] = ipc


def clear_alone_cache(persistent: bool = False) -> None:
    """Drop memoised alone-run IPCs (mainly for tests).

    Always clears the process-local L1 dict.  The persistent L2 store
    (if attached via :func:`set_alone_store`) is *detached* — not
    erased — when ``persistent=True``; on-disk artifacts are never
    deleted by this function.
    """
    _ALONE_CACHE.clear()
    if persistent:
        set_alone_store(None)


def alone_ipc(
    spec: BenchmarkSpec, config: Optional[SimConfig] = None, seed: int = 0
) -> float:
    """IPC of ``spec`` running alone on the configured memory system.

    The scheduling algorithm is irrelevant with a single thread;
    FR-FCFS is used (it is what an uncontended controller does).
    Reads through L1 (process dict) then L2 (persistent store, when
    attached); computes and writes back on a full miss.
    """
    config = config or SimConfig()
    key = _alone_key(spec, config, seed)
    if key in _ALONE_CACHE:
        return _ALONE_CACHE[key]

    store_key = None
    if _ALONE_STORE is not None:
        from repro.campaign.hashing import alone_key as _store_alone_key
        from repro.campaign.store import KIND_ALONE

        store_key = _store_alone_key(spec, config, seed)
        if _ALONE_STORE.kind(store_key) == KIND_ALONE:
            ipc = _ALONE_STORE.get(store_key)["payload"]["ipc"]
            _ALONE_CACHE[key] = ipc
            return ipc

    workload = workload_from_specs(f"alone-{spec.name}", (spec,))
    system = System(workload, make_scheduler("frfcfs"), config, seed=seed)
    ipc = system.run().threads[0].ipc
    _ALONE_CACHE[key] = ipc
    if _ALONE_STORE is not None:
        from repro.campaign.hashing import canonicalize
        from repro.campaign.store import KIND_ALONE

        _ALONE_STORE.put(
            store_key, KIND_ALONE, {"ipc": ipc},
            meta={"spec": canonicalize(spec), "seed": seed,
                  "benchmark": spec.name},
        )
    return ipc


def alone_ipcs(
    workload: Workload, config: Optional[SimConfig] = None, seed: int = 0
) -> List[float]:
    """Alone IPC of every thread in the workload (memoised per spec)."""
    config = config or SimConfig()
    return [alone_ipc(spec, config, seed) for spec in workload.specs]


def run_shared(
    workload: Workload,
    scheduler_name: str,
    config: Optional[SimConfig] = None,
    params: Optional[object] = None,
    seed: int = 0,
    telemetry=None,
) -> RunResult:
    """Run ``workload`` under one scheduler and return the raw result.

    ``telemetry`` is an optional :class:`repro.telemetry.Telemetry`
    bundle; tracing and sampling never change the simulated outcome,
    only observe it.
    """
    config = config or SimConfig()
    scheduler = make_scheduler(scheduler_name, params)
    return System(
        workload, scheduler, config, seed=seed, telemetry=telemetry
    ).run()


def score_run(
    result: RunResult,
    workload: Workload,
    config: Optional[SimConfig] = None,
    seed: int = 0,
) -> SchedulerScore:
    """Score a shared run against memoised alone runs."""
    config = config or SimConfig()
    alones = alone_ipcs(workload, config, seed)
    shared = result.ipcs
    return SchedulerScore(
        scheduler=result.scheduler,
        workload=workload.name,
        weighted_speedup=weighted_speedup(alones, shared),
        maximum_slowdown=maximum_slowdown(alones, shared),
        harmonic_speedup=harmonic_speedup(alones, shared),
        result=result,
    )


def evaluate_workload(
    workload: Workload,
    scheduler_names: Sequence[str] = ("frfcfs", "stfm", "parbs", "atlas", "tcm"),
    config: Optional[SimConfig] = None,
    params: Optional[Dict[str, object]] = None,
    seed: int = 0,
) -> Dict[str, SchedulerScore]:
    """Run one workload under several schedulers and score each."""
    config = config or SimConfig()
    params = params or {}
    scores = {}
    for name in scheduler_names:
        result = run_shared(workload, name, config, params.get(name), seed)
        scores[name] = score_run(result, workload, config, seed)
    return scores
