"""Run workloads under schedulers and score them against alone runs.

The paper's metrics (weighted speedup, maximum slowdown, harmonic
speedup) compare each thread's shared-system IPC against its IPC when
running **alone** on the same memory system.  Alone runs depend only on
the benchmark and the system configuration — not on the scheduler or
the co-runners — so they are memoised process-wide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.metrics import harmonic_speedup, maximum_slowdown, weighted_speedup
from repro.schedulers import make_scheduler
from repro.sim import RunResult, System
from repro.workloads.mixes import Workload, workload_from_specs
from repro.workloads.spec import BenchmarkSpec

_ALONE_CACHE: Dict[Tuple, float] = {}


@dataclass(frozen=True)
class SchedulerScore:
    """One scheduler's metrics on one workload."""

    scheduler: str
    workload: str
    weighted_speedup: float
    maximum_slowdown: float
    harmonic_speedup: float
    result: RunResult


def _alone_key(spec: BenchmarkSpec, config: SimConfig, seed: int) -> Tuple:
    return (
        spec.name,
        spec.mpki,
        spec.rbl,
        spec.blp,
        config.num_channels,
        config.banks_per_channel,
        config.num_rows,
        config.window_size,
        config.ipc_peak,
        config.run_cycles,
        config.quantum_cycles,
        config.timings,
        seed,
    )


def clear_alone_cache() -> None:
    """Drop all memoised alone-run IPCs (mainly for tests)."""
    _ALONE_CACHE.clear()


def alone_ipc(
    spec: BenchmarkSpec, config: Optional[SimConfig] = None, seed: int = 0
) -> float:
    """IPC of ``spec`` running alone on the configured memory system.

    The scheduling algorithm is irrelevant with a single thread;
    FR-FCFS is used (it is what an uncontended controller does).
    """
    config = config or SimConfig()
    key = _alone_key(spec, config, seed)
    if key not in _ALONE_CACHE:
        workload = workload_from_specs(f"alone-{spec.name}", (spec,))
        system = System(workload, make_scheduler("frfcfs"), config, seed=seed)
        _ALONE_CACHE[key] = system.run().threads[0].ipc
    return _ALONE_CACHE[key]


def alone_ipcs(
    workload: Workload, config: Optional[SimConfig] = None, seed: int = 0
) -> List[float]:
    """Alone IPC of every thread in the workload (memoised per spec)."""
    config = config or SimConfig()
    return [alone_ipc(spec, config, seed) for spec in workload.specs]


def run_shared(
    workload: Workload,
    scheduler_name: str,
    config: Optional[SimConfig] = None,
    params: Optional[object] = None,
    seed: int = 0,
) -> RunResult:
    """Run ``workload`` under one scheduler and return the raw result."""
    config = config or SimConfig()
    scheduler = make_scheduler(scheduler_name, params)
    return System(workload, scheduler, config, seed=seed).run()


def score_run(
    result: RunResult,
    workload: Workload,
    config: Optional[SimConfig] = None,
    seed: int = 0,
) -> SchedulerScore:
    """Score a shared run against memoised alone runs."""
    config = config or SimConfig()
    alones = alone_ipcs(workload, config, seed)
    shared = result.ipcs
    return SchedulerScore(
        scheduler=result.scheduler,
        workload=workload.name,
        weighted_speedup=weighted_speedup(alones, shared),
        maximum_slowdown=maximum_slowdown(alones, shared),
        harmonic_speedup=harmonic_speedup(alones, shared),
        result=result,
    )


def evaluate_workload(
    workload: Workload,
    scheduler_names: Sequence[str] = ("frfcfs", "stfm", "parbs", "atlas", "tcm"),
    config: Optional[SimConfig] = None,
    params: Optional[Dict[str, object]] = None,
    seed: int = 0,
) -> Dict[str, SchedulerScore]:
    """Run one workload under several schedulers and score each."""
    config = config or SimConfig()
    params = params or {}
    scores = {}
    for name in scheduler_names:
        result = run_shared(workload, name, config, params.get(name), seed)
        scores[name] = score_run(result, workload, config, seed)
    return scores
