"""Plain-text rendering of experiment results.

The benchmark harness regenerates the paper's tables and figures as
aligned ASCII tables and series listings; these helpers keep the
formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render_cell(value: Cell, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Floats are rounded to ``precision`` decimals; column widths adapt
    to content.
    """
    str_rows: List[List[str]] = [
        [_render_cell(c, precision) for c in row] for row in rows
    ]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_scatter(
    points: Sequence[tuple],
    title: str = "",
    x_label: str = "weighted speedup",
    y_label: str = "maximum slowdown",
) -> str:
    """Render labelled (x, y) points as a list (the paper's scatter)."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'label':12s}  {x_label:>18s}  {y_label:>18s}")
    for label, x, y in points:
        lines.append(f"{label:12s}  {x:18.3f}  {y:18.3f}")
    return "\n".join(lines)


def plot_scatter(
    points: Sequence[tuple],
    title: str = "",
    width: int = 56,
    height: int = 16,
    x_label: str = "weighted speedup ->",
    y_label: str = "max slowdown",
) -> str:
    """Draw labelled (x, y) points on an ASCII grid.

    Mirrors the paper's performance/fairness scatter plots (Figures 1,
    4 and 6): x grows rightward (better throughput), y grows upward
    (worse fairness) — the ideal point is the lower right corner.  Each
    point is marked with the first letter of its label; a legend maps
    letters back to labels.
    """
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4")
    lines: List[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no points)")
        return "\n".join(lines)

    xs = [p[1] for p in points]
    ys = [p[2] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    # pad 5% so extreme points are not on the border
    x_lo, x_hi = x_lo - 0.05 * x_span, x_hi + 0.05 * x_span
    y_lo, y_hi = y_lo - 0.05 * y_span, y_hi + 0.05 * y_span
    x_span, y_span = x_hi - x_lo, y_hi - y_lo

    grid = [[" "] * width for _ in range(height)]
    markers = []
    for label, x, y in points:
        marker = label[0].upper()
        markers.append((marker, label))
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        row = height - 1 - row  # y grows upward
        grid[row][col] = marker

    lines.append(f"{y_label} (up = less fair)")
    for i, row in enumerate(grid):
        y_here = y_hi - (i + 0.5) / height * y_span
        lines.append(f"{y_here:8.2f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 9 + f"{x_lo:<10.2f}{x_label:^{max(0, width - 20)}}{x_hi:>10.2f}")
    seen = []
    for marker, label in markers:
        entry = f"{marker}={label}"
        if entry not in seen:
            seen.append(entry)
    lines.append("legend: " + "  ".join(seen))
    return "\n".join(lines)
