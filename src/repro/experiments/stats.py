"""Small statistics helpers for suite-level results.

The paper reports suite means; at reduced workload counts the
reproduction also wants dispersion, so sweeps and reports can attach
a normal-approximation confidence interval to every mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: two-sided 95% normal quantile
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Mean, sample standard deviation and a 95% CI half-width."""

    n: int
    mean: float
    stddev: float
    ci95: float

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def overlaps(self, other: "Summary") -> bool:
        """True if the two 95% intervals overlap (difference not
        resolvable at this sample size)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.2f} +/- {self.ci95:.2f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a sample of suite metrics."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(n=1, mean=mean, stddev=0.0, ci95=0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(var)
    ci95 = _Z95 * stddev / math.sqrt(n)
    return Summary(n=n, mean=mean, stddev=stddev, ci95=ci95)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (speedup ratios compose multiplicatively)."""
    if not values:
        raise ValueError("cannot average an empty sample")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
