"""Per-table experiment drivers (Tables 1, 2, 4 and 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.campaign.engine import run_points
from repro.campaign.plan import CampaignPoint
from repro.config import SimConfig, TCMParams
from repro.core.hardware_cost import StorageCost, storage_cost
from repro.schedulers import make_scheduler
from repro.sim import System
from repro.workloads.microbench import RANDOM_ACCESS, STREAMING
from repro.workloads.mixes import make_workload_suite, workload_from_specs
from repro.workloads.spec import BENCHMARKS, BenchmarkSpec


@dataclass(frozen=True)
class CharacteristicsRow:
    """Target vs measured (MPKI, RBL, BLP) for one benchmark alone."""

    benchmark: str
    target_mpki: float
    measured_mpki: float
    target_rbl: float
    measured_rbl: float
    target_blp: float
    measured_blp: float
    alone_ipc: float


def _measure_alone(
    spec: BenchmarkSpec, config: SimConfig, seed: int
) -> CharacteristicsRow:
    workload = workload_from_specs(f"alone-{spec.name}", (spec,))
    result = System(workload, make_scheduler("frfcfs"), config, seed=seed).run()
    thread = result.threads[0]
    return CharacteristicsRow(
        benchmark=spec.name,
        target_mpki=spec.mpki,
        measured_mpki=thread.mpki,
        target_rbl=spec.rbl,
        measured_rbl=thread.rbl,
        target_blp=spec.blp,
        measured_blp=thread.blp,
        alone_ipc=thread.ipc,
    )


def table1(config: Optional[SimConfig] = None, seed: int = 0) -> List[CharacteristicsRow]:
    """Table 1: the random-access and streaming microbenchmarks alone."""
    config = config or SimConfig()
    return [
        _measure_alone(RANDOM_ACCESS, config, seed),
        _measure_alone(STREAMING, config, seed),
    ]


def table2(num_threads: int = 24, num_banks: int = 4) -> StorageCost:
    """Table 2: per-controller monitoring storage cost in bits."""
    return storage_cost(num_threads=num_threads, num_banks=num_banks)


def table4(
    config: Optional[SimConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[CharacteristicsRow]:
    """Table 4: measured characteristics of every benchmark alone.

    The measured MPKI/RBL/BLP should converge to the paper's values,
    which are the targets of the synthetic trace generators.
    """
    config = config or SimConfig()
    names = benchmarks if benchmarks is not None else sorted(
        BENCHMARKS, key=lambda n: -BENCHMARKS[n].mpki
    )
    return [_measure_alone(BENCHMARKS[name], config, seed) for name in names]


# ----------------------------------------------------------------------
# Table 6: shuffling algorithm comparison
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShufflingRow:
    """Maximum-slowdown statistics of one shuffling algorithm."""

    algorithm: str
    ms_average: float
    ms_variance: float


#: The four shuffling algorithms of Table 6 ('dynamic' is the full TCM
#: policy that switches between insertion and random).
SHUFFLE_ALGORITHMS = ("round_robin", "random", "insertion", "dynamic")


def table6(
    per_category: int = 8,
    config: Optional[SimConfig] = None,
    algorithms: Sequence[str] = SHUFFLE_ALGORITHMS,
    base_seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> List[ShufflingRow]:
    """Table 6: MS average and variance per shuffling algorithm.

    Evaluated across 50%-intensity workloads (the paper uses 32).
    """
    config = config or SimConfig()
    suite = make_workload_suite(
        (0.5,), per_category, num_threads=config.num_threads,
        base_seed=base_seed,
    )
    results = run_points(
        [
            CampaignPoint(
                workload=workload, scheduler="tcm", config=config,
                seed=base_seed + i,
                params=TCMParams(shuffle_mode=algorithm),
                tag=f"shuffle={algorithm}",
            )
            for algorithm in algorithms
            for i, workload in enumerate(suite)
        ],
        workers=workers, store=store, name="table6",
    )
    it = iter(results)
    rows = []
    for algorithm in algorithms:
        slowdowns = [next(it).maximum_slowdown for _ in suite]
        rows.append(
            ShufflingRow(
                algorithm=algorithm,
                ms_average=float(np.mean(slowdowns)),
                ms_variance=float(np.var(slowdowns, ddof=1)) if len(slowdowns) > 1 else 0.0,
            )
        )
    return rows
