"""Per-figure experiment drivers.

Each ``figureN`` function regenerates the data behind the paper's
figure N, at a configurable scale (number of workloads per intensity
category, run length).  Figures 1 and 4 share the scatter machinery;
Figure 3 is purely algorithmic (shuffle permutation patterns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.engine import run_points
from repro.campaign.plan import CampaignPoint
from repro.config import SimConfig, TCMParams
from repro.core.shuffle import InsertionShuffler, RoundRobinShuffler
from repro.experiments.runner import SchedulerScore, alone_ipcs
from repro.metrics import maximum_slowdown, weighted_speedup
from repro.schedulers.static import StaticPriorityScheduler
from repro.sim import System
from repro.workloads.microbench import RANDOM_ACCESS, STREAMING
from repro.workloads.mixes import (
    TABLE5_WORKLOADS,
    Workload,
    make_workload_suite,
    workload_from_specs,
)

#: Schedulers in the paper's motivation figure (Figure 1).
BASELINES = ("frfcfs", "stfm", "parbs", "atlas")
#: Schedulers in the paper's main result figure (Figure 4).
ALL_SCHEDULERS = BASELINES + ("tcm",)


@dataclass(frozen=True)
class ScatterPoint:
    """One scheduler's position in performance/fairness space."""

    scheduler: str
    weighted_speedup: float
    maximum_slowdown: float
    harmonic_speedup: float


def scheduler_scatter(
    scheduler_names: Sequence[str],
    per_category: int = 4,
    intensities: Sequence[float] = (0.5, 0.75, 1.0),
    config: Optional[SimConfig] = None,
    params: Optional[Dict[str, object]] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> List[ScatterPoint]:
    """Average WS/MS/HS of each scheduler over a workload suite.

    The paper's full suite is 32 workloads per category over the 50%,
    75% and 100% intensity categories (96 total); ``per_category``
    scales that down for quick runs.

    All (workload, scheduler) points go through the campaign engine:
    ``workers`` shards them across processes and ``store`` (a
    :class:`repro.campaign.CampaignStore` or path) makes the run
    resumable and cached; both default to the serial in-process path.
    """
    config = config or SimConfig()
    params = params or {}
    suite = make_workload_suite(
        intensities, per_category, num_threads=config.num_threads,
        base_seed=base_seed,
    )
    points = [
        CampaignPoint(
            workload=workload, scheduler=name, config=config,
            seed=base_seed + i, params=params.get(name),
        )
        for i, workload in enumerate(suite)
        for name in scheduler_names
    ]
    results = run_points(points, workers=workers, store=store,
                         name="scatter")
    sums = {name: [0.0, 0.0, 0.0] for name in scheduler_names}
    for result in results:
        s = sums[result.point.scheduler]
        s[0] += result.weighted_speedup
        s[1] += result.maximum_slowdown
        s[2] += result.harmonic_speedup
    n = len(suite)
    return [
        ScatterPoint(name, s[0] / n, s[1] / n, s[2] / n)
        for name, s in sums.items()
    ]


def figure1(
    per_category: int = 4,
    config: Optional[SimConfig] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> List[ScatterPoint]:
    """Figure 1: fairness/throughput of the four prior schedulers."""
    return scheduler_scatter(BASELINES, per_category, config=config,
                             base_seed=base_seed, workers=workers,
                             store=store)


def figure4(
    per_category: int = 4,
    config: Optional[SimConfig] = None,
    params: Optional[Dict[str, object]] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> List[ScatterPoint]:
    """Figure 4: the main result — TCM vs all four baselines."""
    return scheduler_scatter(ALL_SCHEDULERS, per_category, config=config,
                             params=params, base_seed=base_seed,
                             workers=workers, store=store)


# ----------------------------------------------------------------------
# Figure 2: susceptibility of the two microbenchmarks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Figure2Result:
    """Slowdowns under the two static prioritisation choices."""

    prioritize_random: Tuple[float, float]   # (random-access, streaming)
    prioritize_streaming: Tuple[float, float]

    @property
    def deprioritized_random_slowdown(self) -> float:
        return self.prioritize_streaming[0]

    @property
    def deprioritized_streaming_slowdown(self) -> float:
        return self.prioritize_random[1]


def figure2(config: Optional[SimConfig] = None, seed: int = 0) -> Figure2Result:
    """Figure 2: strict prioritisation between the Table 1 threads.

    Runs the random-access and streaming microbenchmarks together
    twice — once with each strictly prioritised — and reports both
    threads' slowdowns for each policy.  The paper's point: the
    deprioritised random-access thread slows down far more (>11x) than
    the deprioritised streaming thread.
    """
    config = config or SimConfig()
    workload = workload_from_specs("microbench", (RANDOM_ACCESS, STREAMING))
    alones = alone_ipcs(workload, config, seed)

    def run_with_order(order: Tuple[int, int]) -> Tuple[float, float]:
        system = System(
            workload, StaticPriorityScheduler(order), config, seed=seed
        )
        result = system.run()
        return tuple(
            alone / shared if shared > 0 else float("inf")
            for alone, shared in zip(alones, result.ipcs)
        )

    return Figure2Result(
        prioritize_random=run_with_order((0, 1)),
        prioritize_streaming=run_with_order((1, 0)),
    )


# ----------------------------------------------------------------------
# Figure 3: shuffle permutation patterns
# ----------------------------------------------------------------------


def figure3(num_threads: int = 4, steps: Optional[int] = None) -> Dict[str, List[List[int]]]:
    """Figure 3: successive priority permutations of both shuffles.

    Threads are labelled 0..N-1 in increasing niceness; each entry of a
    sequence is the priority array after one interval (last position =
    highest priority).
    """
    if steps is None:
        steps = 2 * num_threads
    thread_ids = list(range(num_threads))
    niceness = {tid: tid for tid in thread_ids}
    rr = RoundRobinShuffler(thread_ids)
    ins = InsertionShuffler(thread_ids, niceness)
    sequences = {"round_robin": [rr.order()], "insertion": [ins.order()]}
    for _ in range(steps):
        rr.advance()
        ins.advance()
        sequences["round_robin"].append(rr.order())
        sequences["insertion"].append(ins.order())
    return sequences


# ----------------------------------------------------------------------
# Figure 5: individual workloads A-D
# ----------------------------------------------------------------------


def figure5(
    config: Optional[SimConfig] = None,
    scheduler_names: Sequence[str] = ALL_SCHEDULERS,
    avg_workloads: int = 4,
    base_seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> Dict[str, Dict[str, SchedulerScore]]:
    """Figure 5: WS and MS for the Table 5 workloads plus an average.

    Returns {workload_name: {scheduler: score}}; the ``AVG`` entry
    averages ``avg_workloads`` random 50%-intensity mixes (the paper
    uses 32).  The per-workload scores carry ``result=None`` (raw
    :class:`RunResult` objects stay inside the campaign engine).
    """
    config = config or SimConfig()
    table5 = list(TABLE5_WORKLOADS.items())
    results = run_points(
        [
            CampaignPoint(workload=w, scheduler=s, config=config,
                          seed=base_seed, tag=f"fig5-{name}")
            for name, w in table5
            for s in scheduler_names
        ],
        workers=workers, store=store, name="fig5",
    )
    out: Dict[str, Dict[str, SchedulerScore]] = {}
    it = iter(results)
    for name, workload in table5:
        out[name] = {
            s: SchedulerScore(
                scheduler=s,
                workload=workload.name,
                weighted_speedup=r.weighted_speedup,
                maximum_slowdown=r.maximum_slowdown,
                harmonic_speedup=r.harmonic_speedup,
                result=None,
            )
            for s, r in zip(scheduler_names, it)
        }
    if avg_workloads > 0:
        points = scheduler_scatter(
            scheduler_names, avg_workloads, (0.5,), config,
            base_seed=base_seed, workers=workers, store=store,
        )
        out["AVG"] = {
            p.scheduler: SchedulerScore(
                scheduler=p.scheduler,
                workload="AVG",
                weighted_speedup=p.weighted_speedup,
                maximum_slowdown=p.maximum_slowdown,
                harmonic_speedup=p.harmonic_speedup,
                result=None,
            )
            for p in points
        }
    return out


# ----------------------------------------------------------------------
# Figure 7: effect of workload memory intensity
# ----------------------------------------------------------------------


def figure7(
    per_category: int = 4,
    intensities: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    config: Optional[SimConfig] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> Dict[float, List[ScatterPoint]]:
    """Figure 7: WS and MS per scheduler at each intensity category."""
    return {
        intensity: scheduler_scatter(
            ALL_SCHEDULERS, per_category, (intensity,), config,
            base_seed=base_seed, workers=workers, store=store,
        )
        for intensity in intensities
    }


# ----------------------------------------------------------------------
# Figure 8: OS thread weights
# ----------------------------------------------------------------------

#: The paper's weighted mix: weights assigned in the worst possible
#: manner for throughput (heavier threads get larger weights).
FIGURE8_BENCHMARKS: Tuple[Tuple[str, int], ...] = (
    ("gcc", 1),
    ("wrf", 2),
    ("GemsFDTD", 4),
    ("lbm", 8),
    ("libquantum", 16),
    ("mcf", 32),
)


def figure8_workload(instances: int = 4) -> Workload:
    """The Figure 8 weighted workload (instances x 6 benchmarks)."""
    names: List[str] = []
    weights: List[int] = []
    for name, weight in FIGURE8_BENCHMARKS:
        names.extend([name] * instances)
        weights.extend([weight] * instances)
    return Workload(
        name="fig8-weighted",
        benchmark_names=tuple(names),
        weights=tuple(weights),
    )


@dataclass(frozen=True)
class Figure8Result:
    """Per-benchmark speedups under ATLAS and TCM with OS weights."""

    speedups: Dict[str, Dict[str, float]]   # scheduler -> benchmark -> speedup
    weighted_speedup: Dict[str, float]
    maximum_slowdown: Dict[str, float]


def figure8(
    config: Optional[SimConfig] = None,
    instances: int = 4,
    seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> Figure8Result:
    """Figure 8: enforcing thread weights without destroying the rest.

    ATLAS blindly honours weights (scaling attained service), crushing
    the light threads; TCM honours them within clusters, keeping the
    latency-sensitive threads fast.
    """
    config = config or SimConfig()
    workload = figure8_workload(instances)
    schedulers = ("atlas", "tcm")
    results = run_points(
        [
            CampaignPoint(workload=workload, scheduler=s, config=config,
                          seed=seed, tag="fig8")
            for s in schedulers
        ],
        workers=workers, store=store, name="fig8",
    )
    speedups: Dict[str, Dict[str, float]] = {}
    for sched, result in zip(schedulers, results):
        per_bench: Dict[str, List[float]] = {}
        for thread in result.threads:
            per_bench.setdefault(thread["benchmark"], []).append(
                thread["ipc"] / thread["alone_ipc"]
            )
        speedups[sched] = {
            bench: sum(vals) / len(vals) for bench, vals in per_bench.items()
        }
    return Figure8Result(
        speedups=speedups,
        weighted_speedup={
            s: r.weighted_speedup for s, r in zip(schedulers, results)
        },
        maximum_slowdown={
            s: r.maximum_slowdown for s, r in zip(schedulers, results)
        },
    )
