"""Experiment harness: per-figure/table drivers, sweeps, reporting."""

from repro.experiments.figures import (
    ALL_SCHEDULERS,
    BASELINES,
    ScatterPoint,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure7,
    figure8,
    figure8_workload,
    scheduler_scatter,
)
from repro.experiments.leakage import LeakageResult, measure_leakage
from repro.experiments.presets import (
    default_config,
    paper_scale_config,
    quick_config,
)
from repro.experiments.reporting import format_scatter, format_table, plot_scatter
from repro.experiments.stats import Summary, geometric_mean, summarize
from repro.experiments.runner import (
    SchedulerScore,
    alone_ipc,
    alone_ipcs,
    clear_alone_cache,
    evaluate_workload,
    run_shared,
    score_run,
)
from repro.experiments.sweeps import (
    ConfigComparison,
    SweepPoint,
    figure6,
    scale_mpki,
    table7,
    table8,
)
from repro.experiments.tables import (
    CharacteristicsRow,
    ShufflingRow,
    table1,
    table2,
    table4,
    table6,
)

__all__ = [
    "ALL_SCHEDULERS",
    "BASELINES",
    "CharacteristicsRow",
    "ConfigComparison",
    "LeakageResult",
    "ScatterPoint",
    "SchedulerScore",
    "ShufflingRow",
    "Summary",
    "SweepPoint",
    "default_config",
    "geometric_mean",
    "measure_leakage",
    "paper_scale_config",
    "plot_scatter",
    "quick_config",
    "summarize",
    "alone_ipc",
    "alone_ipcs",
    "clear_alone_cache",
    "evaluate_workload",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure8_workload",
    "format_scatter",
    "format_table",
    "run_shared",
    "scale_mpki",
    "scheduler_scatter",
    "score_run",
    "table1",
    "table2",
    "table4",
    "table6",
    "table7",
    "table8",
]
