"""Memory service "leakage" measurement (paper §3.3).

The paper observes that with strict thread ranking, service *leaks*
below the top priority level: a bank serves the highest-ranked thread
with a request **at that bank**, so lower-ranked threads still receive
service wherever higher-ranked ones are absent — "we often encountered
cases where memory service was leaked all the way to the fifth or
sixth highest priority thread in a 24-thread system."

This experiment wraps TCM with an instrument that, at every scheduling
decision, records the *rank position* (1 = highest current rank) of the
thread being serviced, yielding the service-by-rank histogram behind
that observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import SimConfig, TCMParams
from repro.core.tcm import TCMScheduler
from repro.dram.request import MemoryRequest
from repro.sim import System
from repro.workloads.mixes import Workload, make_intensity_workload


class InstrumentedTCM(TCMScheduler):
    """TCM that histograms service by current rank position."""

    name = "TCM-instrumented"

    def __init__(self, params: Optional[TCMParams] = None):
        super().__init__(params)
        #: service cycles received at each rank position (1 = top)
        self.service_by_position: Dict[int, int] = {}

    def _position_of(self, thread_id: int, channel_id: int) -> int:
        """1-based position of the thread in the current rank order."""
        ranks = self._ranks[channel_id] if self._ranks else {}
        if not ranks:
            return 1
        ordered = sorted(ranks, key=lambda t: -ranks[t])
        try:
            return ordered.index(thread_id) + 1
        except ValueError:
            return len(ordered)

    def on_request_scheduled(
        self,
        request: MemoryRequest,
        waiting: List[MemoryRequest],
        busy_cycles: int,
        now: int,
    ) -> None:
        super().on_request_scheduled(request, waiting, busy_cycles, now)
        position = self._position_of(request.thread_id, request.channel_id)
        self.service_by_position[position] = (
            self.service_by_position.get(position, 0) + busy_cycles
        )


@dataclass(frozen=True)
class LeakageResult:
    """Service share by rank position."""

    shares: Tuple[float, ...]   # index 0 = top position

    @property
    def top_share(self) -> float:
        return self.shares[0] if self.shares else 0.0

    def depth(self, threshold: float = 0.01) -> int:
        """Deepest position receiving at least ``threshold`` of service."""
        deepest = 0
        for position, share in enumerate(self.shares, start=1):
            if share >= threshold:
                deepest = position
        return deepest


def measure_leakage(
    workload: Optional[Workload] = None,
    config: Optional[SimConfig] = None,
    params: Optional[TCMParams] = None,
    seed: int = 0,
) -> LeakageResult:
    """Run TCM instrumented and return service shares by rank position."""
    config = config or SimConfig()
    workload = workload or make_intensity_workload(
        1.0, num_threads=config.num_threads, seed=seed
    )
    scheduler = InstrumentedTCM(params or TCMParams())
    System(workload, scheduler, config, seed=seed).run()
    n = workload.num_threads
    totals = [
        scheduler.service_by_position.get(pos, 0) for pos in range(1, n + 1)
    ]
    grand = sum(totals) or 1
    return LeakageResult(shares=tuple(t / grand for t in totals))
