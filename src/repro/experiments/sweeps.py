"""Parameter and configuration sweeps (Figure 6, Tables 7 and 8)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.engine import run_points
from repro.campaign.plan import CampaignPoint
from repro.config import (
    ATLASParams,
    PARBSParams,
    STFMParams,
    SimConfig,
    TCMParams,
)
from repro.workloads.mixes import Workload, make_workload_suite
from repro.workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class SweepPoint:
    """One (scheduler, parameter value) operating point, suite-averaged."""

    scheduler: str
    parameter: str
    value: object
    weighted_speedup: float
    maximum_slowdown: float
    harmonic_speedup: float


def _suite(per_category: int, config: SimConfig, base_seed: int,
           intensities: Sequence[float] = (0.5,)) -> List[Workload]:
    return make_workload_suite(
        intensities, per_category, num_threads=config.num_threads,
        base_seed=base_seed,
    )


def _average_point(
    scheduler: str,
    parameter: str,
    value: object,
    params: Optional[object],
    suite: Sequence[Workload],
    config: SimConfig,
    base_seed: int,
    workers: Optional[int] = None,
    store=None,
) -> SweepPoint:
    results = run_points(
        [
            CampaignPoint(
                workload=workload, scheduler=scheduler, config=config,
                seed=base_seed + i, params=params,
                tag=f"{parameter}={value}",
            )
            for i, workload in enumerate(suite)
        ],
        workers=workers, store=store, name=f"sweep-{scheduler}",
    )
    ws = ms = hs = 0.0
    for result in results:
        ws += result.weighted_speedup
        ms += result.maximum_slowdown
        hs += result.harmonic_speedup
    n = len(suite)
    return SweepPoint(scheduler, parameter, value, ws / n, ms / n, hs / n)


# ----------------------------------------------------------------------
# Figure 6: the performance/fairness trade-off continuum
# ----------------------------------------------------------------------

#: Default parameter ranges swept in Figure 6 (paper §7.1): TCM's
#: ClusterThresh from 2/24 to 6/24; conservative-to-aggressive ranges
#: for each baseline's salient parameter.
FIGURE6_RANGES: Dict[str, Tuple[str, Tuple]] = {
    "tcm": ("cluster_thresh", (2 / 24, 3 / 24, 4 / 24, 5 / 24, 6 / 24)),
    "atlas": ("quantum_cycles", (25_000, 50_000, 100_000, 200_000, 400_000)),
    "parbs": ("batch_cap", (1, 3, 5, 8, 10)),
    "stfm": ("fairness_threshold", (1.0, 1.1, 1.5, 2.0, 5.0)),
    "frfcfs": ("none", (None,)),
}

_PARAM_FACTORY = {
    "tcm": lambda value: TCMParams(cluster_thresh=value),
    "atlas": lambda value: ATLASParams(quantum_cycles=value),
    "parbs": lambda value: PARBSParams(batch_cap=value),
    "stfm": lambda value: STFMParams(fairness_threshold=value),
    "frfcfs": lambda value: None,
}


def figure6(
    per_category: int = 4,
    config: Optional[SimConfig] = None,
    schedulers: Sequence[str] = ("tcm", "atlas", "parbs", "stfm", "frfcfs"),
    base_seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> Dict[str, List[SweepPoint]]:
    """Figure 6: sweep each scheduler's salient parameter.

    TCM should trace a smooth WS/MS trade-off curve; the baselines
    should barely move along their non-favoured axis.
    """
    config = config or SimConfig()
    suite = _suite(per_category, config, base_seed)
    curves: Dict[str, List[SweepPoint]] = {}
    for name in schedulers:
        parameter, values = FIGURE6_RANGES[name]
        factory = _PARAM_FACTORY[name]
        curves[name] = [
            _average_point(
                name, parameter, value, factory(value), suite, config,
                base_seed, workers=workers, store=store,
            )
            for value in values
        ]
    return curves


# ----------------------------------------------------------------------
# Table 7: TCM sensitivity to its algorithmic parameters
# ----------------------------------------------------------------------


def table7(
    per_category: int = 4,
    config: Optional[SimConfig] = None,
    algo_thresholds: Sequence[float] = (0.05, 0.07, 0.10),
    shuffle_intervals: Sequence[int] = (500, 600, 700, 800),
    base_seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> List[SweepPoint]:
    """Table 7: vary ShuffleAlgoThresh and ShuffleInterval."""
    config = config or SimConfig()
    suite = _suite(per_category, config, base_seed)
    points = [
        _average_point(
            "tcm", "shuffle_algo_thresh", value,
            TCMParams(shuffle_algo_thresh=value), suite, config, base_seed,
            workers=workers, store=store,
        )
        for value in algo_thresholds
    ]
    points += [
        _average_point(
            "tcm", "shuffle_interval", value,
            TCMParams(shuffle_interval=value), suite, config, base_seed,
            workers=workers, store=store,
        )
        for value in shuffle_intervals
    ]
    return points


# ----------------------------------------------------------------------
# Table 8: sensitivity to system configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConfigComparison:
    """TCM-vs-ATLAS deltas under one system configuration."""

    dimension: str
    value: object
    tcm_ws: float
    atlas_ws: float
    tcm_ms: float
    atlas_ms: float

    @property
    def ws_delta(self) -> float:
        """Relative WS change of TCM vs ATLAS (positive = TCM better)."""
        return (self.tcm_ws - self.atlas_ws) / self.atlas_ws

    @property
    def ms_delta(self) -> float:
        """Relative MS change of TCM vs ATLAS (negative = TCM fairer)."""
        return (self.tcm_ms - self.atlas_ms) / self.atlas_ms


def scale_mpki(workload: Workload, factor: float) -> Workload:
    """Model a different cache size by scaling every benchmark's MPKI.

    A larger last-level cache absorbs more misses; the paper's 1MB and
    2MB configurations are modelled as uniform MPKI reductions.
    """
    specs = tuple(
        BenchmarkSpec(
            name=s.name, mpki=max(0.005, s.mpki * factor), rbl=s.rbl, blp=s.blp
        )
        for s in workload.specs
    )
    return Workload(
        name=f"{workload.name}-mpki{factor}",
        benchmark_names=workload.benchmark_names,
        weights=workload.weights,
        custom_specs=specs,
    )


#: Cache sizes of Table 8, as MPKI scaling factors relative to the
#: 512KB-per-core baseline.
CACHE_MPKI_FACTORS: Dict[str, float] = {"512KB": 1.0, "1MB": 0.7, "2MB": 0.5}


def table8(
    per_category: int = 2,
    config: Optional[SimConfig] = None,
    controllers: Sequence[int] = (1, 2, 4, 8),
    cores: Sequence[int] = (4, 8, 16, 24, 32),
    caches: Sequence[str] = ("512KB", "1MB", "2MB"),
    base_seed: int = 0,
    workers: Optional[int] = None,
    store=None,
) -> List[ConfigComparison]:
    """Table 8: TCM vs ATLAS across system configurations."""
    base = config or SimConfig()
    comparisons: List[ConfigComparison] = []

    def compare(dimension: str, value: object, cfg: SimConfig,
                transform=None) -> ConfigComparison:
        suite = _suite(per_category, cfg, base_seed)
        if transform is not None:
            suite = [transform(w) for w in suite]
        results = run_points(
            [
                CampaignPoint(
                    workload=workload, scheduler=sched, config=cfg,
                    seed=base_seed + i, tag=f"{dimension}={value}",
                )
                for i, workload in enumerate(suite)
                for sched in ("tcm", "atlas")
            ],
            workers=workers, store=store, name="table8",
        )
        ws = {"tcm": 0.0, "atlas": 0.0}
        ms = {"tcm": 0.0, "atlas": 0.0}
        for result in results:
            sched = result.point.scheduler
            ws[sched] += result.weighted_speedup
            ms[sched] += result.maximum_slowdown
        n = len(suite)
        return ConfigComparison(
            dimension, value,
            tcm_ws=ws["tcm"] / n, atlas_ws=ws["atlas"] / n,
            tcm_ms=ms["tcm"] / n, atlas_ms=ms["atlas"] / n,
        )

    for nch in controllers:
        cfg = base.with_(num_channels=nch)
        comparisons.append(compare("controllers", nch, cfg))
    for ncores in cores:
        cfg = base.with_(num_threads=ncores)
        comparisons.append(compare("cores", ncores, cfg))
    for cache in caches:
        factor = CACHE_MPKI_FACTORS[cache]
        comparisons.append(
            compare(
                "cache", cache, base,
                transform=lambda w, f=factor: scale_mpki(w, f),
            )
        )
    return comparisons
