"""DRAM channel: one memory controller's banks, queues, and data bus."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import SimConfig
from repro.dram.bank import Bank, BankAccess
from repro.dram.request import MemoryRequest


class Channel:
    """A memory controller with per-bank request queues.

    The controller owns ``banks_per_channel`` banks, each with its own
    request queue (the paper's 128-entry request buffer is shared; a
    per-bank view is equivalent for scheduling purposes and faster to
    search).  Bursts from different banks are serialised on the
    channel's shared data bus.

    Scheduling policy is externalised: the system asks the active
    scheduler to pick a request whenever a bank is free and its queue is
    non-empty (see :mod:`repro.sim.system`).
    """

    def __init__(self, channel_id: int, config: SimConfig):
        self.channel_id = channel_id
        self.config = config
        self.banks: List[Bank] = [
            Bank(channel_id, b, config.timings)
            for b in range(config.banks_per_channel)
        ]
        self.queues: List[List[MemoryRequest]] = [
            [] for _ in range(config.banks_per_channel)
        ]
        self.bus_free_until: int = 0
        #: thread whose burst last reserved the data bus (observability:
        #: a burst that waits for ``bus_free_until`` waits on this thread)
        self.bus_owner: Optional[int] = None
        self.serviced_requests = 0
        # write path (paper Table 3: 64-entry write data buffer; reads
        # prioritised over writes) — populated only when the system
        # models write traffic
        self.write_buffer: List[MemoryRequest] = []
        self.serviced_writes = 0
        self.dropped_writes = 0
        # detailed-timing state: recent activates (tRRD/tFAW) and the
        # next scheduled all-bank refresh (tREFI/tRFC)
        self._recent_activates: List[int] = []
        self._next_refresh = config.timings.t_refi
        self.refreshes_performed = 0

    def register_metrics(self, registry) -> None:
        """Expose controller counters (and its banks') to the registry."""
        labels = {"ch": self.channel_id}
        registry.register("dram.channel.serviced_requests",
                          lambda: self.serviced_requests, labels)
        registry.register("dram.channel.serviced_writes",
                          lambda: self.serviced_writes, labels)
        registry.register("dram.channel.dropped_writes",
                          lambda: self.dropped_writes, labels)
        registry.register("dram.channel.refreshes",
                          lambda: self.refreshes_performed, labels)
        registry.register("dram.channel.pending_requests",
                          self.pending_requests, labels)
        registry.register("dram.channel.write_buffer_occupancy",
                          lambda: len(self.write_buffer), labels)
        for bank in self.banks:
            bank.register_metrics(registry)
            registry.register(
                "dram.bank.queued",
                lambda b=bank.bank_id: len(self.queues[b]),
                {"ch": self.channel_id, "bank": bank.bank_id},
            )

    def enqueue(self, request: MemoryRequest) -> None:
        """Add a request to its bank's queue."""
        if request.channel_id != self.channel_id:
            raise ValueError(
                f"request for channel {request.channel_id} enqueued on "
                f"channel {self.channel_id}"
            )
        self.queues[request.bank_id].append(request)

    def queue_for(self, bank_id: int) -> List[MemoryRequest]:
        """The pending-request queue of one bank."""
        return self.queues[bank_id]

    def pending_requests(self) -> int:
        """Total requests waiting in this channel."""
        return sum(len(q) for q in self.queues)

    def has_request_from(self, thread_id: int, bank_id: int) -> bool:
        """True if ``thread_id`` has a pending request at ``bank_id``."""
        return any(r.thread_id == thread_id for r in self.queues[bank_id])

    def _apply_refresh(self, now: int) -> int:
        """Advance past any pending all-bank refresh windows.

        Refreshes that fully completed during idle time cost nothing;
        an access landing inside a refresh window waits for its end.
        """
        t = self.config.timings
        while self._next_refresh <= now:
            refresh_end = self._next_refresh + t.t_rfc
            self.refreshes_performed += 1
            self._next_refresh += t.t_refi
            if now < refresh_end:
                now = refresh_end
        return now

    def _activate_bound(self) -> int:
        """Earliest cycle a new activate may issue (tRRD / tFAW)."""
        t = self.config.timings
        bound = 0
        if self._recent_activates:
            bound = self._recent_activates[-1] + t.t_rrd
            if len(self._recent_activates) >= 4:
                bound = max(bound, self._recent_activates[-4] + t.t_faw)
        return bound

    def _begin_access(
        self, bank_id: int, row: int, now: int,
        thread_id: Optional[int] = None,
    ) -> BankAccess:
        """Shared read/write access path with optional detailed timing."""
        bank = self.banks[bank_id]
        if not self.config.timings.detailed:
            access = bank.begin_access(row, now, self.bus_free_until,
                                       thread_id=thread_id)
        else:
            now = self._apply_refresh(now)
            access = bank.begin_access(
                row, now, self.bus_free_until,
                activate_not_before=self._activate_bound(),
                thread_id=thread_id,
            )
            if access.activate_time is not None:
                self._recent_activates.append(access.activate_time)
                del self._recent_activates[:-4]
        if access.data_start > access.prep_done:
            # the burst waited for the bus: the wait belongs to the
            # thread whose burst was occupying it
            access.bus_blocker = self.bus_owner
        self.bus_owner = thread_id
        self.bus_free_until = access.data_end
        return access

    def start_service(
        self, request: MemoryRequest, now: int
    ) -> Tuple[BankAccess, int]:
        """Begin servicing ``request``; returns (access, completion_cycle).

        Removes the request from its queue, advances bank and bus state,
        and stamps service timing onto the request.
        """
        queue = self.queues[request.bank_id]
        queue.remove(request)
        access = self._begin_access(request.bank_id, request.row, now,
                                    request.thread_id)
        request.start_service = now
        completion = access.data_end + self.config.timings.fixed_overhead
        request.completion = completion
        self.serviced_requests += 1
        return access, completion

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def enqueue_write(self, request: MemoryRequest) -> bool:
        """Buffer a writeback; returns False if the buffer is full.

        A full buffer stalls nothing in this model (the oldest write is
        dropped and counted) — real systems would back-pressure the
        cache, which none of the studied schedulers react to.
        """
        if not request.is_write:
            raise ValueError("enqueue_write needs a write request")
        if len(self.write_buffer) >= self.config.write_buffer_size:
            self.write_buffer.pop(0)
            self.dropped_writes += 1
        self.write_buffer.append(request)
        return True

    def next_write_for(self, bank_id: int) -> Optional[MemoryRequest]:
        """Oldest buffered write addressed to ``bank_id``, if any."""
        for request in self.write_buffer:
            if request.bank_id == bank_id:
                return request
        return None

    def start_write_service(
        self, request: MemoryRequest, now: int
    ) -> BankAccess:
        """Service a buffered write; returns the access timing breakdown.

        The bank is busy until ``access.data_end`` (writes have no
        core-visible round trip, so there is no separate completion).
        """
        self.write_buffer.remove(request)
        access = self._begin_access(request.bank_id, request.row, now,
                                    request.thread_id)
        request.start_service = now
        request.completion = access.data_end
        self.serviced_writes += 1
        return access

    def idle_banks_with_work(self, now: int) -> List[int]:
        """Bank ids that are free now and have queued requests."""
        return [
            b
            for b in range(len(self.banks))
            if self.banks[b].is_idle(now) and self.queues[b]
        ]

    def row_hit_possible(self, request: MemoryRequest) -> bool:
        """Would this request be a row-buffer hit if serviced now?"""
        return self.banks[request.bank_id].classify(request.row) == "hit"
