"""DRAM bank: a row-buffer state machine."""

from __future__ import annotations

from typing import Optional

from repro.config import DramTimings


class Bank:
    """One DRAM bank with an open-row (row-buffer) policy.

    The bank tracks which row is currently latched in its row-buffer and
    until when it is busy servicing a burst.  Access classification
    follows the paper's three cases:

    * row-buffer **hit** — the addressed row is already open;
    * **closed** — no row is open (first access after reset);
    * **conflict** — a different row is open and must be precharged.
    """

    def __init__(self, channel_id: int, bank_id: int, timings: DramTimings):
        self.channel_id = channel_id
        self.bank_id = bank_id
        self.timings = timings
        self.open_row: Optional[int] = None
        #: thread that opened the currently latched row (None when no row
        #: is open); lets observability attribute a row-conflict penalty
        #: to the thread whose row had to be precharged.
        self.open_row_owner: Optional[int] = None
        self.busy_until: int = 0
        self.last_activate: int = -(10 ** 9)   # effectively "long ago"
        # statistics
        self.row_hits = 0
        self.row_conflicts = 0
        self.row_closed = 0
        self.busy_cycles = 0

    def is_idle(self, now: int) -> bool:
        """True if the bank can begin a new access at ``now``."""
        return now >= self.busy_until

    def classify(self, row: int) -> str:
        """Classify an access to ``row`` as 'hit', 'closed' or 'conflict'."""
        if self.open_row is None:
            return "closed"
        if self.open_row == row:
            return "hit"
        return "conflict"

    def occupancy_for(self, row: int) -> int:
        """Bank-busy cycles an access to ``row`` would take right now."""
        kind = self.classify(row)
        return self.timings.occupancy(
            row_hit=(kind == "hit"), row_open=(self.open_row is not None)
        )

    def begin_access(
        self,
        row: int,
        now: int,
        bus_free_until: int,
        activate_not_before: int = 0,
        thread_id: Optional[int] = None,
    ) -> "BankAccess":
        """Start servicing an access; returns the timing breakdown.

        The precharge/activate portion proceeds on the bank alone; the
        burst must additionally wait for the channel data bus.  The bank
        is busy until the burst completes.

        With detailed timings enabled, activates additionally honour
        tRAS (precharge no earlier than tRAS after the previous
        activate), tRC (same-bank activate spacing) and any
        channel-level bound passed via ``activate_not_before``
        (tRRD/tFAW/refresh).

        ``thread_id`` (optional) records provenance: a conflict access
        carries ``row_blocker`` — the thread whose open row forced the
        precharge — and the bank remembers the new row's owner.
        """
        if not self.is_idle(now):
            raise RuntimeError(
                f"bank ch{self.channel_id}/b{self.bank_id} busy until "
                f"{self.busy_until}, access attempted at {now}"
            )
        t = self.timings
        kind = self.classify(row)
        row_blocker = self.open_row_owner if kind == "conflict" else None
        activate_time = None
        if kind == "hit":
            prep_done = now
        else:
            if kind == "conflict":
                precharge_start = now
                if t.detailed:
                    precharge_start = max(
                        precharge_start, self.last_activate + t.t_ras
                    )
                ready_for_activate = precharge_start + t.t_rp
            else:
                ready_for_activate = now
            activate_time = max(ready_for_activate, activate_not_before)
            if t.detailed:
                activate_time = max(
                    activate_time, self.last_activate + t.t_rc
                )
            self.last_activate = activate_time
            prep_done = activate_time + t.t_rcd
        data_start = max(prep_done, bus_free_until)
        data_end = data_start + t.burst
        # closed-page policy auto-precharges: nothing stays latched, so
        # the next access is always a "closed" activate (never a
        # conflict, never a hit)
        self.open_row = None if t.page_policy == "closed" else row
        self.open_row_owner = None if t.page_policy == "closed" else thread_id
        self.busy_until = data_end
        self.busy_cycles += data_end - now
        if kind == "hit":
            self.row_hits += 1
        elif kind == "conflict":
            self.row_conflicts += 1
        else:
            self.row_closed += 1
        return BankAccess(
            kind=kind,
            data_start=data_start,
            data_end=data_end,
            activate_time=activate_time,
            prep_done=prep_done,
            row_blocker=row_blocker,
        )

    def reset_stats(self) -> None:
        """Clear accumulated access statistics (row state is kept)."""
        self.row_hits = 0
        self.row_conflicts = 0
        self.row_closed = 0
        self.busy_cycles = 0

    def register_metrics(self, registry) -> None:
        """Expose the bank's counters as polled telemetry providers.

        The hot path keeps its plain attribute arithmetic; the registry
        only reads these attributes when a snapshot is taken.
        """
        labels = {"ch": self.channel_id, "bank": self.bank_id}
        registry.register("dram.bank.row_hits",
                          lambda: self.row_hits, labels)
        registry.register("dram.bank.row_conflicts",
                          lambda: self.row_conflicts, labels)
        registry.register("dram.bank.row_closed",
                          lambda: self.row_closed, labels)
        registry.register("dram.bank.busy_cycles",
                          lambda: self.busy_cycles, labels)


class BankAccess:
    """Timing outcome of a single bank access.

    Beyond the timing boundaries themselves, an access carries the
    *provenance* of each wait it suffered, filled in by the bank and
    channel that produced it:

    * ``prep_done`` — cycle the row was ready (burst could start as far
      as the bank is concerned; any later ``data_start`` is bus wait);
    * ``row_blocker`` — for a conflict access, the thread whose open
      row forced the precharge (None otherwise);
    * ``bus_blocker`` — the thread whose burst delayed this one on the
      channel data bus (None when the bus imposed no wait).
    """

    __slots__ = ("kind", "data_start", "data_end", "activate_time",
                 "prep_done", "row_blocker", "bus_blocker")

    def __init__(
        self,
        kind: str,
        data_start: int,
        data_end: int,
        activate_time: Optional[int] = None,
        prep_done: Optional[int] = None,
        row_blocker: Optional[int] = None,
        bus_blocker: Optional[int] = None,
    ):
        self.kind = kind
        self.data_start = data_start
        self.data_end = data_end
        self.activate_time = activate_time
        self.prep_done = data_start if prep_done is None else prep_done
        self.row_blocker = row_blocker
        self.bus_blocker = bus_blocker

    @property
    def is_row_hit(self) -> bool:
        return self.kind == "hit"
