"""Memory request representation."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_request_ids = itertools.count()


@dataclass(slots=True)
class MemoryRequest:
    """A single read request from a thread to a DRAM bank.

    The paper's controllers prioritise reads over writes and buffer
    writes separately; following common practice in scheduler studies,
    we model the read stream (writes are off the critical path and do
    not influence any of the algorithms under study).

    Attributes:
        thread_id: issuing hardware context.
        channel_id: DRAM controller servicing this request.
        bank_id: bank within the channel.
        row: DRAM row (page) addressed.
        arrival: cycle at which the request entered the controller queue.
        episode_id: thread-local episode counter (for thread bookkeeping).
        marked: PAR-BS batch-mark flag.
        start_service: cycle at which the bank began servicing, if started.
        completion: cycle at which data was returned to the core, if done.
        interference: cycles of queueing delay attributed to other
            threads.  Maintained by the scheduler-independent span
            mechanism (:mod:`repro.obs.spans`) whenever a run carries a
            span collector — every scheduler, not just STFM, whose
            slowdown estimation consumes the same accounting.
    """

    thread_id: int
    channel_id: int
    bank_id: int
    row: int
    arrival: int
    episode_id: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    is_write: bool = False
    is_prefetch: bool = False
    marked: bool = False
    start_service: Optional[int] = None
    completion: Optional[int] = None
    interference: int = 0

    @property
    def latency(self) -> Optional[int]:
        """Round-trip latency in cycles, or None if not yet complete."""
        if self.completion is None:
            return None
        return self.completion - self.arrival

    def __repr__(self) -> str:  # compact — requests appear in debug dumps
        return (
            f"MemoryRequest(t{self.thread_id} ch{self.channel_id} "
            f"b{self.bank_id} r{self.row} @{self.arrival})"
        )
