"""DRAM subsystem substrate: requests, banks, channels, address mapping.

Models the paper's Table 3 memory system: 4 on-chip DRAM controllers
(channels), 4 banks per channel with 2KB row-buffers, DDR2-800-derived
service times, and a per-channel data bus that serialises bursts.
"""

from repro.dram.address import AddressMapper, PhysicalLocation
from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.request import MemoryRequest

__all__ = [
    "AddressMapper",
    "Bank",
    "Channel",
    "MemoryRequest",
    "PhysicalLocation",
]
