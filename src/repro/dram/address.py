"""Address mapping between flat block addresses and DRAM geometry.

The baseline system stripes consecutive cache blocks across channels
(channel interleaving), then across columns within a row, so that a
streaming thread enjoys row-buffer locality within each channel while
still using all channels.  Threads in this reproduction mostly generate
(channel, bank, row) tuples directly, but the mapper is used by the
microbenchmarks and examples that think in terms of a linear address
space, and it is property-tested for bijectivity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimConfig


@dataclass(frozen=True)
class PhysicalLocation:
    """A decoded DRAM coordinate."""

    channel: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Bijective mapping: block address <-> (channel, bank, row, column).

    Layout (low to high bits, conceptually):
    ``column | channel | bank | row`` — i.e. consecutive blocks walk the
    columns of one row with channel interleaving at block granularity.
    """

    #: 2KB row / 32B blocks = 64 blocks (columns) per row (paper Table 3).
    COLUMNS_PER_ROW = 64

    def __init__(self, config: SimConfig):
        self._num_channels = config.num_channels
        self._banks_per_channel = config.banks_per_channel
        self._num_rows = config.num_rows

    @property
    def blocks_total(self) -> int:
        """Total number of block addresses in the mapped space."""
        return (
            self.COLUMNS_PER_ROW
            * self._num_channels
            * self._banks_per_channel
            * self._num_rows
        )

    def decode(self, block_addr: int) -> PhysicalLocation:
        """Decode a flat block address into a DRAM coordinate."""
        if not 0 <= block_addr < self.blocks_total:
            raise ValueError(
                f"block address {block_addr} out of range "
                f"[0, {self.blocks_total})"
            )
        addr = block_addr
        channel = addr % self._num_channels
        addr //= self._num_channels
        column = addr % self.COLUMNS_PER_ROW
        addr //= self.COLUMNS_PER_ROW
        bank = addr % self._banks_per_channel
        addr //= self._banks_per_channel
        row = addr
        return PhysicalLocation(channel=channel, bank=bank, row=row, column=column)

    def encode(self, loc: PhysicalLocation) -> int:
        """Encode a DRAM coordinate back into a flat block address."""
        if not 0 <= loc.channel < self._num_channels:
            raise ValueError(f"channel {loc.channel} out of range")
        if not 0 <= loc.bank < self._banks_per_channel:
            raise ValueError(f"bank {loc.bank} out of range")
        if not 0 <= loc.row < self._num_rows:
            raise ValueError(f"row {loc.row} out of range")
        if not 0 <= loc.column < self.COLUMNS_PER_ROW:
            raise ValueError(f"column {loc.column} out of range")
        addr = loc.row
        addr = addr * self._banks_per_channel + loc.bank
        addr = addr * self.COLUMNS_PER_ROW + loc.column
        addr = addr * self._num_channels + loc.channel
        return addr

    def global_bank(self, channel: int, bank: int) -> int:
        """Flatten (channel, bank) into a global bank index."""
        return channel * self._banks_per_channel + bank
