"""Campaign observability: live progress, throughput, ETA, final report.

The tracker is pure bookkeeping (injectable clock, no I/O of its own)
so it is unit-testable; the engine drives it from scheduling events and
periodically emits :meth:`ProgressTracker.render` to stderr.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

#: Worker states shown in the per-worker status column.
IDLE = "idle"
BUSY = "busy"
DEAD = "dead"


def _fmt_eta(seconds: float) -> str:
    if seconds != seconds or seconds == float("inf"):  # NaN / unknown
        return "--:--"
    seconds = int(seconds)
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}" if h else f"{m}:{s:02d}"


class ProgressTracker:
    """Track a campaign's execution state and derive throughput/ETA.

    Throughput is measured over a sliding window of recent completions
    (wall-clock), so it adapts when early points are cache hits and
    later ones are slow simulations.
    """

    def __init__(
        self,
        total: int,
        name: str = "campaign",
        clock: Callable[[], float] = time.monotonic,
        window: int = 32,
    ) -> None:
        self.name = name
        self.total = total
        self.clock = clock
        self.started = clock()
        self.completed = 0
        self.cached = 0
        self.failed = 0
        self.retries = 0
        self.artifacts = 0
        self.artifact_failures = 0
        self._recent: Deque[float] = deque(maxlen=window)
        self._workers: Dict[int, Tuple[str, str]] = {}

    # -- events ---------------------------------------------------------

    def point_cached(self) -> None:
        self.cached += 1

    def point_done(self) -> None:
        self.completed += 1
        self._recent.append(self.clock())

    def point_failed(self) -> None:
        self.failed += 1
        self._recent.append(self.clock())

    def point_retried(self) -> None:
        self.retries += 1

    def artifact_done(self) -> None:
        """A shared artifact (alone run) finished.

        Artifacts stay out of the throughput window: they are much
        cheaper than points, so counting them would inflate the rate
        and make the ETA optimistic.
        """
        self.artifacts += 1

    def artifact_failed(self) -> None:
        self.artifact_failures += 1

    def worker_state(self, worker_id: int, state: str,
                     detail: str = "") -> None:
        self._workers[worker_id] = (state, detail)

    # -- derived --------------------------------------------------------

    @property
    def resolved(self) -> int:
        """Points that no longer need work (done, cached or failed)."""
        return self.completed + self.cached + self.failed

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.resolved)

    def throughput(self) -> float:
        """Recent points/second (0.0 until two completions)."""
        if len(self._recent) < 2:
            return 0.0
        span = self._recent[-1] - self._recent[0]
        if span <= 0:
            return 0.0
        return (len(self._recent) - 1) / span

    def eta_seconds(self) -> float:
        rate = self.throughput()
        if rate <= 0:
            return float("inf")
        return self.remaining / rate

    def failure_rate(self) -> float:
        """Failed fraction of executed points (cache hits excluded).

        Cached points never re-run, so counting them would understate
        how unhealthy the *executing* campaign is.
        """
        executed = self.completed + self.failed
        if executed == 0:
            return 0.0
        return self.failed / executed

    def elapsed(self) -> float:
        return self.clock() - self.started

    def snapshot(self) -> Dict:
        """A JSON-friendly view of the current state."""
        return {
            "name": self.name,
            "total": self.total,
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "retries": self.retries,
            "artifacts": self.artifacts,
            "artifact_failures": self.artifact_failures,
            "remaining": self.remaining,
            "throughput": self.throughput(),
            "failure_rate": self.failure_rate(),
            "eta_seconds": self.eta_seconds(),
            "elapsed": self.elapsed(),
            "workers": {
                wid: {"state": state, "detail": detail}
                for wid, (state, detail) in sorted(self._workers.items())
            },
        }

    def render(self) -> str:
        """One status line: counts, throughput, ETA, per-worker state."""
        parts = [
            f"[{self.name}] {self.resolved}/{self.total}",
            f"{self.completed} run",
        ]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.failed:
            parts.append(
                f"{self.failed} failed ({self.failure_rate():.0%})"
            )
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.artifacts:
            parts.append(f"{self.artifacts} alone")
        rate = self.throughput()
        parts.append(f"{rate:.2f} pts/s" if rate else "-- pts/s")
        parts.append(f"ETA {_fmt_eta(self.eta_seconds())}")
        if self._workers:
            states = " ".join(
                f"w{wid}:{state}" + (f"({detail})" if detail else "")
                for wid, (state, detail) in sorted(self._workers.items())
            )
            parts.append(states)
        return " | ".join(parts)

    def report(self) -> str:
        """Multi-line end-of-campaign summary."""
        elapsed = self.elapsed()
        executed = self.completed + self.failed
        rate = executed / elapsed if elapsed > 0 and executed else 0.0
        lines = [
            f"campaign {self.name}: {self.total} points in "
            f"{elapsed:.1f}s",
            f"  executed : {self.completed}",
            f"  cached   : {self.cached}",
            f"  failed   : {self.failed} "
            f"({self.failure_rate():.0%} of executed)",
            f"  retries  : {self.retries}",
            f"  alone    : {self.artifacts} artifacts computed",
            f"  rate     : {rate:.2f} executed pts/s",
        ]
        return "\n".join(lines)
