"""Declarative campaign plans.

A :class:`CampaignPlan` is a flat, ordered list of
:class:`CampaignPoint` work units — one (workload, scheduler, config,
params, seed) simulation each.  Plans are pure data: they serialise to
JSON (``save``/``load``) so a campaign can be described once, launched,
killed, and resumed later against the same store.

Builders cover the common shapes:

* :func:`grid_plan` — full cross product of workloads x schedulers x
  configs x seeds.
* :func:`suite_plan` — the evaluation idiom used throughout the
  figures: workload *i* runs with seed ``base_seed + i`` under every
  scheduler.
* :func:`preset_plan` — named presets (``fig4``, ``fig7``, ``table6``,
  ``smoke``...) matching the paper's evaluation campaigns, derived
  from :mod:`repro.experiments.presets` scales.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import (
    ATLASParams,
    PARBSParams,
    STFMParams,
    SimConfig,
    TCMParams,
)
from repro.campaign.hashing import canonicalize, point_key
from repro.workloads.mixes import (
    Workload,
    make_workload_suite,
    workload_from_dict,
    workload_to_dict,
)

#: Registry used to round-trip scheduler params through JSON.
PARAM_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (TCMParams, ATLASParams, PARBSParams, STFMParams)
}


def params_to_dict(params: Optional[object]) -> Optional[dict]:
    if params is None:
        return None
    name = type(params).__name__
    if name not in PARAM_TYPES:
        raise TypeError(
            f"unregistered params type {name!r}; add it to "
            "repro.campaign.plan.PARAM_TYPES"
        )
    return {"type": name, "fields": canonicalize(params)}


def params_from_dict(data: Optional[dict]) -> Optional[object]:
    if data is None:
        return None
    cls = PARAM_TYPES[data["type"]]
    fields = dict(data["fields"])
    # tuple-typed fields (e.g. TCMParams.thread_weights) decay to lists
    # in JSON; restore them.
    for key, value in fields.items():
        if isinstance(value, list):
            fields[key] = tuple(value)
    return cls(**fields)


def config_to_dict(config: SimConfig) -> dict:
    return canonicalize(config)


def config_from_dict(data: dict) -> SimConfig:
    from repro.config import DramTimings

    fields = dict(data)
    fields["timings"] = DramTimings(**fields["timings"])
    return SimConfig(**fields)


@dataclass(frozen=True)
class CampaignPoint:
    """One unit of work: a single simulation plus its scoring."""

    workload: Workload
    scheduler: str
    config: SimConfig
    seed: int = 0
    params: Optional[object] = None
    #: Free-form grouping label (e.g. the figure or sweep value this
    #: point belongs to); not part of the cache key.
    tag: str = ""

    @property
    def key(self) -> str:
        """Content-addressed store key of this point's result."""
        return point_key(
            self.workload, self.scheduler, self.config, self.seed,
            self.params,
        )

    def to_dict(self) -> dict:
        return {
            "workload": workload_to_dict(self.workload),
            "scheduler": self.scheduler,
            "config": config_to_dict(self.config),
            "seed": self.seed,
            "params": params_to_dict(self.params),
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignPoint":
        return cls(
            workload=workload_from_dict(data["workload"]),
            scheduler=data["scheduler"],
            config=config_from_dict(data["config"]),
            seed=data["seed"],
            params=params_from_dict(data.get("params")),
            tag=data.get("tag", ""),
        )


@dataclass(frozen=True)
class CampaignPlan:
    """An ordered, serialisable list of campaign points."""

    name: str
    points: Tuple[CampaignPoint, ...]
    description: str = ""

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def keys(self) -> List[str]:
        return [p.key for p in self.points]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignPlan":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            points=tuple(
                CampaignPoint.from_dict(p) for p in data["points"]
            ),
        )

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path) -> "CampaignPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def grid_plan(
    name: str,
    workloads: Sequence[Workload],
    schedulers: Sequence[str],
    configs: Optional[Sequence[SimConfig]] = None,
    seeds: Sequence[int] = (0,),
    params: Optional[Dict[str, object]] = None,
    description: str = "",
) -> CampaignPlan:
    """Full cross product: workloads x schedulers x configs x seeds."""
    configs = tuple(configs) if configs is not None else (SimConfig(),)
    params = params or {}
    points = tuple(
        CampaignPoint(
            workload=w, scheduler=s, config=c, seed=seed,
            params=params.get(s),
        )
        for c in configs
        for seed in seeds
        for w in workloads
        for s in schedulers
    )
    return CampaignPlan(name=name, points=points, description=description)


def suite_plan(
    name: str,
    suite: Sequence[Workload],
    schedulers: Sequence[str],
    config: Optional[SimConfig] = None,
    base_seed: int = 0,
    params: Optional[Dict[str, object]] = None,
    tag: str = "",
    description: str = "",
) -> CampaignPlan:
    """The figures' idiom: workload ``i`` runs with seed ``base_seed+i``."""
    config = config or SimConfig()
    params = params or {}
    points = tuple(
        CampaignPoint(
            workload=w, scheduler=s, config=config, seed=base_seed + i,
            params=params.get(s), tag=tag,
        )
        for i, w in enumerate(suite)
        for s in schedulers
    )
    return CampaignPlan(name=name, points=points, description=description)


# ----------------------------------------------------------------------
# presets
# ----------------------------------------------------------------------


def _fig4_plan(per_category: int, config: SimConfig,
               base_seed: int) -> CampaignPlan:
    from repro.experiments.figures import ALL_SCHEDULERS

    suite = make_workload_suite(
        (0.5, 0.75, 1.0), per_category, num_threads=config.num_threads,
        base_seed=base_seed,
    )
    return suite_plan(
        "fig4", suite, ALL_SCHEDULERS, config, base_seed, tag="fig4",
        description="Figure 4 main result: all schedulers over the "
                    "50/75/100% intensity suite",
    )


def _fig7_plan(per_category: int, config: SimConfig,
               base_seed: int) -> CampaignPlan:
    from repro.experiments.figures import ALL_SCHEDULERS

    points: List[CampaignPoint] = []
    for intensity in (0.25, 0.5, 0.75, 1.0):
        suite = make_workload_suite(
            (intensity,), per_category, num_threads=config.num_threads,
            base_seed=base_seed,
        )
        sub = suite_plan(
            "fig7", suite, ALL_SCHEDULERS, config, base_seed,
            tag=f"intensity={intensity}",
        )
        points.extend(sub.points)
    return CampaignPlan(
        name="fig7", points=tuple(points),
        description="Figure 7: WS/MS per scheduler per intensity category",
    )


def _table6_plan(per_category: int, config: SimConfig,
                 base_seed: int) -> CampaignPlan:
    from repro.experiments.tables import SHUFFLE_ALGORITHMS

    suite = make_workload_suite(
        (0.5,), per_category, num_threads=config.num_threads,
        base_seed=base_seed,
    )
    points = tuple(
        CampaignPoint(
            workload=w, scheduler="tcm", config=config,
            seed=base_seed + i, params=TCMParams(shuffle_mode=algorithm),
            tag=f"shuffle={algorithm}",
        )
        for algorithm in SHUFFLE_ALGORITHMS
        for i, w in enumerate(suite)
    )
    return CampaignPlan(
        name="table6", points=points,
        description="Table 6: shuffling-algorithm MS statistics",
    )


def _smoke_plan(per_category: int, config: SimConfig,
                base_seed: int) -> CampaignPlan:
    """A 4-point CI smoke campaign (2 workloads x 2 schedulers)."""
    quick = config.with_(quantum_cycles=25_000, run_cycles=75_000)
    suite = make_workload_suite(
        (0.5,), 2, num_threads=8, base_seed=base_seed,
    )
    return suite_plan(
        "smoke", suite, ("frfcfs", "tcm"), quick, base_seed, tag="smoke",
        description="4-point end-to-end smoke campaign",
    )


#: Named preset campaigns: name -> builder(per_category, config, base_seed).
PRESET_PLANS: Dict[str, Callable[[int, SimConfig, int], CampaignPlan]] = {
    "fig4": _fig4_plan,
    "fig7": _fig7_plan,
    "table6": _table6_plan,
    "smoke": _smoke_plan,
}


def preset_plan(
    name: str,
    per_category: int = 4,
    config: Optional[SimConfig] = None,
    base_seed: int = 0,
) -> CampaignPlan:
    """Build a named preset campaign at the given scale."""
    try:
        builder = PRESET_PLANS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESET_PLANS)}"
        ) from None
    return builder(per_category, config or SimConfig(), base_seed)
