"""Stable, cross-process content hashing of campaign work units.

Every artifact in the campaign store is addressed by a hash of the
inputs that fully determine it: the simulation configuration, the
workload, the scheduler (and its parameters) and the seed.  The hash
must be

* **stable across processes** — Python's builtin ``hash`` is salted
  per interpreter, so keys are built from a SHA-256 of a canonical
  JSON encoding instead;
* **field-complete** — dataclasses are fingerprinted via
  :func:`dataclasses.fields`, so adding a field to ``SimConfig`` (or a
  params dataclass) automatically changes the key and can never
  silently alias old cache entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional

from repro.config import SimConfig
from repro.workloads.mixes import Workload, workload_to_dict
from repro.workloads.spec import BenchmarkSpec

#: Hex digits kept from the SHA-256 digest; 20 hex chars = 80 bits,
#: collision-safe for any campaign size this repo will ever run.
KEY_LENGTH = 20


def canonicalize(obj):
    """Reduce ``obj`` to plain JSON-encodable data, deterministically.

    Dataclasses are expanded field-by-field (recursively), mappings are
    key-sorted by :func:`json.dumps` at encoding time, and tuples decay
    to lists.  Floats rely on ``repr`` round-tripping (shortest
    representation), which is identical across CPython processes.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Fields listed in CACHE_KEY_EXCLUDE (e.g. SimConfig.backend)
        # never influence results — the parity suite pins the backends
        # bit-identical — so they are left out of content hashes and
        # cache entries stay shared across them.
        exclude = getattr(type(obj), "CACHE_KEY_EXCLUDE", frozenset())
        return {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.name not in exclude
        }
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def stable_hash(obj) -> str:
    """Hex digest of the canonical JSON encoding of ``obj``."""
    payload = json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:KEY_LENGTH]


def config_fingerprint(config: SimConfig) -> Dict:
    """Field-complete JSON fingerprint of a configuration."""
    return canonicalize(config)


def spec_fingerprint(spec: BenchmarkSpec) -> Dict:
    """Field-complete JSON fingerprint of a benchmark spec."""
    return canonicalize(spec)


def params_fingerprint(params: Optional[object]) -> Optional[Dict]:
    """Fingerprint of a scheduler params dataclass (type + fields)."""
    if params is None:
        return None
    return {"type": type(params).__name__, "fields": canonicalize(params)}


def _alone_config(config: SimConfig) -> SimConfig:
    """Normalise a config for alone-run keying.

    An alone run simulates exactly one thread, so ``num_threads`` is
    irrelevant (``System`` sizes everything off the workload) and the
    explicit seed argument overrides ``config.seed``.  Normalising both
    lets e.g. a core-count sweep (Table 8) share one alone run per
    benchmark instead of recomputing it per core count.
    """
    return config.with_(num_threads=1, seed=0)


def alone_key(spec: BenchmarkSpec, config: SimConfig, seed: int) -> str:
    """Store key of one benchmark's alone-run IPC artifact."""
    return stable_hash(
        {
            "kind": "alone",
            "spec": spec_fingerprint(spec),
            "config": config_fingerprint(_alone_config(config)),
            "seed": seed,
        }
    )


def point_key(
    workload: Workload,
    scheduler: str,
    config: SimConfig,
    seed: int,
    params: Optional[object] = None,
) -> str:
    """Store key of one (workload, scheduler, config, params, seed) point.

    The workload is fingerprinted by its *resolved specs* — two
    workloads listing the same benchmarks (even under different mix
    names) with the same weights are the same simulation.
    """
    data = workload_to_dict(workload)
    data["custom_specs"] = [canonicalize(s) for s in workload.specs]
    data.pop("name", None)
    return stable_hash(
        {
            "kind": "point",
            "workload": data,
            "scheduler": scheduler,
            "params": params_fingerprint(params),
            "config": config_fingerprint(config),
            "seed": seed,
        }
    )
