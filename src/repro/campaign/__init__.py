"""Parallel, resumable, cached experiment-campaign engine.

The paper's evaluation is a large embarrassingly-parallel campaign
(96 workloads x 5 schedulers); this package runs such campaigns
declaratively:

* :mod:`~repro.campaign.plan` — describe the grid (workloads x
  schedulers x configs x seeds) as pure data, JSON round-trippable.
* :mod:`~repro.campaign.engine` — shard points over a managed worker
  pool with per-point timeouts, bounded retries and live progress.
* :mod:`~repro.campaign.store` — content-addressed JSONL store; a
  relaunched campaign skips everything already computed, and alone-run
  IPCs are shared artifacts across campaigns.
* :mod:`~repro.campaign.hashing` — stable, field-complete keys.

Quick use::

    from repro.campaign import execute_plan, preset_plan

    plan = preset_plan("fig4", per_category=8)
    report = execute_plan(plan, store="campaign-store", workers=4,
                          progress=True)
    print(report.summary)
"""

from repro.campaign.engine import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    CampaignError,
    CampaignInterrupted,
    CampaignReport,
    PointResult,
    execute_plan,
    run_points,
)
from repro.campaign.hashing import alone_key, point_key, stable_hash
from repro.campaign.plan import (
    PRESET_PLANS,
    CampaignPlan,
    CampaignPoint,
    grid_plan,
    preset_plan,
    suite_plan,
)
from repro.campaign.progress import ProgressTracker
from repro.campaign.store import (
    KIND_ALONE,
    KIND_FAILURE,
    KIND_POINT,
    KIND_SUMMARY,
    CampaignStore,
)

__all__ = [
    "CampaignError",
    "CampaignInterrupted",
    "CampaignPlan",
    "CampaignPoint",
    "CampaignReport",
    "CampaignStore",
    "KIND_ALONE",
    "KIND_FAILURE",
    "KIND_POINT",
    "KIND_SUMMARY",
    "PRESET_PLANS",
    "PointResult",
    "ProgressTracker",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "alone_key",
    "execute_plan",
    "grid_plan",
    "point_key",
    "preset_plan",
    "run_points",
    "stable_hash",
    "suite_plan",
]
