"""Content-addressed on-disk result store for campaigns.

Layout (one directory per store)::

    <root>/
        results.jsonl   append-only record log (source of truth)
        index.json      sidecar: {"file_size": N, "offsets": {key: off}}

Every record is one JSON line::

    {"key": "<hash>", "kind": "point"|"alone"|"failure",
     "payload": {...}, "meta": {...}}

The JSONL file is the source of truth; the sidecar index merely
accelerates reopening.  On open, if the recorded ``file_size`` matches
the actual log size the offsets are trusted; otherwise (crash mid-
write, sidecar missing, log appended by an older process) the log is
rescanned and the index rebuilt.  For one key the **last** record wins,
so a retried point can overwrite its earlier failure record.

Only one process may write a store at a time (the campaign engine);
workers never touch it — they receive cache hints in their task
payloads and return new artifacts for the engine to persist.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional

#: Record kinds understood by the tooling.
KIND_POINT = "point"
KIND_ALONE = "alone"
KIND_FAILURE = "failure"
KIND_SUMMARY = "summary"


class StoreError(RuntimeError):
    """Raised on malformed store contents."""


class CampaignStore:
    """Append-only JSONL store with an in-memory key -> offset index."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.log_path = self.root / "results.jsonl"
        self.index_path = self.root / "index.json"
        self._offsets: Dict[str, int] = {}
        self._kinds: Dict[str, str] = {}
        self._cache: Dict[str, dict] = {}
        self._appender = None
        self._load_index()

    # ------------------------------------------------------------------
    # open/close
    # ------------------------------------------------------------------

    def _load_index(self) -> None:
        size = self.log_path.stat().st_size if self.log_path.exists() else 0
        if self.index_path.exists():
            try:
                data = json.loads(self.index_path.read_text())
                if data.get("file_size") == size:
                    self._offsets = {
                        k: int(v) for k, v in data["offsets"].items()
                    }
                    self._kinds = dict(data.get("kinds", {}))
                    if self._kinds.keys() == self._offsets.keys():
                        return
            except (ValueError, KeyError, TypeError):
                pass  # stale or corrupt sidecar: fall through to rescan
        self._rescan()

    def _rescan(self) -> None:
        self._offsets.clear()
        self._kinds.clear()
        self._cache.clear()
        if not self.log_path.exists():
            return
        with self.log_path.open("rb") as f:
            offset = 0
            for line in f:
                stripped = line.strip()
                if stripped:
                    try:
                        record = json.loads(stripped)
                        key = record["key"]
                    except (ValueError, KeyError) as exc:
                        raise StoreError(
                            f"{self.log_path}: bad record at byte {offset}: "
                            f"{exc}"
                        ) from exc
                    self._offsets[key] = offset
                    self._kinds[key] = record.get("kind", KIND_POINT)
                offset += len(line)
        self.flush_index()

    def flush_index(self) -> None:
        """Write the sidecar index (atomically via rename)."""
        size = self.log_path.stat().st_size if self.log_path.exists() else 0
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(
                {
                    "file_size": size,
                    "offsets": self._offsets,
                    "kinds": self._kinds,
                }
            )
        )
        os.replace(tmp, self.index_path)

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()
            self._appender = None
        self.flush_index()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def kind(self, key: str) -> Optional[str]:
        """Kind of the latest record under ``key`` (None if absent)."""
        return self._kinds.get(key)

    def get(self, key: str) -> Optional[dict]:
        """Latest record stored under ``key`` (None if absent)."""
        if key in self._cache:
            return self._cache[key]
        offset = self._offsets.get(key)
        if offset is None:
            return None
        if self._appender is not None:
            self._appender.flush()
        with self.log_path.open("rb") as f:
            f.seek(offset)
            record = json.loads(f.readline())
        self._cache[key] = record
        return record

    def keys(self, kind: Optional[str] = None) -> Iterator[str]:
        """All stored keys, optionally restricted to one record kind."""
        for key, k in self._kinds.items():
            if kind is None or k == kind:
                yield key

    def records(self, kind: Optional[str] = None) -> Iterator[dict]:
        """All latest-version records, optionally of one kind."""
        for key in list(self.keys(kind)):
            yield self.get(key)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def put(self, key: str, kind: str, payload: dict,
            meta: Optional[dict] = None) -> None:
        """Append one record and update the in-memory index."""
        record = {"key": key, "kind": kind, "payload": payload,
                  "meta": meta or {}}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        if self._appender is None:
            self._appender = self.log_path.open("a", encoding="utf-8")
        self._appender.seek(0, os.SEEK_END)
        offset = self._appender.tell()
        self._appender.write(line)
        self._appender.flush()
        self._offsets[key] = offset
        self._kinds[key] = kind
        self._cache[key] = record

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def compact(self) -> dict:
        """Rewrite the log keeping only the latest record per key.

        Superseded records (a retried point overwriting its failure, a
        re-run summary, serve resubmissions) accumulate as dead lines in
        the append-only log; long-lived stores grow without bound.
        Compaction rewrites the log with each key's winning record, in
        original append order, via a temp file and atomic
        ``os.replace`` — a crash mid-compaction leaves the old log
        intact.  Returns a stats dict.
        """
        if not self.log_path.exists():
            return {
                "records_before": 0, "records_after": 0,
                "superseded": 0, "bytes_before": 0, "bytes_after": 0,
                "bytes_reclaimed": 0,
            }
        if self._appender is not None:
            self._appender.close()
            self._appender = None
        bytes_before = self.log_path.stat().st_size

        records_before = 0
        with self.log_path.open("rb") as f:
            for line in f:
                if line.strip():
                    records_before += 1

        new_offsets: Dict[str, int] = {}
        tmp = self.log_path.with_suffix(".jsonl.tmp")
        with self.log_path.open("rb") as src, tmp.open("wb") as out:
            for key, offset in sorted(self._offsets.items(),
                                      key=lambda kv: kv[1]):
                src.seek(offset)
                line = src.readline()
                if not line.endswith(b"\n"):
                    line += b"\n"
                new_offsets[key] = out.tell()
                out.write(line)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, self.log_path)

        self._offsets = new_offsets
        self._cache.clear()
        self.flush_index()
        bytes_after = self.log_path.stat().st_size
        return {
            "records_before": records_before,
            "records_after": len(new_offsets),
            "superseded": records_before - len(new_offsets),
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "bytes_reclaimed": bytes_before - bytes_after,
        }
