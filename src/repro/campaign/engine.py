"""The campaign execution engine.

Takes a :class:`~repro.campaign.plan.CampaignPlan`, shards its points
across a pool of worker processes, and streams results into a
:class:`~repro.campaign.store.CampaignStore`.  Properties:

* **resumable** — points whose key is already in the store (as a
  successful ``point`` record) are skipped; killing a campaign and
  relaunching it never recomputes finished work.
* **fault-tolerant** — each point gets a wall-clock timeout and a
  bounded number of retries with exponential backoff; a worker that
  hangs is killed and respawned; a point that exhausts its retries is
  recorded in the store as a ``failure`` (with traceback) and the
  campaign carries on.
* **observable** — a :class:`~repro.campaign.progress.ProgressTracker`
  exposes live throughput/ETA/per-worker state, and the returned
  :class:`CampaignReport` summarises the run.
* **deterministic** — a point's result depends only on its content
  (workload, scheduler, params, config, seed), never on which worker
  ran it or in what order; ``workers=1`` (inline, no subprocesses) and
  ``workers=N`` produce identical metrics.

Workers never touch the store: the engine passes known alone-run IPCs
to workers as cache hints and persists the artifacts workers return.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import signal
import sys
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.hashing import alone_key, canonicalize
from repro.campaign.plan import CampaignPlan, CampaignPoint
from repro.campaign.progress import (
    BUSY,
    DEAD,
    IDLE,
    ProgressTracker,
)
from repro.campaign.store import (
    KIND_ALONE,
    KIND_FAILURE,
    KIND_POINT,
    KIND_SUMMARY,
    CampaignStore,
)
from repro.telemetry.log import get_logger

_LOG = get_logger("campaign")

#: Statuses a point can end a campaign with.
STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"


class CampaignError(RuntimeError):
    """Raised by :func:`run_points` when a point fails permanently."""


class CampaignInterrupted(KeyboardInterrupt):
    """The campaign was stopped by SIGINT/SIGTERM after a clean flush.

    By the time this propagates, every finished point is in the store,
    the summary record and sidecar index are written, and the worker
    pool is shut down — relaunching the same plan resumes from the
    store instead of recomputing.  ``report`` covers the points that
    resolved before the interrupt.
    """

    def __init__(self, plan_name: str, report: "CampaignReport") -> None:
        super().__init__(
            f"campaign {plan_name} interrupted "
            f"({len(report.results)} points resolved; store flushed, "
            f"rerun to resume)"
        )
        self.plan_name = plan_name
        self.report = report


@dataclass(frozen=True)
class PointResult:
    """Final outcome of one campaign point."""

    key: str
    point: CampaignPoint
    status: str
    payload: Optional[dict] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 1
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)

    @property
    def metrics(self) -> dict:
        """{"ws": ..., "ms": ..., "hs": ...} (raises if failed)."""
        if self.payload is None:
            raise CampaignError(
                f"point {self.key} has no result ({self.error})"
            )
        return self.payload["metrics"]

    @property
    def weighted_speedup(self) -> float:
        return self.metrics["ws"]

    @property
    def maximum_slowdown(self) -> float:
        return self.metrics["ms"]

    @property
    def harmonic_speedup(self) -> float:
        return self.metrics["hs"]

    @property
    def threads(self) -> List[dict]:
        """Per-thread [{"benchmark", "ipc", "alone_ipc"}, ...]."""
        if self.payload is None:
            raise CampaignError(
                f"point {self.key} has no result ({self.error})"
            )
        return self.payload["threads"]


@dataclass
class CampaignReport:
    """End-of-campaign summary returned by :func:`execute_plan`."""

    plan_name: str
    results: List[PointResult] = field(default_factory=list)
    elapsed: float = 0.0
    summary: str = ""

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r.status == STATUS_OK)

    @property
    def cached(self) -> int:
        return sum(1 for r in self.results if r.status == STATUS_CACHED)

    @property
    def failed(self) -> List[PointResult]:
        return [r for r in self.results if r.status == STATUS_FAILED]

    def raise_failures(self) -> None:
        """Raise :class:`CampaignError` if any point failed."""
        failures = self.failed
        if failures:
            first = failures[0]
            raise CampaignError(
                f"{len(failures)} of {len(self.results)} campaign points "
                f"failed; first: {first.point.workload.name} / "
                f"{first.point.scheduler} -> {first.error}\n"
                f"{first.traceback or ''}"
            )


# ----------------------------------------------------------------------
# point execution (runs in workers and inline)
# ----------------------------------------------------------------------


def _execute_task(task: dict) -> dict:
    """Execute one task; pure function of the task dict.

    Two task kinds exist:

    * ``alone`` — compute one benchmark's alone-run IPC.  The engine
      schedules these *before* the points that need them, so the
      expensive alone runs are computed exactly once campaign-wide
      (they are the shared artifacts the store caches forever).
    * ``point`` — simulate and score one (workload, scheduler) point.
      The task carries ``alone_hints`` — already-known alone IPCs that
      are primed into the process-local cache so the worker never
      recomputes them.

    Either way the worker returns the result payload plus any *newly*
    computed alone artifacts for the engine to persist.
    """
    from repro.experiments import runner
    from repro.workloads.spec import BenchmarkSpec

    if task["kind"] == "alone":
        from repro.campaign.plan import config_from_dict

        spec = BenchmarkSpec(**task["spec"])
        config = config_from_dict(task["config"])
        ipc = runner.alone_ipc(spec, config, task["seed"])
        return {
            "payload": None,
            "alone": [
                {"key": task["key"], "spec": task["spec"],
                 "seed": task["seed"], "ipc": ipc}
            ],
        }

    point = CampaignPoint.from_dict(task["point"])
    telemetry = None
    trace_path = None
    trace = task.get("trace")
    if trace is not None:
        import os as _os

        from repro.telemetry import Telemetry

        _os.makedirs(trace["dir"], exist_ok=True)
        trace_path = _os.path.join(trace["dir"], f"{task['key']}.jsonl")
        telemetry = Telemetry.tracing(
            jsonl_path=trace_path,
            epoch_cycles=trace.get("epoch_cycles"),
        )
    for hint in task.get("alone_hints", []):
        runner.prime_alone_cache(
            BenchmarkSpec(**hint["spec"]), point.config, point.seed,
            hint["ipc"],
        )
    known = {h["key"] for h in task.get("alone_hints", [])}

    new_alone: List[dict] = []
    alones: List[float] = []
    for spec in point.workload.specs:
        ipc = runner.alone_ipc(spec, point.config, point.seed)
        alones.append(ipc)
        k = alone_key(spec, point.config, point.seed)
        if k not in known:
            known.add(k)
            new_alone.append(
                {
                    "key": k,
                    "spec": canonicalize(spec),
                    "seed": point.seed,
                    "ipc": ipc,
                }
            )

    result = runner.run_shared(
        point.workload, point.scheduler, point.config, point.params,
        point.seed, telemetry=telemetry,
    )
    if telemetry is not None:
        telemetry.close()
    score = runner.score_run(result, point.workload, point.config,
                             point.seed)
    payload = {
        "metrics": {
            "ws": score.weighted_speedup,
            "ms": score.maximum_slowdown,
            "hs": score.harmonic_speedup,
        },
        "threads": [
            {"benchmark": t.benchmark, "ipc": t.ipc, "alone_ipc": alone}
            for t, alone in zip(result.threads, alones)
        ],
        "summary": result.summary(),
    }
    if telemetry is not None:
        payload["telemetry"] = {**telemetry.summary(), "trace": trace_path}
    return {"payload": payload, "alone": new_alone}


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker process loop: execute tasks until the ``None`` sentinel."""
    # A Ctrl-C lands on the whole foreground process group; workers
    # ignore it so the engine alone decides how to wind the pool down
    # (no stack-trace spray from N child processes).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:
        pass  # not the process main thread (inline test harnesses)
    while True:
        task = task_q.get()
        if task is None:
            break
        t0 = time.monotonic()
        base = {
            "worker": worker_id,
            "key": task["key"],
            "attempt": task["attempt"],
        }
        try:
            out = _execute_task(task)
            result_q.put(
                {**base, "ok": True, "duration": time.monotonic() - t0,
                 **out}
            )
        except Exception as exc:  # never let a point kill the worker
            result_q.put(
                {
                    **base,
                    "ok": False,
                    "duration": time.monotonic() - t0,
                    "error": repr(exc),
                    "traceback": traceback.format_exc(),
                }
            )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


@dataclass
class _Task:
    """Engine-side state of one unique pending work unit.

    ``kind`` is ``"point"`` (a plan point; ``point`` is set) or
    ``"alone"`` (a shared alone-run artifact; ``data`` carries the
    spec/config/seed as plain dicts).
    """

    key: str
    kind: str = "point"
    point: Optional[CampaignPoint] = None
    data: Optional[dict] = None
    attempts: int = 0
    not_before: float = 0.0
    last_error: Optional[str] = None
    last_traceback: Optional[str] = None

    @property
    def label(self) -> str:
        if self.kind == "alone":
            return f"alone:{self.data['spec']['name']}"
        return f"{self.point.workload.name}/{self.point.scheduler}"


class _WorkerHandle:
    """One managed worker process with a private task queue."""

    def __init__(self, ctx, worker_id: int, result_q) -> None:
        self.id = worker_id
        self.ctx = ctx
        self.result_q = result_q
        self.task: Optional[_Task] = None
        self.deadline: float = float("inf")
        self._spawn()

    def _spawn(self) -> None:
        self.task_q = self.ctx.Queue(maxsize=1)
        self.proc = self.ctx.Process(
            target=_worker_main,
            args=(self.id, self.task_q, self.result_q),
            daemon=True,
            name=f"campaign-worker-{self.id}",
        )
        self.proc.start()

    @property
    def idle(self) -> bool:
        return self.task is None

    def dispatch(self, task: _Task, payload: dict,
                 timeout: Optional[float]) -> None:
        self.task = task
        self.deadline = (
            time.monotonic() + timeout if timeout else float("inf")
        )
        self.task_q.put(payload)

    def release(self) -> None:
        self.task = None
        self.deadline = float("inf")

    def respawn(self) -> None:
        """Kill a hung/dead worker and start a fresh process."""
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=5.0)
        self.task_q.close()
        self.release()
        self._spawn()

    def shutdown(self) -> None:
        try:
            self.task_q.put_nowait(None)
        except queue_mod.Full:
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5.0)


def _default_context(start_method: Optional[str]):
    if start_method is None:
        start_method = (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
    return mp.get_context(start_method)


class _Persister:
    """Streams results and alone artifacts into the store (if any)."""

    def __init__(self, store: Optional[CampaignStore]) -> None:
        self.store = store
        #: alone-run IPCs known this campaign: key -> hint dict.
        self.alone: Dict[str, dict] = {}
        if store is not None:
            for k in store.keys(KIND_ALONE):
                record = store.get(k)
                self.alone[k] = {
                    "key": k,
                    "spec": record["meta"]["spec"],
                    "seed": record["meta"]["seed"],
                    "ipc": record["payload"]["ipc"],
                }

    def hints_for(self, point: CampaignPoint) -> List[dict]:
        hints = []
        for spec in point.workload.specs:
            k = alone_key(spec, point.config, point.seed)
            hint = self.alone.get(k)
            if hint is not None and hint["seed"] == point.seed:
                hints.append(hint)
        return hints

    def absorb_alone(self, records: Sequence[dict]) -> None:
        for rec in records:
            if rec["key"] in self.alone:
                continue
            self.alone[rec["key"]] = rec
            if self.store is not None:
                self.store.put(
                    rec["key"], KIND_ALONE, {"ipc": rec["ipc"]},
                    meta={"spec": rec["spec"], "seed": rec["seed"],
                          "benchmark": rec["spec"]["name"]},
                )

    def record_success(self, task: _Task, payload: dict,
                       duration: float) -> None:
        if self.store is not None:
            self.store.put(
                task.key, KIND_POINT, payload,
                meta={
                    "workload": task.point.workload.name,
                    "scheduler": task.point.scheduler,
                    "seed": task.point.seed,
                    "tag": task.point.tag,
                    "attempts": task.attempts,
                    "duration": duration,
                },
            )

    def record_failure(self, task: _Task) -> None:
        if self.store is not None:
            self.store.put(
                task.key, KIND_FAILURE,
                {
                    "error": task.last_error,
                    "traceback": task.last_traceback,
                    "attempts": task.attempts,
                },
                meta={
                    "workload": task.point.workload.name,
                    "scheduler": task.point.scheduler,
                    "seed": task.point.seed,
                    "tag": task.point.tag,
                },
            )


def execute_plan(
    plan: CampaignPlan,
    store: Union[CampaignStore, str, None] = None,
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.5,
    force: bool = False,
    progress: bool = False,
    progress_stream=None,
    start_method: Optional[str] = None,
    poll_interval: float = 0.1,
    trace_dir: Optional[str] = None,
    trace_epoch_cycles: Optional[int] = None,
) -> CampaignReport:
    """Run a campaign plan and return its report.

    Args:
        plan: the points to run.  Duplicate keys are executed once and
            their result shared across all duplicate plan entries.
        store: a :class:`CampaignStore`, a directory path to open one
            in, or None for a store-less (in-memory) campaign.
        workers: process count.  ``<= 1`` executes inline in this
            process (no subprocesses, timeout not enforced) — useful
            for tests and as the deterministic reference path.
        timeout: per-point wall-clock seconds before the worker is
            killed and the attempt counts as failed (pool mode only).
        retries: extra attempts after the first failure; the point is
            recorded as failed once ``1 + retries`` attempts have been
            spent.
        backoff: base seconds of exponential backoff between attempts.
        force: re-run points even if the store already has them.
        progress: emit live status lines (and the final report) to
            ``progress_stream`` (default stderr).
        trace_dir: when set, every executed point runs traced and
            writes ``<trace_dir>/<point key>.jsonl``; point payloads
            gain a ``"telemetry"`` digest (event counts, epochs, row
            hit rate, trace path).  Tracing observes the simulation
            without perturbing it, so results stay byte-identical to
            an untraced campaign.
        trace_epoch_cycles: epoch-sampler period for traced points
            (default: the config's quantum length).
    """
    owns_store = isinstance(store, (str, bytes)) or hasattr(store, "__fspath__")
    if owns_store:
        store = CampaignStore(store)
    stream = progress_stream if progress_stream is not None else sys.stderr
    tracker = ProgressTracker(len(plan), name=plan.name)
    started = time.monotonic()
    _LOG.info(
        "campaign %s: %d points, workers=%d%s",
        plan.name, len(plan), workers,
        f", tracing to {trace_dir}" if trace_dir else "",
    )

    persister = _Persister(store)
    resolved: Dict[str, PointResult] = {}
    pending: List[_Task] = []
    seen = set()
    for point in plan:
        key = point.key
        if key in seen:
            continue
        seen.add(key)
        cached = None
        if store is not None and not force and store.kind(key) == KIND_POINT:
            cached = store.get(key)
        if cached is not None:
            resolved[key] = PointResult(
                key=key, point=point, status=STATUS_CACHED,
                payload=cached["payload"],
                attempts=0,
            )
        else:
            pending.append(_Task(key=key, point=point))
    for point in plan:
        hit = resolved.get(point.key)
        if hit is not None and hit.status == STATUS_CACHED:
            tracker.point_cached()

    # Schedule the shared alone-run artifacts the pending points will
    # need but the store doesn't have yet.  They run *before* the
    # points (FIFO), so each alone IPC is computed exactly once
    # campaign-wide instead of once per (workload, scheduler) point.
    alone_tasks: List[_Task] = []
    for task in pending:
        for spec in task.point.workload.specs:
            k = alone_key(spec, task.point.config, task.point.seed)
            if k in persister.alone or k in seen:
                continue
            seen.add(k)
            alone_tasks.append(
                _Task(
                    key=k, kind="alone",
                    data={
                        "spec": canonicalize(spec),
                        "seed": task.point.seed,
                        "config": canonicalize(task.point.config),
                    },
                )
            )
    pending = alone_tasks + pending

    def task_payload(task: _Task) -> dict:
        if task.kind == "alone":
            return {"kind": "alone", "key": task.key,
                    "attempt": task.attempts + 1, **task.data}
        payload = {
            "kind": "point",
            "key": task.key,
            "attempt": task.attempts + 1,
            "point": task.point.to_dict(),
            "alone_hints": persister.hints_for(task.point),
        }
        if trace_dir is not None:
            payload["trace"] = {
                "dir": str(trace_dir),
                "epoch_cycles": trace_epoch_cycles,
            }
        return payload

    def handle_success(task: _Task, payload: Optional[dict],
                       alone: Sequence[dict], duration: float) -> None:
        task.attempts += 1
        persister.absorb_alone(alone)
        if task.kind == "alone":
            tracker.artifact_done()
            return
        persister.record_success(task, payload, duration)
        resolved[task.key] = PointResult(
            key=task.key, point=task.point, status=STATUS_OK,
            payload=payload, attempts=task.attempts, duration=duration,
        )
        tracker.point_done()

    def handle_failure(task: _Task, error: str, tb: Optional[str],
                       duration: float) -> bool:
        """Record one failed attempt; True if the task will be retried."""
        task.attempts += 1
        task.last_error = error
        task.last_traceback = tb
        if task.attempts <= retries:
            task.not_before = (
                time.monotonic() + backoff * (2 ** (task.attempts - 1))
            )
            tracker.point_retried()
            _LOG.warning("retrying %s (attempt %d failed: %s)",
                         task.label, task.attempts, error)
            return True
        _LOG.error("%s failed permanently after %d attempts: %s",
                   task.label, task.attempts, error)
        if task.kind == "alone":
            # Not fatal: any point needing this artifact recomputes it
            # and surfaces the real error itself.
            tracker.artifact_failed()
            return False
        persister.record_failure(task)
        resolved[task.key] = PointResult(
            key=task.key, point=task.point, status=STATUS_FAILED,
            error=error, traceback=tb, attempts=task.attempts,
            duration=duration,
        )
        tracker.point_failed()
        return False

    # SIGTERM (scheduler preemption, ``kill``) gets the same graceful
    # path as Ctrl-C: convert it to KeyboardInterrupt so the one
    # interrupt flow below flushes the store before exiting.  Signal
    # handlers only install from the process main thread; elsewhere
    # (serve's shard pool, test harnesses) SIGTERM keeps its previous
    # disposition.
    interrupted = False
    sigterm_prev = None
    sigterm_set = False
    if threading.current_thread() is threading.main_thread():
        def _on_sigterm(signum, frame):
            raise KeyboardInterrupt
        try:
            sigterm_prev = signal.signal(signal.SIGTERM, _on_sigterm)
            sigterm_set = True
        except ValueError:
            pass

    try:
        try:
            if workers <= 1:
                _run_inline(pending, task_payload, handle_success,
                            handle_failure, tracker, progress, stream)
            else:
                _run_pool(pending, task_payload, handle_success,
                          handle_failure, tracker, workers, timeout,
                          start_method, poll_interval, progress, stream)
        except KeyboardInterrupt:
            interrupted = True
            _LOG.warning(
                "campaign %s interrupted; flushing store before exit",
                plan.name,
            )
    finally:
        if sigterm_set:
            signal.signal(signal.SIGTERM, sigterm_prev)
        if store is not None:
            _record_summary(store, plan, tracker, resolved, trace_dir)
            store.flush_index()
        if owns_store:
            store.close()

    if interrupted:
        partial = [
            resolved[p.key] for p in plan if p.key in resolved
        ]
        raise CampaignInterrupted(
            plan.name,
            CampaignReport(
                plan_name=plan.name,
                results=partial,
                elapsed=time.monotonic() - started,
                summary=tracker.report(),
            ),
        )

    results = [resolved[p.key] for p in plan]
    _LOG.info("campaign %s done: %s", plan.name,
              tracker.render())
    return CampaignReport(
        plan_name=plan.name,
        results=results,
        elapsed=time.monotonic() - started,
        summary=tracker.report(),
    )


def _record_summary(store, plan, tracker, resolved, trace_dir) -> None:
    """Persist one campaign-level telemetry digest into the store.

    The record aggregates the tracker's final snapshot with the
    per-point telemetry digests of traced points, so ``telemetry
    report --store`` can show campaign health without re-reading every
    point record.  Keyed by plan name: re-running a campaign replaces
    its summary (the store keeps latest-per-key).
    """
    snapshot = tracker.snapshot()
    snapshot.pop("workers", None)
    traced = [
        r.payload["telemetry"]
        for r in resolved.values()
        if r.payload is not None and "telemetry" in r.payload
    ]
    agg = {}
    if traced:
        agg = {
            "traced_points": len(traced),
            "events": sum(t["events"] for t in traced),
            "epochs": sum(t["epochs"] for t in traced),
            "requests": sum(t.get("requests", 0) for t in traced),
            "mean_row_hit_rate": (
                sum(t.get("row_hit_rate", 0.0) for t in traced)
                / len(traced)
            ),
        }
    store.put(
        f"summary:{plan.name}", KIND_SUMMARY,
        {"progress": snapshot, "telemetry": agg},
        meta={
            "plan": plan.name,
            "trace_dir": str(trace_dir) if trace_dir else None,
        },
    )


def _run_inline(pending, task_payload, handle_success, handle_failure,
                tracker, progress, stream) -> None:
    """Serial in-process execution (the reference path)."""
    for task in pending:
        while True:
            payload = task_payload(task)
            t0 = time.monotonic()
            try:
                out = _execute_task(payload)
            except Exception as exc:
                will_retry = handle_failure(
                    task, repr(exc), traceback.format_exc(),
                    time.monotonic() - t0,
                )
                if will_retry:
                    delay = task.not_before - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    continue
                break
            handle_success(task, out["payload"], out["alone"],
                           time.monotonic() - t0)
            break
        if progress:
            print(tracker.render(), file=stream)


def _run_pool(pending, task_payload, handle_success, handle_failure,
              tracker, workers, timeout, start_method, poll_interval,
              progress, stream) -> None:
    """Parallel execution across a managed worker pool."""
    ctx = _default_context(start_method)
    result_q = ctx.Queue()
    pool = [
        _WorkerHandle(ctx, i, result_q)
        for i in range(min(workers, max(1, len(pending))))
    ]
    for w in pool:
        tracker.worker_state(w.id, IDLE)

    ready = deque(pending)
    delayed: List[_Task] = []
    in_flight: Dict[str, int] = {}  # key -> current attempt number
    outstanding = len(pending)
    last_render = 0.0

    def dispatch(worker: _WorkerHandle, task: _Task) -> None:
        in_flight[task.key] = task.attempts + 1
        worker.dispatch(task, task_payload(task), timeout)
        tracker.worker_state(worker.id, BUSY, task.label)

    def finish_attempt(task: _Task, error: str, duration: float) -> None:
        """A dispatched attempt ended abnormally (timeout/death)."""
        nonlocal outstanding
        in_flight.pop(task.key, None)
        if handle_failure(task, error, None, duration):
            delayed.append(task)
        else:
            outstanding -= 1

    try:
        while outstanding > 0:
            now = time.monotonic()
            for task in [t for t in delayed if t.not_before <= now]:
                delayed.remove(task)
                ready.append(task)
            for worker in pool:
                if worker.idle and ready:
                    dispatch(worker, ready.popleft())

            try:
                msg = result_q.get(timeout=poll_interval)
            except queue_mod.Empty:
                msg = None

            if msg is not None:
                key, attempt = msg["key"], msg["attempt"]
                worker = next(
                    (w for w in pool
                     if w.task is not None and w.task.key == key), None,
                )
                if worker is None or in_flight.get(key) != attempt:
                    pass  # stale result from a killed/raced attempt
                else:
                    task = worker.task
                    worker.release()
                    tracker.worker_state(worker.id, IDLE)
                    in_flight.pop(key, None)
                    if msg["ok"]:
                        handle_success(task, msg["payload"], msg["alone"],
                                       msg["duration"])
                        outstanding -= 1
                    else:
                        if handle_failure(task, msg["error"],
                                          msg.get("traceback"),
                                          msg["duration"]):
                            delayed.append(task)
                        else:
                            outstanding -= 1

            now = time.monotonic()
            for worker in pool:
                if worker.idle:
                    continue
                if now > worker.deadline:
                    task = worker.task
                    _LOG.warning("worker %d timed out on %s; respawning",
                                 worker.id, task.label)
                    tracker.worker_state(worker.id, DEAD, "timeout")
                    worker.respawn()
                    tracker.worker_state(worker.id, IDLE)
                    finish_attempt(
                        task,
                        f"TimeoutError('point exceeded {timeout}s')",
                        timeout or 0.0,
                    )
                elif not worker.proc.is_alive():
                    task = worker.task
                    exitcode = worker.proc.exitcode
                    _LOG.warning(
                        "worker %d died (exit=%s) on %s; respawning",
                        worker.id, exitcode, task.label,
                    )
                    tracker.worker_state(worker.id, DEAD,
                                         f"exit={exitcode}")
                    worker.respawn()
                    tracker.worker_state(worker.id, IDLE)
                    finish_attempt(
                        task,
                        f"RuntimeError('worker died, exit code "
                        f"{exitcode}')",
                        0.0,
                    )

            if progress and time.monotonic() - last_render > 0.5:
                last_render = time.monotonic()
                end = "\r" if stream.isatty() else "\n"
                print(tracker.render(), file=stream, end=end, flush=True)
    finally:
        for worker in pool:
            worker.shutdown()
        result_q.close()
    if progress and stream.isatty():
        print(file=stream)


# ----------------------------------------------------------------------
# library entry point used by the figure/sweep drivers
# ----------------------------------------------------------------------


def run_points(
    points: Sequence[CampaignPoint],
    workers: Optional[int] = None,
    store: Union[CampaignStore, str, None] = None,
    name: str = "adhoc",
    **engine_kwargs,
) -> List[PointResult]:
    """Execute ad-hoc points through the engine; raise on any failure.

    This is the API the figure and sweep drivers use: ``workers=None``
    (or 1) is the exact serial reference path, larger values shard the
    points across processes; results come back in input order either
    way.
    """
    plan = CampaignPlan(name=name, points=tuple(points))
    report = execute_plan(
        plan, store=store, workers=workers or 1, **engine_kwargs
    )
    report.raise_failures()
    return report.results
