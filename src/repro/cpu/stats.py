"""Per-thread architectural statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ThreadStats:
    """Counters a core exposes to the memory-scheduling machinery.

    ``quantum_*`` fields are reset at every quantum boundary; lifetime
    fields accumulate for the whole run.  MPKI here is the L2 MPKI the
    paper's monitors compute at the cache controller.
    """

    instructions: int = 0
    misses: int = 0
    stall_cycles: int = 0
    compute_cycles: int = 0
    episodes: int = 0

    quantum_instructions: int = 0
    quantum_misses: int = 0

    def retire(self, instructions: int, misses: int) -> None:
        """Account one completed episode's instructions and misses."""
        self.instructions += instructions
        self.misses += misses
        self.quantum_instructions += instructions
        self.quantum_misses += misses
        self.episodes += 1

    def quantum_mpki(self) -> float:
        """Misses per kilo-instruction over the current quantum."""
        if self.quantum_instructions == 0:
            return 0.0
        return 1000.0 * self.quantum_misses / self.quantum_instructions

    def lifetime_mpki(self) -> float:
        """Misses per kilo-instruction over the whole run."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.misses / self.instructions

    def ipc(self, elapsed_cycles: int) -> float:
        """Retired instructions per cycle over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.instructions / elapsed_cycles

    def reset_quantum(self) -> None:
        """Start a fresh quantum accounting window."""
        self.quantum_instructions = 0
        self.quantum_misses = 0

    def register_metrics(self, registry, labels) -> None:
        """Expose the core's architectural counters as providers."""
        registry.register("cpu.instructions",
                          lambda: self.instructions, labels)
        registry.register("cpu.misses", lambda: self.misses, labels)
        registry.register("cpu.episodes", lambda: self.episodes, labels)
        registry.register("cpu.mpki", self.lifetime_mpki, labels)
