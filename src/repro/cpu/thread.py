"""Sliding-window thread model.

Each thread stands in for a 3-wide core with a 128-entry instruction
window running one traced benchmark.  The model captures exactly the
behaviour the paper's mechanisms react to:

* A last-level-cache miss occurs every ``instrs_per_miss = 1000/MPKI``
  instructions; fetching those instructions at peak IPC takes
  ``instrs_per_miss / ipc_peak`` cycles, so a new miss *wants* to issue
  that many cycles after the previous one.
* The instruction window holds ``window_size`` instructions, so at most
  ``window_size / instrs_per_miss`` misses (bounded by the core's MSHR
  count) can be outstanding; when the window fills, the core stalls and
  the next miss issues only once the oldest completes — the window
  *slides* rather than draining completely.
* Instructions retire in order: each completed miss unblocks the
  ``instrs_per_miss`` instructions behind it.

This reproduces the paper's two behavioural regimes (§2.2): low-MPKI
threads compute for long stretches and are latency-sensitive; high-MPKI
threads saturate their window and progress at the speed of the memory
system.  Memory-level parallelism (outstanding misses) is decoupled
from *bank-level* parallelism: the address stream spreads misses over a
working set of banks sized by the benchmark's BLP target, so a
streaming thread keeps many misses outstanding to one bank while a
random-access thread scatters them.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional, Tuple

import numpy as np

from repro.config import SimConfig
from repro.cpu.stats import ThreadStats
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.synthetic import AddressStream

#: Cap on concurrent misses per core (MSHR count); keeps the most
#: memory-intensive threads' parallelism within realistic miss-buffer sizes.
MAX_OUTSTANDING_MISSES = 16


class ThreadModel:
    """A single hardware context executing one benchmark.

    Driven by the simulation system through three calls:

    * :meth:`try_issue` — the compute gate for the next miss has been
      reached (or the window just unblocked); returns the DRAM location
      of the next miss, or None if the window is full.
    * :meth:`issue_gap` — cycles until the *next* miss's compute gate.
    * :meth:`on_request_completed` — a miss returned; retires its
      instructions and reports whether the window was blocked (in which
      case the system should immediately call :meth:`try_issue`).
    """

    def __init__(
        self,
        thread_id: int,
        spec: BenchmarkSpec,
        config: SimConfig,
        seed: int,
        weight: int = 1,
        stream: Optional[int] = None,
    ):
        if spec.mpki <= 0:
            raise ValueError(f"benchmark {spec.name} must have positive MPKI")
        if weight < 1:
            raise ValueError("thread weight must be >= 1")
        self.thread_id = thread_id
        self.spec = spec
        self.config = config
        self.weight = weight
        self.stats = ThreadStats()
        # The rng "stream" identifies the benchmark instance, not the
        # hardware context, so a benchmark behaves the same whichever
        # core it lands on (and its alone run sees the same behaviour).
        if stream is None:
            stream = thread_id
        self._rng = np.random.default_rng((seed, stream, 0x7E))
        # Phases get their own rng: phase boundaries are wall-clock
        # events, so alone and shared runs of the same benchmark see
        # the same phase sequence regardless of how many misses each
        # manages to issue (per-issue jitter draws would desync them).
        self._phase_rng = np.random.default_rng((seed, stream, 0xF5))
        self._addr = AddressStream(
            spec, config, np.random.default_rng((seed, stream, 0xAD))
        )
        self.instrs_per_miss = 1000.0 / spec.mpki
        self.window_blocked = False
        self.issued = 0
        self._instr_credit = 0.0
        # Reorder-buffer view of outstanding misses: completions retire
        # IN ORDER, so a single stalled miss blocks the whole window —
        # the fragility of high-BLP threads the paper builds niceness on.
        # Entries are (issue id, instruction credit at issue time) so a
        # phase change mid-flight cannot re-price in-flight misses.
        self._rob: deque = deque()   # (issue id, instr credit), oldest first
        self._completed: set = set()  # issue ids completed but not retired
        self._last_issue_time = 0
        # credit (instructions) carried by the next miss to issue;
        # re-priced whenever a new inter-miss gap is drawn
        self._pending_credit = self.instrs_per_miss
        self._gap_carry = 0.0
        # virtual "program time": cumulative compute gaps, excluding
        # memory stalls — the timeline trace recording positions misses
        # on (so a trace is contention-free, like a Pin trace)
        self.program_time = 0
        # phase machinery: the per-instruction miss rate is modulated
        # over time like real SPEC traces' program phases
        self._phase_end = 0
        self.phase_multiplier = 1.0
        self._current_ipm = self.instrs_per_miss
        self.max_outstanding = self._window_limit()

    def register_metrics(self, registry) -> None:
        """Expose the thread's counters as polled telemetry providers."""
        labels = {"tid": self.thread_id}
        self.stats.register_metrics(registry, labels)
        registry.register("cpu.outstanding_misses",
                          lambda: len(self._rob), labels)
        registry.register("cpu.issued_misses",
                          lambda: self.issued, labels)

    def _window_limit(self) -> int:
        """Outstanding-miss bound from window size and current miss rate."""
        return max(
            1,
            min(
                MAX_OUTSTANDING_MISSES,
                int(self.config.window_size // max(1.0, self._current_ipm)),
            ),
        )

    def _maybe_change_phase(self, now: int) -> None:
        mean = self.config.phase_mean_cycles
        if mean <= 0 or now < self._phase_end:
            return
        self.phase_multiplier = float(self._phase_rng.choice((0.5, 1.0, 2.0)))
        self._current_ipm = self.instrs_per_miss / self.phase_multiplier
        self.max_outstanding = self._window_limit()
        self._phase_end = now + max(1, int(self._phase_rng.exponential(mean)))

    # ------------------------------------------------------------------
    # issue side
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Misses currently occupying the window (issued, unretired)."""
        return len(self._rob)

    def try_issue(self, now: int) -> Optional[Tuple[int, int, int]]:
        """Issue the next miss if the window has room.

        Returns the (channel, bank, row) of the miss, or None when the
        window is full (the model remembers it is blocked and the next
        retirement will retry).  The issue id of the new miss is
        ``self.issued`` after this call returns (ids are 1-based).
        """
        self._maybe_change_phase(now)
        if len(self._rob) >= self.max_outstanding:
            self.window_blocked = True
            return None
        self.window_blocked = False
        self.issued += 1
        self._rob.append((self.issued, self._pending_credit))
        self._last_issue_time = now
        return self._addr.next_location()

    def issue_gap(self) -> int:
        """Compute cycles before the next miss may issue (jittered).

        The instructions behind the *next* miss are exactly what the
        core can execute during this gap at peak IPC; pricing the
        miss's retirement credit from the same draw keeps measured IPC
        bounded by the issue width under jitter and phase changes.
        """
        gap = self._current_ipm / self.config.ipc_peak
        gap *= float(self._rng.uniform(0.9, 1.1))
        # carry the fractional cycles over so that short gaps (intense
        # threads) do not truncate towards higher miss rates
        gap += self._gap_carry
        cycles = max(1, int(gap))
        self._gap_carry = gap - cycles
        self._pending_credit = cycles * self.config.ipc_peak
        self.program_time += cycles
        return cycles

    # ------------------------------------------------------------------
    # completion side
    # ------------------------------------------------------------------

    def on_request_completed(self, issue_id: int) -> bool:
        """Miss ``issue_id`` returned; retire in order from the ROB head.

        Instructions behind a miss retire only once every older miss
        has also completed; a stalled oldest miss therefore blocks the
        whole window even while younger misses finish.

        Returns True when the window had been blocked and at least one
        slot was freed (the system must retry :meth:`try_issue` now).
        """
        if not self._rob:
            raise RuntimeError(
                f"thread {self.thread_id} completion with no outstanding misses"
            )
        self._completed.add(issue_id)
        freed = 0
        while self._rob and self._rob[0][0] in self._completed:
            head_id, head_credit = self._rob.popleft()
            self._completed.discard(head_id)
            freed += 1
            # Retire the instructions behind the miss; accumulate the
            # fractional part so long-run MPKI matches the spec exactly.
            self._instr_credit += head_credit
            instrs = int(self._instr_credit)
            self._instr_credit -= instrs
            self.stats.retire(instrs, 1)
        was_blocked = self.window_blocked and freed > 0
        if freed:
            self.window_blocked = False
        return was_blocked

    def finalize(self, now: int) -> None:
        """Credit compute progress made since the last miss issued.

        Sparse-miss threads retire instructions only at miss
        completions; without this, up to one full inter-miss chunk of
        instructions (e.g. 100k instructions for a 0.01-MPKI thread) is
        dropped at the end of the run, quantising the measured IPC.
        """
        if self._rob:
            return  # stalled on memory, no unaccounted compute
        elapsed = max(0, now - self._last_issue_time)
        instrs = min(
            int(elapsed * self.config.ipc_peak), int(self._pending_credit)
        )
        if instrs > 0:
            self.stats.retire(instrs, 0)
