"""Stream prefetching (optional substrate).

The paper's related work (Lee et al. [6], "Prefetch-aware DRAM
controllers") adaptively prioritises between prefetch and demand
requests and "can be combined" with TCM.  This module provides the
prefetch side of that combination:

* a per-thread **stream prefetcher** that detects consecutive misses to
  the same DRAM row and fetches the row's upcoming blocks ahead of
  demand (a classic next-line/stream prefetcher — our synthetic streams
  walk rows sequentially, as real streams do);
* a small **prefetch buffer**: demand misses that hit prefetched blocks
  complete at on-chip latency instead of going to DRAM.

Prefetch requests travel through the normal controller queues tagged
``is_prefetch`` and are serviced *demand-first* (the baseline policy
[6] improves upon).  Enable with ``SimConfig.prefetch_degree > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

Location = Tuple[int, int, int]   # (channel, bank, row)

#: latency of a demand miss that hits the prefetch buffer (on-chip)
PREFETCH_HIT_LATENCY = 20

#: same-row miss streak that arms the prefetcher
_TRIGGER_STREAK = 2

#: prefetch-buffer capacity in blocks per thread
_BUFFER_BLOCKS = 32

#: feedback-directed throttling (after Srinath et al. / Lee et al.):
#: once this many prefetches have been issued, a thread whose accuracy
#: is below the threshold stops prefetching
_THROTTLE_WARMUP = 64
_THROTTLE_ACCURACY = 0.55


@dataclass
class PrefetchStats:
    """Counters for one thread's prefetcher."""

    issued: int = 0
    useful: int = 0
    evicted: int = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


class StreamPrefetcher:
    """Detects row streams and manages the per-thread prefetch buffer."""

    def __init__(self, degree: int):
        if degree < 1:
            raise ValueError("prefetch degree must be >= 1")
        self.degree = degree
        self.stats = PrefetchStats()
        # per-bank stream detection: (channel, bank) -> (row, streak)
        self._streams: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._inflight: Dict[Location, int] = {}
        self._credits: Dict[Location, int] = {}
        self._credit_total = 0
        #: demand misses merged into in-flight prefetches (MSHR merge):
        #: location -> issue ids waiting for the fill
        self._waiters: Dict[Location, List[int]] = {}
        #: feedback-directed throttle: set when accuracy stays low
        self.throttled = False

    # ------------------------------------------------------------------

    def consume(self, location: Location) -> bool:
        """True if a demand miss hits the prefetch buffer."""
        key = location
        if self._credits.get(key, 0) > 0:
            self._credits[key] -= 1
            self._credit_total -= 1
            if self._credits[key] == 0:
                del self._credits[key]
            self.stats.useful += 1
            return True
        return False

    def try_merge(self, location: Location, issue_id: int) -> bool:
        """Merge a demand miss into an in-flight prefetch (MSHR merge).

        The demand does not go to DRAM; it completes when the matching
        prefetch fills.  Returns False when no prefetch is in flight
        for the location.
        """
        free = self._inflight.get(location, 0) - len(
            self._waiters.get(location, ())
        )
        if free <= 0:
            return False
        self._waiters.setdefault(location, []).append(issue_id)
        self.stats.useful += 1
        return True

    def observe(self, location: Location) -> List[Location]:
        """Record a demand miss; returns prefetches to inject (if any).

        On a same-row streak, fetch ``degree`` upcoming blocks of the
        row (modelled as ``degree`` prefetch requests to the same row).
        Streams are detected per bank so that a thread interleaving two
        banks still streaks on each.
        """
        channel, bank, row = location
        key = (channel, bank)
        last_row, streak = self._streams.get(key, (None, 0))
        if last_row == row:
            streak += 1
        else:
            streak = 1
            # the stream moved to a new row: blocks buffered for this
            # bank's previous rows will never be used — evict them
            self._evict_bank(channel, bank, keep_row=row)
        self._streams[key] = (row, streak)
        if streak < _TRIGGER_STREAK:
            return []
        if (
            self.stats.issued >= _THROTTLE_WARMUP
            and self.stats.accuracy < _THROTTLE_ACCURACY
        ):
            self.throttled = True
        if self.throttled:
            return []
        # keep ``degree`` uncommitted blocks of the row covered ahead of
        # demand: in-flight prefetches already claimed by merged demand
        # misses are spoken for
        uncommitted = (
            self._inflight.get(location, 0)
            - len(self._waiters.get(location, ()))
            + self._credits.get(location, 0)
        )
        top_up = self.degree - uncommitted
        if top_up <= 0:
            return []
        if self._credit_total >= _BUFFER_BLOCKS:
            return []
        self._inflight[location] = self._inflight.get(location, 0) + top_up
        self.stats.issued += top_up
        return [location] * top_up

    def _evict_bank(self, channel: int, bank: int, keep_row: int) -> None:
        """Drop buffered credits for a bank's superseded rows.

        In-flight prefetches and their merged waiters are untouched
        (waiters must complete); only unclaimed buffered blocks go.
        """
        stale = [
            loc
            for loc in self._credits
            if loc[0] == channel and loc[1] == bank and loc[2] != keep_row
        ]
        for loc in stale:
            count = self._credits.pop(loc)
            self._credit_total -= count
            self.stats.evicted += count

    def fill(self, location: Location) -> List[int]:
        """A prefetch completed; returns merged demand ids to wake.

        Without waiters the block is buffered as a credit for a future
        demand (or dropped if the buffer is full).
        """
        if self._inflight.get(location, 0) > 0:
            self._inflight[location] -= 1
            if self._inflight[location] == 0:
                del self._inflight[location]
        waiters = self._waiters.get(location)
        if waiters:
            return [waiters.pop(0)]
        if self._credit_total >= _BUFFER_BLOCKS:
            self.stats.evicted += 1
            return []
        self._credits[location] = self._credits.get(location, 0) + 1
        self._credit_total += 1
        return []
