"""CPU substrate: episodic thread models standing in for traced cores."""

from repro.cpu.stats import ThreadStats
from repro.cpu.thread import MAX_OUTSTANDING_MISSES, ThreadModel

__all__ = ["MAX_OUTSTANDING_MISSES", "ThreadModel", "ThreadStats"]
