"""The fast backend's run loops.

Two drivers over the same :class:`~repro.engine.wheel.TimingWheel`:

* :func:`_drive_observed` — the reference event loop with the heap
  swapped for the wheel.  Every event still dispatches through the
  ``System`` methods (``_issue_miss``, ``_try_schedule``, ...), so
  per-instance wrappers installed by the invariant oracle
  (:mod:`repro.validate.oracle`) and the self-profiler
  (:mod:`repro.prof`) keep intercepting exactly as on the reference
  backend, and tracer/span/sampler emit sites run unchanged.
* :func:`_drive_bare` — the fully inlined loop used when nothing is
  watching: no tracer, spans, sampler, profiler, trace recorder,
  prefetchers, write modelling, detailed timings, or per-instance
  method overrides.  The wheel drain, the event dispatch, the CPU
  sliding-window model, the address stream, the non-detailed DRAM
  timing path and the behaviour monitor's bookkeeping are unrolled
  into one closure nest over cached locals — while still mutating the
  *same* ``Bank`` / ``Channel`` / ``BehaviorMonitor`` / ``ThreadStats``
  objects, so polled telemetry providers and the end-of-run results
  assembly read identical state.

Both drivers execute the reference semantics operation-for-operation
(same event order, same RNG draws, same float arithmetic in the same
order), which the cross-backend parity suite pins bit-identical.
:func:`drive` picks the loop per run; eligibility is decided from the
system's observer surface, so e.g. an STFM run (which binds
interference accounting to ``system._spans``) automatically takes the
observed loop.

Scheduler policy code remains fully in charge: ``select`` and every
overridden lifecycle hook are called exactly as the reference loop
calls them.  Hooks may push events (``System.schedule_timer``); the
bare loop hands its event bookkeeping back to the wheel around each
hook call so those pushes interleave correctly.  ``select`` /
``priority`` are assumed to be pure decision functions (they are for
every policy in the registry — the differential suite would catch a
violation as a parity break).
"""

from __future__ import annotations

import heapq

from repro.cpu.thread import MAX_OUTSTANDING_MISSES
from repro.dram.request import MemoryRequest
from repro.engine.rng import _INV_2_53
from repro.engine.wheel import _SAMPLE_FLAG, scan_occupancy
from repro.schedulers.base import Scheduler

#: (object-attribute path, method names) whose per-instance shadowing
#: forces the observed loop — the bare loop inlines past these seams.
_SYSTEM_SEAMS = (
    "_issue_miss", "_inject_prefetches", "_try_schedule",
    "_complete_request", "_quantum_boundary", "_push", "_push_sample",
    "schedule_timer", "_take_sample",
)
_SCHEDULER_SEAMS = (
    "select", "on_request_arrival", "on_request_scheduled",
    "on_request_complete", "on_quantum", "on_timer",
)
_CHANNEL_SEAMS = (
    "enqueue", "enqueue_write", "start_service", "start_write_service",
    "_begin_access", "next_write_for",
)
_BANK_SEAMS = ("begin_access", "is_idle", "classify")
_MONITOR_SEAMS = (
    "on_request_arrival", "on_request_service", "on_request_complete",
)


def _overridden(obj, names) -> bool:
    d = getattr(obj, "__dict__", None)
    if not d:
        return False
    return any(name in d for name in names)


def bare_eligible(system) -> bool:
    """True when the inlined loop preserves observable behaviour.

    Any observer (tracer, spans, sampler, profiler, trace recorder),
    optional subsystem (prefetchers, write modelling, detailed
    timings), or per-instance method wrapper (oracle, profiler, test
    doubles) routes the run through the observed loop instead.
    """
    if (
        system._tracer is not None
        or system._spans is not None
        or system._sampler is not None
        or system._prof is not None
        or system._probe is not None
        or system._explain is not None
        or system.trace_recorder is not None
        or system.prefetchers is not None
        or system.config.model_writes
        or system.config.timings.detailed
    ):
        return False
    if _overridden(system, _SYSTEM_SEAMS):
        return False
    if _overridden(system.scheduler, _SCHEDULER_SEAMS):
        return False
    if _overridden(system.monitor, _MONITOR_SEAMS):
        return False
    for channel in system.channels:
        if _overridden(channel, _CHANNEL_SEAMS):
            return False
        for bank in channel.banks:
            if _overridden(bank, _BANK_SEAMS):
                return False
    return True


def drive(system, horizon: int) -> None:
    """Run the fast backend's event loop up to ``horizon``.

    The cyclic-garbage collector is paused for the duration: the loop
    allocates short-lived tuples and requests at a rate that triggers
    constant gen-0 scans, and none of the engine's object graphs are
    cyclic (everything is freed by refcount).  The previous GC state is
    restored on every exit path.
    """
    import gc

    was_enabled = gc.isenabled()
    gc.disable()
    try:
        if bare_eligible(system):
            _drive_bare(system, horizon)
        else:
            _drive_observed(system, horizon)
    finally:
        if was_enabled:
            gc.enable()


def _drive_observed(system, horizon: int) -> None:
    """Wheel-driven loop dispatching through the ``System`` seams."""
    from repro.sim.system import (
        _EV_BANK_FREE, _EV_DONE, _EV_ISSUE, _EV_PHIT, _EV_QUANTUM,
        _EV_TIMER,
    )

    threads = system.threads
    scheduler = system.scheduler
    probe = system._probe
    explain = system._explain

    def handler(time, kind, payload, aux):
        system.now = time
        if probe is not None:
            probe.on_event(time, kind, payload, aux)
        if kind == _EV_ISSUE:
            system._issue_miss(payload)
        elif kind == _EV_BANK_FREE:
            system._try_schedule(payload, aux)
        elif kind == _EV_DONE:
            system._complete_request(payload)
        elif kind == _EV_QUANTUM:
            system._quantum_boundary()
        elif kind == _EV_TIMER:
            # tuple payloads are shadow timers (repro.explain)
            if explain is not None and type(payload) is tuple:
                explain.on_shadow_timer(time, payload)
            else:
                scheduler.on_timer(time, payload)
        elif kind == _EV_PHIT:
            if threads[payload].on_request_completed(aux):
                system._issue_miss(payload)
        else:  # _EV_SAMPLE
            system._take_sample()

    system._wheel.drain(handler, horizon)


def _drive_bare(system, limit: int) -> None:
    """Fully inlined loop for unobserved runs.

    Mirrors the reference engine statement-for-statement —
    ``System._issue_miss`` / ``_try_schedule`` / ``_complete_request``,
    ``ThreadModel`` issue/retire, ``AddressStream.next_location``,
    non-detailed ``Channel.start_service`` / ``Bank.begin_access`` and
    ``BehaviorMonitor`` hooks — with the call frames between them
    removed and attribute chains hoisted into closure locals.

    Event bookkeeping (push counter, queued-event count, wheel cursor)
    is kept in local variables and written back to the wheel around
    every policy hook call, so hooks that push events via the regular
    ``System.schedule_timer`` path compose with the inline pushes.
    """
    batch = system._batch
    wheel = system._wheel
    monitor = system.monitor
    scheduler = system.scheduler
    channels = system.channels
    config = system.config
    timings = config.timings
    t_rp = timings.t_rp
    t_rcd = timings.t_rcd
    burst = timings.burst
    fixed_overhead = timings.fixed_overhead
    page_closed = timings.page_policy == "closed"
    banks_per_channel = config.banks_per_channel
    num_banks = config.num_banks
    num_rows = config.num_rows
    select = scheduler.select
    on_timer = scheduler.on_timer
    latency_sum = system._latency_sum
    latency_count = system._latency_count
    quantum_boundary = system._quantum_boundary
    queues_by_ch = [channel.queues for channel in channels]
    banks_by_ch = [channel.banks for channel in channels]
    heappush = heapq.heappush
    heappop = heapq.heappop

    # scheduler hooks that are base-class no-ops are skipped entirely
    cls = type(scheduler)
    hook_arrival = (
        scheduler.on_request_arrival
        if cls.on_request_arrival is not Scheduler.on_request_arrival
        else None
    )
    hook_scheduled = (
        scheduler.on_request_scheduled
        if cls.on_request_scheduled is not Scheduler.on_request_scheduled
        else None
    )
    hook_complete = (
        scheduler.on_request_complete
        if cls.on_request_complete is not Scheduler.on_request_complete
        else None
    )

    # CPU batch columns (repro.engine.cpu) — list objects are stable
    MAXW = MAX_OUTSTANDING_MISSES
    ipc_peak = batch.ipc_peak
    phase_mean = batch.phase_mean
    maybe_phase = batch.maybe_change_phase
    rob_len = batch.rob_len
    max_out = batch.max_outstanding
    window_blocked = batch.window_blocked
    issued_col = batch.issued
    head_id = batch.head_id
    completed_mask = batch.completed_mask
    credits = batch.credits
    pending_credit = batch.pending_credit
    gap_carry = batch.gap_carry
    instr_credit = batch.instr_credit
    program_time = batch.program_time
    last_issue = batch.last_issue_time
    current_ipm = batch.current_ipm
    phase_end = batch.phase_end
    stats = batch.stats
    jitters = batch.jitter
    addrs = batch.addr

    # monitor structures that are never rebound (reset_quantum swaps
    # inner per-channel lists and the per-quantum BLP arrays — those
    # are reached through ``monitor`` at use)
    shadow_rows = monitor._shadow_rows
    shadow_accesses = monitor.shadow_accesses
    shadow_hits = monitor.shadow_hits
    service_cycles = monitor.service_cycles
    l_service = monitor.lifetime_service_cycles
    l_accesses = monitor.lifetime_shadow_accesses
    l_hits = monitor.lifetime_shadow_hits
    l_blp = monitor.lifetime_blp_integral
    l_busy = monitor.lifetime_busy_time
    bank_outstanding = monitor._bank_outstanding
    active_banks = monitor._active_banks
    outstanding = monitor._outstanding
    last_update = monitor._last_update

    # wheel internals: cursor, push counter and queued count live in
    # locals (``time``/``seq``/``count``) and are flushed to the wheel
    # around every out-call that may push
    span = wheel.horizon
    buckets = wheel._ordinary
    occ_lo = wheel._occ_lo
    overflow = wheel._overflow
    time = wheel.now
    seq = wheel._seq
    count = wheel._count

    def try_schedule(channel_id, bank_id, time):
        # System._try_schedule + Channel.start_service +
        # Bank.begin_access (non-detailed), inlined
        nonlocal seq, count
        bank = banks_by_ch[channel_id][bank_id]
        if time < bank.busy_until:
            return
        queue = queues_by_ch[channel_id][bank_id]
        if not queue:
            return  # no write path in bare mode
        request = select(channels[channel_id], bank_id, time)
        index = 0
        while queue[index] is not request:  # ids unique: is == ==
            index += 1
        del queue[index]
        row = request.row
        tid = request.thread_id
        open_row = bank.open_row
        if open_row is None:
            bank.last_activate = time
            prep_done = time + t_rcd
            bank.row_closed += 1
        elif open_row == row:
            prep_done = time
            bank.row_hits += 1
        else:
            activate = time + t_rp
            bank.last_activate = activate
            prep_done = activate + t_rcd
            bank.row_conflicts += 1
        channel = channels[channel_id]
        bus_free = channel.bus_free_until
        data_start = prep_done if prep_done >= bus_free else bus_free
        data_end = data_start + burst
        if page_closed:
            bank.open_row = None
            bank.open_row_owner = None
        else:
            bank.open_row = row
            bank.open_row_owner = tid
        bank.busy_until = data_end
        busy_cycles = data_end - time
        bank.busy_cycles += busy_cycles
        channel.bus_owner = tid
        channel.bus_free_until = data_end
        request.start_service = time
        completion = data_end + fixed_overhead
        request.completion = completion
        channel.serviced_requests += 1
        system.sched_decisions += 1
        service_cycles[channel_id][tid] += busy_cycles
        l_service[tid] += busy_cycles
        if hook_scheduled is not None:
            wheel._seq = seq
            wheel._count = count
            wheel.now = system.now = time
            hook_scheduled(request, queue, busy_cycles, time)
            seq = wheel._seq
            count = wheel._count
        # push (data_end, _EV_BANK_FREE) and (completion, _EV_DONE)
        seq += 2
        count += 2
        if data_end - time < span:
            slot = data_end % span
            bucket = buckets[slot]
            if bucket is None:
                buckets[slot] = [(1, channel_id, bank_id)]
                group = slot >> 6
                lo = occ_lo[group]
                occ_lo[group] = lo | (1 << (slot & 63))
                if not lo:
                    wheel._occ_hi |= 1 << group
            else:
                bucket.append((1, channel_id, bank_id))
        else:
            heappush(overflow, (data_end, seq - 1, (1, channel_id, bank_id)))
        if completion - time < span:
            slot = completion % span
            bucket = buckets[slot]
            if bucket is None:
                buckets[slot] = [(2, request, 0)]
                group = slot >> 6
                lo = occ_lo[group]
                occ_lo[group] = lo | (1 << (slot & 63))
                if not lo:
                    wheel._occ_hi |= 1 << group
            else:
                bucket.append((2, request, 0))
        else:
            heappush(overflow, (completion, seq, (2, request, 0)))

    def issue_miss(tid, time):
        # System._issue_miss + ThreadModel.try_issue/issue_gap +
        # AddressStream.next_location + monitor arrival, inlined
        nonlocal seq, count
        if phase_mean > 0 and time >= phase_end[tid]:
            maybe_phase(tid, time)
        length = rob_len[tid]
        if length >= max_out[tid]:
            window_blocked[tid] = True
            return  # window full: the retry happens at completion
        window_blocked[tid] = False
        issue_id = issued_col[tid] + 1
        issued_col[tid] = issue_id
        if length == 0:
            head_id[tid] = issue_id
        credits[tid * MAXW + issue_id % MAXW] = pending_credit[tid]
        rob_len[tid] = length + 1
        last_issue[tid] = time
        # -- AddressStream.next_location
        addr = addrs[tid]
        pos = addr._pos
        if pos >= addr._spread:
            pos = 0
            spread_lo = addr._spread_lo
            if spread_lo == addr._spread_hi:
                addr._spread = spread_lo
            else:
                addr._spread = (
                    addr._spread_hi
                    if addr._rng.random() < addr._spread_frac
                    else spread_lo
                )
        gbank = (addr._base + pos) % num_banks
        addr._pos = pos + 1
        addr.accesses += 1
        last_row = addr._last_row
        last = last_row.get(gbank)
        if last is None:
            row = addr._rng.integers(num_rows)
            last_row[gbank] = row
        else:
            # BufferedPCG64.random(), buffer hit inlined
            rng = addr._rng
            i = rng._i
            if i < rng._n:
                rng._i = i + 1
                draw = (rng._buf[i] >> 11) * _INV_2_53
            else:
                draw = rng.random()
            if draw < addr._reuse_prob:
                addr.row_reuses += 1
                row = last
            else:
                row = (last + 1) % num_rows
                last_row[gbank] = row
                last_row.pop(addr._base, None)
                addr._base = (addr._base + 1) % num_banks
                addr.drifts += 1
        channel_id = gbank // banks_per_channel
        bank_id = gbank % banks_per_channel
        # -- enqueue + monitor arrival
        request = MemoryRequest(
            tid, channel_id, bank_id, row, time, issue_id
        )
        queues_by_ch[channel_id][bank_id].append(request)
        shadow = shadow_rows[channel_id][tid]
        shadow_accesses[channel_id][tid] += 1
        l_accesses[tid] += 1
        if shadow.get(bank_id) == row:
            shadow_hits[channel_id][tid] += 1
            l_hits[tid] += 1
        shadow[bank_id] = row
        dt = time - last_update[tid]
        if dt > 0 and outstanding[tid] > 0:
            weighted = active_banks[tid] * dt
            monitor._blp_integral[tid] += weighted
            monitor._busy_time[tid] += dt
            l_blp[tid] += weighted
            l_busy[tid] += dt
        last_update[tid] = time
        gbank_key = channel_id * banks_per_channel + bank_id
        counts = bank_outstanding[tid]
        bank_count = counts.get(gbank_key, 0) + 1
        counts[gbank_key] = bank_count
        if bank_count == 1:
            active_banks[tid] += 1
        outstanding[tid] += 1
        if hook_arrival is not None:
            wheel._seq = seq
            wheel._count = count
            wheel.now = system.now = time
            hook_arrival(request, time)
            seq = wheel._seq
            count = wheel._count
        try_schedule(channel_id, bank_id, time)
        # -- ThreadModel.issue_gap
        gap = current_ipm[tid] / ipc_peak
        jitter = jitters[tid]
        i = jitter._i
        if i < jitter._n:  # BufferedUniform.next(), buffer hit inlined
            jitter._i = i + 1
            gap *= jitter._buf[i]
        else:
            gap *= jitter.next()
        gap += gap_carry[tid]
        cycles = int(gap)
        if cycles < 1:
            cycles = 1
        gap_carry[tid] = gap - cycles
        pending_credit[tid] = cycles * ipc_peak
        program_time[tid] += cycles
        # push (time + cycles, _EV_ISSUE)
        seq += 1
        count += 1
        if cycles < span:
            slot = (time + cycles) % span
            bucket = buckets[slot]
            if bucket is None:
                buckets[slot] = [(0, tid, 0)]
                group = slot >> 6
                lo = occ_lo[group]
                occ_lo[group] = lo | (1 << (slot & 63))
                if not lo:
                    wheel._occ_hi |= 1 << group
            else:
                bucket.append((0, tid, 0))
        else:
            heappush(overflow, (time + cycles, seq, (0, tid, 0)))

    def complete(request, time):
        # System._complete_request + monitor complete +
        # ThreadModel.on_request_completed + ThreadStats.retire, inlined
        nonlocal seq, count
        tid = request.thread_id
        dt = time - last_update[tid]
        if dt > 0 and outstanding[tid] > 0:
            weighted = active_banks[tid] * dt
            monitor._blp_integral[tid] += weighted
            monitor._busy_time[tid] += dt
            l_blp[tid] += weighted
            l_busy[tid] += dt
        last_update[tid] = time
        gbank_key = (
            request.channel_id * banks_per_channel + request.bank_id
        )
        counts = bank_outstanding[tid]
        bank_count = counts[gbank_key] - 1
        if bank_count:
            counts[gbank_key] = bank_count
        else:
            del counts[gbank_key]
            active_banks[tid] -= 1
        outstanding[tid] -= 1
        if hook_complete is not None:
            wheel._seq = seq
            wheel._count = count
            wheel.now = system.now = time
            hook_complete(request, time)
            seq = wheel._seq
            count = wheel._count
        latency_sum[tid] += time - request.arrival
        latency_count[tid] += 1
        length = rob_len[tid]
        if not length:
            raise RuntimeError(
                f"thread {tid} completion with no outstanding misses"
            )
        head = head_id[tid]
        mask = completed_mask[tid] | (1 << (request.episode_id - head))
        if mask & 1:
            freed = 0
            credit_acc = instr_credit[tid]
            thread_stats = stats[tid]
            credit_base = tid * MAXW
            while mask & 1:
                credit_acc += credits[credit_base + (head + freed) % MAXW]
                mask >>= 1
                freed += 1
                instrs = int(credit_acc)
                credit_acc -= instrs
                thread_stats.instructions += instrs
                thread_stats.misses += 1
                thread_stats.quantum_instructions += instrs
                thread_stats.quantum_misses += 1
                thread_stats.episodes += 1
            head_id[tid] = head + freed
            rob_len[tid] = length - freed
            instr_credit[tid] = credit_acc
            completed_mask[tid] = mask
            if window_blocked[tid]:
                # the window was stalled on this completion; the next
                # miss's compute is already done — issue immediately
                window_blocked[tid] = False
                issue_miss(tid, time)
        else:
            completed_mask[tid] = mask

    # -- the drain loop (TimingWheel.drain with dispatch fused in) -----
    while count:
        edge = time + span
        while overflow and overflow[0][0] < edge:
            o_time, o_seq, entry = heappop(overflow)
            if o_seq & _SAMPLE_FLAG:  # pragma: no cover
                raise RuntimeError(
                    "sample event on the bare fast path (no sampler bound)"
                )
            slot = o_time % span
            bucket = buckets[slot]
            if bucket is None:
                buckets[slot] = [entry]
                group = slot >> 6
                lo = occ_lo[group]
                occ_lo[group] = lo | (1 << (slot & 63))
                if not lo:
                    wheel._occ_hi |= 1 << group
            else:
                bucket.append(entry)
        cursor = time % span
        bits = occ_lo[cursor >> 6] >> (cursor & 63)
        if bits:  # next populated slot within this 64-slot group
            delta = (bits & -bits).bit_length() - 1
        else:
            delta = scan_occupancy(wheel._occ_hi, occ_lo, cursor, span)
        if delta < 0:
            # window exhausted: every remaining event sits in overflow
            if overflow and overflow[0][0] <= limit:
                time = wheel.now = overflow[0][0]
                continue
            wheel.now = limit + 1
            break
        time += delta
        if time > limit:
            wheel.now = limit + 1
            break
        slot = time % span
        bucket = buckets[slot]
        for kind, payload, aux in bucket:  # appends are picked up live
            if kind == 0:       # _EV_ISSUE
                issue_miss(payload, time)
            elif kind == 2:     # _EV_DONE
                complete(payload, time)
            elif kind == 1:     # _EV_BANK_FREE
                try_schedule(payload, aux, time)
            elif kind == 3:     # _EV_QUANTUM
                wheel._seq = seq
                wheel._count = count
                wheel.now = system.now = time
                quantum_boundary()
                seq = wheel._seq
                count = wheel._count
            elif kind == 4:     # _EV_TIMER
                wheel._seq = seq
                wheel._count = count
                wheel.now = system.now = time
                on_timer(time, payload)
                seq = wheel._seq
                count = wheel._count
            else:  # pragma: no cover - PHIT/SAMPLE need prefetch/sampler
                raise RuntimeError(
                    f"event kind {kind} cannot occur on the bare fast path"
                )
        count -= len(bucket)
        buckets[slot] = None
        group = slot >> 6
        lo = occ_lo[group] & ~(1 << (slot & 63))
        occ_lo[group] = lo
        if not lo:
            wheel._occ_hi &= ~(1 << group)
        time += 1
    else:
        # queue fully drained before the limit; park like the wheel
        wheel.now = limit + 1
    wheel._seq = seq
    wheel._count = count
