"""repro.engine — the vectorized fast simulation backend.

The simulation core has two interchangeable engines selected by
``SimConfig.backend`` (overridable with the ``REPRO_BACKEND``
environment variable):

* ``reference`` — the original engine: per-thread
  :class:`~repro.cpu.thread.ThreadModel` objects, scalar numpy RNG
  draws, and a ``heapq`` event loop.  This is the semantic ground
  truth; every golden fingerprint was minted on it.
* ``fast`` — this package: the per-thread CPU sliding-window model
  restructured into struct-of-arrays batch form
  (:mod:`repro.engine.cpu`) fed by block-buffered, bit-exact PCG64
  draws (:mod:`repro.engine.rng`), and the event heap replaced by a
  bucketed timing wheel (:mod:`repro.engine.wheel`) whose pop order
  reproduces the heap's ``(time, seq)`` tie-break exactly.

The two backends are **bit-identical by contract**: identical
:class:`~repro.sim.results.RunResult`, telemetry counters and span
tilings on every input.  The contract is enforced by the cross-backend
parity matrix (``tests/engine/test_backend_parity.py``), the
hypothesis property suite, and ``scripts/update_goldens.py --check
--backend both``.  Because of that contract, ``backend`` is excluded
from ``SimConfig.cache_key()`` and the campaign content hashes —
alone-IPC caches and campaign stores are shared across backends.

See docs/PERFORMANCE.md ("Backends and the parity contract").
"""

from __future__ import annotations

import os

#: Environment variable overriding ``SimConfig.backend``.
BACKEND_ENV = "REPRO_BACKEND"

#: Recognised backend names.
BACKENDS = ("reference", "fast")

try:  # numpy is a hard dependency of the core today, but the fast
    # backend is declared against the ``repro[fast]`` extra so a
    # future numpy-free core keeps a clean skip path.
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    HAS_NUMPY = False


def resolve_backend(configured: str) -> str:
    """The backend a run should use: env override, then the config.

    Raises ``ValueError`` on an unknown name in either source, and
    when the fast backend is requested without numpy installed.
    """
    backend = os.environ.get(BACKEND_ENV) or configured
    if backend not in BACKENDS:
        source = BACKEND_ENV if os.environ.get(BACKEND_ENV) else "config"
        raise ValueError(
            f"unknown backend {backend!r} from {source} "
            f"(expected one of {BACKENDS})"
        )
    if backend == "fast" and not HAS_NUMPY:
        raise RuntimeError(
            "backend 'fast' requires numpy — install repro[fast]"
        )
    return backend


from repro.engine.wheel import TimingWheel  # noqa: E402

if HAS_NUMPY:
    from repro.engine.rng import BufferedPCG64  # noqa: E402
else:  # pragma: no cover - exercised only without numpy
    BufferedPCG64 = None  # the wheel itself is numpy-free

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "HAS_NUMPY",
    "BufferedPCG64",
    "TimingWheel",
    "resolve_backend",
]
