"""Block-buffered, bit-exact reimplementation of the numpy draws the
simulator makes on its hot path.

The reference engine draws one value at a time from
``numpy.random.Generator`` (``random()``, ``integers(n)``,
``uniform(a, b)``).  Each scalar call costs ~0.5–1.5 µs of argument
parsing and C dispatch — the dominant cost of the CPU model at ~2.5
draws per simulated miss.  :class:`BufferedPCG64` removes that cost
while producing the **same bit stream**:

* raw 64-bit words are pulled from the *same* PCG64 generator in
  blocks via ``Generator.integers(0, 2**64, dtype=uint64, size=N)``,
  which consumes the underlying bit stream exactly like ``N``
  sequential ``next_uint64`` calls;
* ``random()`` is numpy's double conversion, ``(u64 >> 11) * 2**-53``;
* ``integers(n)`` is numpy's Lemire rejection sampler, including the
  32-bit fast path for ranges below ``2**32`` *and* PCG64's
  half-word buffering (``next_uint32`` hands out the low half of a
  fresh 64-bit word first and banks the high half);
* ``uniform(a, b)`` is ``a + (b - a) * random()`` — the same IEEE
  operations numpy's ``random_uniform`` performs.

Bit-exactness against scalar numpy is asserted by
``tests/engine/test_rng.py`` over interleaved call patterns, and —
transitively — by every cross-backend parity test: a single divergent
draw would cascade into a fingerprint mismatch within one quantum.
"""

from __future__ import annotations

import numpy as np

#: Raw words fetched per refill.  Big enough to amortise the numpy
#: call, small enough that a short run does not over-draw (the unused
#: tail of a block is simply discarded with the generator).
BLOCK = 1024

_U32_MASK = 0xFFFFFFFF
_U64_MASK = 0xFFFFFFFFFFFFFFFF
#: numpy's uint64 -> double conversion constant (53-bit mantissa).
_INV_2_53 = 1.0 / (1 << 53)


class BufferedPCG64:
    """Bit-exact buffered façade over one ``numpy.random.Generator``.

    The wrapped generator must not be used directly once buffering
    starts — the buffer *is* its stream position, pre-fetched.
    """

    __slots__ = ("_rng", "_buf", "_i", "_n", "_has32", "_half", "_block")

    def __init__(self, rng: np.random.Generator, block: int = BLOCK):
        self._rng = rng
        self._block = block
        self._buf = ()
        self._i = 0
        self._n = 0
        # PCG64's next_uint32 half-word bank (numpy pcg64_next32).
        self._has32 = False
        self._half = 0

    def _refill(self) -> None:
        self._buf = self._rng.integers(
            0, 1 << 64, size=self._block, dtype=np.uint64
        ).tolist()
        self._i = 0
        self._n = len(self._buf)

    # -- raw words ------------------------------------------------------

    def next64(self) -> int:
        """The next raw 64-bit word of the stream."""
        i = self._i
        if i >= self._n:
            self._refill()
            i = 0
        self._i = i + 1
        return self._buf[i]

    def next32(self) -> int:
        """numpy ``next_uint32``: low half first, high half banked."""
        if self._has32:
            self._has32 = False
            return self._half
        word = self.next64()
        self._has32 = True
        self._half = word >> 32
        return word & _U32_MASK

    # -- distributions --------------------------------------------------

    def random(self) -> float:
        """``Generator.random()``: a double in [0, 1)."""
        i = self._i
        if i >= self._n:
            self._refill()
            i = 0
        self._i = i + 1
        return (self._buf[i] >> 11) * _INV_2_53

    def uniform(self, low: float, high: float) -> float:
        """``Generator.uniform(low, high)`` (scalar)."""
        return low + (high - low) * self.random()

    def integers(self, n: int) -> int:
        """``Generator.integers(n)``: uniform int in [0, n).

        Follows numpy's ``random_bounded_uint64_fill``: Lemire
        rejection on 32-bit words when the range fits (the simulator's
        ranges — rows, banks — always do), 64-bit words otherwise.
        """
        rng = n - 1  # numpy parameterises by the inclusive range
        if rng <= 0:
            return 0  # numpy short-circuits a zero range without a draw
        if rng <= _U32_MASK:
            rng_excl = rng + 1
            m = self.next32() * rng_excl
            leftover = m & _U32_MASK
            if leftover < rng_excl:
                threshold = (_U32_MASK - rng) % rng_excl
                while leftover < threshold:
                    m = self.next32() * rng_excl
                    leftover = m & _U32_MASK
            return m >> 32
        rng_excl = rng + 1
        m = self.next64() * rng_excl
        leftover = m & _U64_MASK
        if leftover < rng_excl:
            threshold = (_U64_MASK - rng) % rng_excl
            while leftover < threshold:
                m = self.next64() * rng_excl
                leftover = m & _U64_MASK
        return m >> 64


class BufferedUniform:
    """Pre-drawn ``uniform(low, high)`` stream for one generator.

    Used for the issue-gap jitter, whose generator serves *only*
    homogeneous ``uniform(0.9, 1.1)`` calls: a whole block is drawn
    with one vectorized ``Generator.uniform`` call (numpy fills the
    batch from the same bit stream as sequential scalar calls) and
    handed out by index.
    """

    __slots__ = ("_rng", "_low", "_high", "_buf", "_i", "_n", "_block")

    def __init__(
        self,
        rng: np.random.Generator,
        low: float,
        high: float,
        block: int = BLOCK,
    ):
        self._rng = rng
        self._low = low
        self._high = high
        self._block = block
        self._buf = ()
        self._i = 0
        self._n = 0

    def next(self) -> float:
        i = self._i
        if i >= self._n:
            self._buf = self._rng.uniform(
                self._low, self._high, size=self._block
            ).tolist()
            i = 0
            self._n = self._block
        self._i = i + 1
        return self._buf[i]
