"""Bucketed timing wheel — the fast backend's event core.

Replaces the reference engine's ``heapq`` with per-cycle ready-lists:
events land in the bucket of their cycle (``time % horizon`` on a
ring) in push order, and the wheel drains cycles in increasing order.
Per-event cost drops from two O(log n) heap operations on 5-tuples to
one list append plus one indexed read.

**Ordering contract.**  The reference heap pops events in ``(time,
seq)`` order, where ``seq`` is the global push counter — so within a
cycle, events run in push order, except telemetry *sample* events,
whose seq is offset beyond any reachable ordinary seq
(``repro.sim.system._SAMPLE_SEQ_BASE``) so they always run last in
their cycle.  The wheel reproduces this exactly with two lists per
bucket: ordinary events drain first in append order (appends landing
in the *current* cycle while it drains are picked up, matching the
heap), then sample events.  ``tests/engine/test_wheel.py`` pins the
equivalence against a live ``heapq`` on randomized schedules,
including wrap-around at bucket-horizon boundaries.

**Finding work.**  Simulated events are sparse in cycles (well under
one per cycle at the default scale), so the drain must not walk empty
buckets.  Populated slots are tracked in a two-level bitmap — a
64-bit-per-group summary ``_occ_hi`` over per-group slot masks
``_occ_lo`` — and the next populated cycle falls out of two
trailing-zero counts on machine-word-sized ints.

Events beyond the wheel's span go to a small overflow heap keyed
``(time, seq)`` and migrate into buckets as the cursor advances —
always *before* any same-cycle direct push can occur (a cycle becomes
directly pushable only once it is inside the window, and migration
runs whenever the window moves), so heap order is preserved across
the horizon boundary: an overflow event's seq is necessarily smaller
than the seq of any event pushed after its cycle entered the window.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

#: Default wheel span in cycles.  Much larger than a DRAM service
#: round trip, so only quantum boundaries, scheduler timers and very
#: sparse threads' issue gaps overflow.
DEFAULT_HORIZON = 4096

#: Overflow-heap seq offset marking sample-class events (sorts after
#: every ordinary seq at the same time, like _SAMPLE_SEQ_BASE).
_SAMPLE_FLAG = 1 << 62


def scan_occupancy(occ_hi: int, occ_lo: List[int], slot: int,
                   span: int) -> int:
    """Cycles from ``slot`` to the next populated slot, ring order.

    ``slot`` itself counts as distance 0.  Returns -1 when the bitmap
    is empty.  The ring is walked as slots ``slot..span-1`` then the
    wrapped ``0..slot-1`` — matching cycle order, since in-window
    cycles wrap the slot ring at most once.
    """
    bit = slot & 63
    group = slot >> 6
    bits = occ_lo[group] >> bit
    if bits:
        return (bits & -bits).bit_length() - 1
    hi = occ_hi >> (group + 1)
    if hi:
        g = group + 1 + ((hi & -hi).bit_length() - 1)
        lo = occ_lo[g]
        return (g << 6) - slot + (lo & -lo).bit_length() - 1
    # wrapped region: groups before this one, then this group's low bits
    hi = occ_hi & ((1 << group) - 1)
    if hi:
        g = (hi & -hi).bit_length() - 1
        lo = occ_lo[g]
        return span - slot + (g << 6) + (lo & -lo).bit_length() - 1
    bits = occ_lo[group] & ((1 << bit) - 1)
    if bits:
        return span - slot + (group << 6) + (bits & -bits).bit_length() - 1
    return -1


class TimingWheel:
    """Cycle-bucketed event queue with heap-identical pop order.

    Entries are ``(kind, payload, aux)`` triples (the sim's event
    payload without the time/seq bookkeeping the heap tuples carried).
    """

    __slots__ = (
        "horizon", "now", "_ordinary", "_samples", "_overflow",
        "_count", "_seq", "_occ_hi", "_occ_lo",
    )

    def __init__(self, horizon: int = DEFAULT_HORIZON, now: int = 0):
        if horizon < 1:
            raise ValueError("wheel horizon must be >= 1")
        self.horizon = horizon
        #: the earliest cycle still drainable; pushes may not target
        #: earlier cycles (the reference heap never receives them either)
        self.now = now
        self._ordinary: List[Optional[list]] = [None] * horizon
        self._samples: List[Optional[list]] = [None] * horizon
        self._overflow: List[Tuple[int, int, tuple]] = []
        self._count = 0
        self._seq = 0
        # two-level occupancy bitmap over slots: _occ_lo[g] bit b set
        # iff slot g*64+b holds events; _occ_hi bit g summarises group g
        self._occ_hi = 0
        self._occ_lo = [0] * ((horizon + 63) >> 6)

    def __len__(self) -> int:
        return self._count

    def _mark(self, slot: int) -> None:
        group = slot >> 6
        lo = self._occ_lo[group]
        if not lo:
            self._occ_hi |= 1 << group
        self._occ_lo[group] = lo | (1 << (slot & 63))

    def _clear(self, slot: int) -> None:
        group = slot >> 6
        lo = self._occ_lo[group] & ~(1 << (slot & 63))
        self._occ_lo[group] = lo
        if not lo:
            self._occ_hi &= ~(1 << group)

    # -- pushes ---------------------------------------------------------

    def push(self, time: int, kind: int, payload=None, aux: int = 0) -> None:
        """Queue an ordinary event at ``time`` (>= the current cycle)."""
        self._seq += 1
        self._count += 1
        if time - self.now < self.horizon:
            if time < self.now:
                raise ValueError(
                    f"event at {time} pushed while wheel is at {self.now}"
                )
            slot = time % self.horizon
            bucket = self._ordinary[slot]
            if bucket is None:
                self._ordinary[slot] = [(kind, payload, aux)]
                self._mark(slot)
            else:
                bucket.append((kind, payload, aux))
        else:
            heapq.heappush(
                self._overflow, (time, self._seq, (kind, payload, aux))
            )

    def push_sample(self, time: int, kind: int, payload=None,
                    aux: int = 0) -> None:
        """Queue a sample-class event: runs after all ordinary events
        of its cycle (the heap's ``_SAMPLE_SEQ_BASE`` offset)."""
        self._seq += 1
        self._count += 1
        if time - self.now < self.horizon:
            if time < self.now:
                raise ValueError(
                    f"sample at {time} pushed while wheel is at {self.now}"
                )
            slot = time % self.horizon
            bucket = self._samples[slot]
            if bucket is None:
                self._samples[slot] = [(kind, payload, aux)]
                self._mark(slot)
            else:
                bucket.append((kind, payload, aux))
        else:
            heapq.heappush(
                self._overflow,
                (time, self._seq | _SAMPLE_FLAG, (kind, payload, aux)),
            )

    # -- introspection --------------------------------------------------

    def pending_events(self) -> List[Tuple[int, int, object, int]]:
        """Snapshot of every queued event as ``(time, kind, payload,
        aux)`` in drain order — the wheel-side equivalent of sorting
        the reference heap by ``(time, seq)``.

        Read-only (buckets and the overflow heap are left untouched);
        used by the divergence probe (:mod:`repro.diverge`) to compare
        the pending-event multiset across backends.  Bucket slots map
        back to absolute cycles through the cursor (each occupied slot
        holds exactly one in-window cycle), overflow entries carry
        their cycle explicitly, and sample-class events sort after
        ordinary events of their cycle, matching the drain.
        """
        span = self.horizon
        now = self.now
        entries = []
        for slot in range(span):
            ordinary = self._ordinary[slot]
            samples = self._samples[slot]
            if ordinary is None and samples is None:
                continue
            time = now + ((slot - now) % span)
            if ordinary is not None:
                for index, (kind, payload, aux) in enumerate(ordinary):
                    entries.append((time, 0, 0, index, kind, payload, aux))
            if samples is not None:
                for index, (kind, payload, aux) in enumerate(samples):
                    entries.append((time, 1, 0, index, kind, payload, aux))
        # At rest every overflow cycle is at or beyond the migration
        # edge, hence after every bucketed cycle — the source rank only
        # breaks (impossible) exact ties deterministically.
        for o_time, o_seq, (kind, payload, aux) in self._overflow:
            sample = 1 if o_seq & _SAMPLE_FLAG else 0
            entries.append(
                (o_time, sample, 1, o_seq & ~_SAMPLE_FLAG, kind, payload, aux)
            )
        entries.sort(key=lambda entry: entry[:4])
        return [
            (time, kind, payload, aux)
            for time, _sample, _src, _idx, kind, payload, aux in entries
        ]

    # -- draining -------------------------------------------------------

    def drain(self, handler, limit: int) -> None:
        """Deliver every event with ``time <= limit`` to ``handler``.

        ``handler(time, kind, payload, aux)`` may push new events,
        same-cycle ordinary pushes included.  Events later than
        ``limit`` stay queued, exactly like the reference loop's
        ``while events[0][0] <= horizon`` guard.  On return the cursor
        parks at ``limit + 1`` — every cycle up to ``limit`` is over,
        whether the queue emptied early or not.
        """
        ordinary = self._ordinary
        samples = self._samples
        span = self.horizon
        overflow = self._overflow
        occ_lo = self._occ_lo
        time = self.now
        while self._count:
            # bring every overflow event whose cycle is now in window
            # into its bucket (seq order via the heap, ahead of any
            # future direct push to those cycles)
            edge = time + span
            while overflow and overflow[0][0] < edge:
                o_time, o_seq, entry = heapq.heappop(overflow)
                target = samples if o_seq & _SAMPLE_FLAG else ordinary
                slot = o_time % span
                bucket = target[slot]
                if bucket is None:
                    target[slot] = [entry]
                    self._mark(slot)
                else:
                    bucket.append(entry)
            # hop straight to the next populated cycle
            delta = scan_occupancy(self._occ_hi, occ_lo, time % span, span)
            if delta < 0:
                # window exhausted: every remaining event sits in
                # overflow — jump straight to the next one
                if overflow and overflow[0][0] <= limit:
                    time = self.now = overflow[0][0]
                    continue
                self.now = limit + 1
                return
            next_time = time + delta
            if next_time > limit:
                # park: the rest is beyond the limit (overflow is even
                # later — it all sits at >= edge > next_time)
                self.now = limit + 1
                return
            time = self.now = next_time
            slot = time % span
            bucket = ordinary[slot]
            if bucket is not None:
                index = 0
                # index loop: the handler may append same-cycle events
                while index < len(bucket):
                    kind, payload, aux = bucket[index]
                    index += 1
                    self._count -= 1
                    handler(time, kind, payload, aux)
                ordinary[slot] = None
            bucket = samples[slot]
            if bucket is not None:
                index = 0
                while index < len(bucket):
                    kind, payload, aux = bucket[index]
                    index += 1
                    self._count -= 1
                    handler(time, kind, payload, aux)
                samples[slot] = None
                if ordinary[slot] is not None:  # pragma: no cover
                    # a sample handler pushed an ordinary event into
                    # its own cycle — the heap would order it *before*
                    # the remaining samples, which the wheel cannot
                    raise RuntimeError(
                        f"ordinary event pushed at {time} during sample "
                        "processing; wheel ordering cannot honour it"
                    )
            self._clear(slot)
            time += 1
            self.now = time
        self.now = limit + 1
