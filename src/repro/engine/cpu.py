"""Struct-of-arrays CPU model — the fast backend's thread layer.

The reference :class:`~repro.cpu.thread.ThreadModel` keeps each
hardware context's sliding-window state in its own object (a deque of
``(issue id, credit)`` pairs, a completed-id set) and draws its RNG
one scalar numpy call at a time.  This module restructures that state
into one :class:`CpuBatch` holding **parallel arrays indexed by
thread id** — the MLP window as flat credit/mask arrays, issue and
retire bookkeeping as columns — and feeds it from block-buffered
bit-exact RNG streams (:mod:`repro.engine.rng`):

* the issue-gap jitter stream is pre-drawn in vectorized
  ``uniform(0.9, 1.1)`` blocks (numpy fills a batch from the same bit
  stream as sequential scalar calls);
* the address stream's interleaved ``random()`` / ``integers(n)``
  draws come from a :class:`~repro.engine.rng.BufferedPCG64` over raw
  64-bit blocks.

Because issue ids are consecutive per thread, the reference's
``(deque of ids, completed set)`` collapses into a head id, a length,
and a *completion bitmask* relative to the window head — ``popleft
while head completed`` becomes mask shifts.

:class:`FastThreadModel` is a view over one ``CpuBatch`` column
implementing the exact ``ThreadModel`` interface (``try_issue`` /
``issue_gap`` / ``on_request_completed`` / ``finalize`` plus the
telemetry surface), so the observed engine path, the monitor, the
epoch sampler and the profiler drive fast threads unchanged.  The
bare fast loop (:mod:`repro.engine.fast`) reaches past the views and
works on the arrays directly.

Semantics are line-for-line those of the reference model — same
branch structure, same float operations in the same order — which the
cross-backend parity matrix then pins bit-identical.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.config import SimConfig
from repro.cpu.stats import ThreadStats
from repro.cpu.thread import MAX_OUTSTANDING_MISSES
from repro.engine.rng import BufferedPCG64, BufferedUniform
from repro.workloads.spec import BenchmarkSpec


class FastAddressStream:
    """Bit-exact :class:`~repro.workloads.synthetic.AddressStream` on
    a buffered PCG64 stream.

    Same draw sequence, same arithmetic; only the scalar numpy call
    overhead is gone.
    """

    __slots__ = (
        "spec", "config", "_rng", "_window", "_base", "_reuse_prob",
        "_last_row", "_spread", "_pos", "accesses", "row_reuses",
        "drifts", "_num_banks", "_num_rows", "_banks_per_channel",
        "_spread_lo", "_spread_hi", "_spread_frac",
    )

    def __init__(
        self,
        spec: BenchmarkSpec,
        config: SimConfig,
        rng: np.random.Generator,
    ):
        import math

        self.spec = spec
        self.config = config
        self._rng = BufferedPCG64(rng)
        num_banks = config.num_banks
        self._num_banks = num_banks
        self._num_rows = config.num_rows
        self._banks_per_channel = config.banks_per_channel
        self._window = min(num_banks, max(1, math.ceil(spec.blp)))
        self._base = self._rng.integers(num_banks)
        self._reuse_prob = 2.0 * spec.rbl / (1.0 + spec.rbl)
        self._last_row = {}
        # spread sampling constants (reference recomputes them per
        # call from the same immutable spec; hoisted here)
        target = min(spec.blp, float(self._window))
        target = max(1.0, target)
        self._spread_lo = math.floor(target)
        self._spread_hi = math.ceil(target)
        self._spread_frac = target - self._spread_lo
        self._spread = self._sample_spread()
        self._pos = 0
        self.accesses = 0
        self.row_reuses = 0
        self.drifts = 0

    def _sample_spread(self) -> int:
        if self._spread_lo == self._spread_hi:
            return self._spread_lo
        return (
            self._spread_hi
            if self._rng.random() < self._spread_frac
            else self._spread_lo
        )

    def next_location(self) -> Tuple[int, int, int]:
        """DRAM target of the thread's next cache miss."""
        if self._pos >= self._spread:
            self._pos = 0
            self._spread = self._sample_spread()
        gbank = (self._base + self._pos) % self._num_banks
        self._pos += 1
        # inline of the reference _row_for + _drift
        self.accesses += 1
        last_row = self._last_row
        last = last_row.get(gbank)
        if last is None:
            row = self._rng.integers(self._num_rows)
            last_row[gbank] = row
        elif self._rng.random() < self._reuse_prob:
            self.row_reuses += 1
            row = last
        else:
            row = (last + 1) % self._num_rows
            last_row[gbank] = row
            # row exhausted: the bank window drifts by one
            last_row.pop(self._base, None)
            self._base = (self._base + 1) % self._num_banks
            self.drifts += 1
        return (
            gbank // self._banks_per_channel,
            gbank % self._banks_per_channel,
            row,
        )

    @property
    def measured_reuse_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.row_reuses / self.accesses


class CpuBatch:
    """All threads' sliding-window state as parallel per-tid columns.

    Hot integer/float scalars live in plain Python lists (fastest
    per-element access in CPython); the MLP window's retirement
    credits live in one flat row-major array of
    ``MAX_OUTSTANDING_MISSES`` slots per thread, addressed as a ring.
    RNG state is one buffered jitter stream and one buffered address
    stream per thread.
    """

    __slots__ = (
        "config", "specs", "weights", "stats", "streams",
        "issued", "head_id", "rob_len", "completed_mask",
        "pending_credit", "gap_carry", "instr_credit", "program_time",
        "last_issue_time", "current_ipm", "instrs_per_miss",
        "max_outstanding", "window_blocked", "phase_end",
        "phase_multiplier", "credits", "jitter", "addr", "phase_rng",
        "ipc_peak", "window_size", "phase_mean",
    )

    def __init__(
        self,
        specs: List[BenchmarkSpec],
        config: SimConfig,
        seed: int,
        weights: List[int],
        streams: List[int],
    ):
        n = len(specs)
        for spec in specs:
            if spec.mpki <= 0:
                raise ValueError(
                    f"benchmark {spec.name} must have positive MPKI"
                )
        for weight in weights:
            if weight < 1:
                raise ValueError("thread weight must be >= 1")
        self.config = config
        self.specs = list(specs)
        self.weights = list(weights)
        self.streams = list(streams)
        self.stats = [ThreadStats() for _ in range(n)]
        self.ipc_peak = config.ipc_peak
        self.window_size = config.window_size
        self.phase_mean = config.phase_mean_cycles
        self.issued = [0] * n
        self.head_id = [1] * n          # issue id at the window head
        self.rob_len = [0] * n
        self.completed_mask = [0] * n   # bit k: head_id + k completed
        self.instrs_per_miss = [1000.0 / s.mpki for s in specs]
        self.current_ipm = list(self.instrs_per_miss)
        self.pending_credit = list(self.instrs_per_miss)
        self.gap_carry = [0.0] * n
        self.instr_credit = [0.0] * n
        self.program_time = [0] * n
        self.last_issue_time = [0] * n
        self.window_blocked = [False] * n
        self.phase_end = [0] * n
        self.phase_multiplier = [1.0] * n
        self.max_outstanding = [
            self._window_limit(tid) for tid in range(n)
        ]
        # MLP window: per-thread ring of retirement credits
        self.credits = [0.0] * (n * MAX_OUTSTANDING_MISSES)
        # RNG streams — same seeding tuples as the reference model
        self.jitter = [
            BufferedUniform(
                np.random.default_rng((seed, stream, 0x7E)), 0.9, 1.1
            )
            for stream in streams
        ]
        self.phase_rng = [
            np.random.default_rng((seed, stream, 0xF5))
            for stream in streams
        ]
        self.addr = [
            FastAddressStream(
                spec, config, np.random.default_rng((seed, stream, 0xAD))
            )
            for spec, stream in zip(specs, streams)
        ]

    def _window_limit(self, tid: int) -> int:
        return max(
            1,
            min(
                MAX_OUTSTANDING_MISSES,
                int(self.window_size // max(1.0, self.current_ipm[tid])),
            ),
        )

    # -- the model, one operation per column ---------------------------
    # These are the reference ThreadModel's methods with `self.x`
    # replaced by `column[tid]`; the bare fast loop inlines the same
    # accesses against cached locals.

    def maybe_change_phase(self, tid: int, now: int) -> None:
        mean = self.phase_mean
        if mean <= 0 or now < self.phase_end[tid]:
            return
        rng = self.phase_rng[tid]
        self.phase_multiplier[tid] = multiplier = float(
            rng.choice((0.5, 1.0, 2.0))
        )
        self.current_ipm[tid] = self.instrs_per_miss[tid] / multiplier
        self.max_outstanding[tid] = self._window_limit(tid)
        self.phase_end[tid] = now + max(1, int(rng.exponential(mean)))

    def try_issue(self, tid: int, now: int) -> Optional[Tuple[int, int, int]]:
        self.maybe_change_phase(tid, now)
        if self.rob_len[tid] >= self.max_outstanding[tid]:
            self.window_blocked[tid] = True
            return None
        self.window_blocked[tid] = False
        issued = self.issued[tid] + 1
        self.issued[tid] = issued
        length = self.rob_len[tid]
        if length == 0:
            self.head_id[tid] = issued
        # ids in the window are consecutive, so id % window is a
        # collision-free ring slot
        self.credits[
            tid * MAX_OUTSTANDING_MISSES + issued % MAX_OUTSTANDING_MISSES
        ] = self.pending_credit[tid]
        self.rob_len[tid] = length + 1
        self.last_issue_time[tid] = now
        return self.addr[tid].next_location()

    def issue_gap(self, tid: int) -> int:
        gap = self.current_ipm[tid] / self.ipc_peak
        gap *= self.jitter[tid].next()
        gap += self.gap_carry[tid]
        cycles = int(gap)
        if cycles < 1:
            cycles = 1
        self.gap_carry[tid] = gap - cycles
        self.pending_credit[tid] = cycles * self.ipc_peak
        self.program_time[tid] += cycles
        return cycles

    def on_request_completed(self, tid: int, issue_id: int) -> bool:
        length = self.rob_len[tid]
        if not length:
            raise RuntimeError(
                f"thread {tid} completion with no outstanding misses"
            )
        head = self.head_id[tid]
        mask = self.completed_mask[tid] | (1 << (issue_id - head))
        freed = 0
        if mask & 1:
            credits = self.credits
            base = tid * MAX_OUTSTANDING_MISSES
            credit_acc = self.instr_credit[tid]
            stats = self.stats[tid]
            while mask & 1:
                credit_acc += credits[
                    base + (head + freed) % MAX_OUTSTANDING_MISSES
                ]
                mask >>= 1
                freed += 1
                instrs = int(credit_acc)
                credit_acc -= instrs
                stats.retire(instrs, 1)
            self.head_id[tid] = head + freed
            self.rob_len[tid] = length - freed
            self.instr_credit[tid] = credit_acc
        self.completed_mask[tid] = mask
        was_blocked = self.window_blocked[tid] and freed > 0
        if freed:
            self.window_blocked[tid] = False
        return was_blocked

    def finalize(self, tid: int, now: int) -> None:
        if self.rob_len[tid]:
            return
        elapsed = now - self.last_issue_time[tid]
        if elapsed < 0:
            elapsed = 0
        instrs = min(
            int(elapsed * self.ipc_peak), int(self.pending_credit[tid])
        )
        if instrs > 0:
            self.stats[tid].retire(instrs, 0)


class FastThreadModel:
    """One thread's view over a :class:`CpuBatch` column.

    Implements the reference ``ThreadModel`` interface so the observed
    engine path, monitor, sampler, profiler and results assembly work
    unchanged on the fast backend.
    """

    def __init__(self, batch: CpuBatch, tid: int):
        self._batch = batch
        self.thread_id = tid
        self.spec = batch.specs[tid]
        self.config = batch.config
        self.weight = batch.weights[tid]
        self.stats = batch.stats[tid]
        self.instrs_per_miss = batch.instrs_per_miss[tid]
        self._addr = batch.addr[tid]

    # -- reference-interface properties --------------------------------

    @property
    def issued(self) -> int:
        return self._batch.issued[self.thread_id]

    @property
    def outstanding(self) -> int:
        return self._batch.rob_len[self.thread_id]

    @property
    def window_blocked(self) -> bool:
        return self._batch.window_blocked[self.thread_id]

    @property
    def max_outstanding(self) -> int:
        return self._batch.max_outstanding[self.thread_id]

    @property
    def phase_multiplier(self) -> float:
        return self._batch.phase_multiplier[self.thread_id]

    @property
    def program_time(self) -> int:
        return self._batch.program_time[self.thread_id]

    def register_metrics(self, registry) -> None:
        labels = {"tid": self.thread_id}
        self.stats.register_metrics(registry, labels)
        registry.register(
            "cpu.outstanding_misses",
            lambda: self._batch.rob_len[self.thread_id], labels,
        )
        registry.register(
            "cpu.issued_misses",
            lambda: self._batch.issued[self.thread_id], labels,
        )

    # -- reference-interface operations --------------------------------

    def try_issue(self, now: int) -> Optional[Tuple[int, int, int]]:
        return self._batch.try_issue(self.thread_id, now)

    def issue_gap(self) -> int:
        return self._batch.issue_gap(self.thread_id)

    def on_request_completed(self, issue_id: int) -> bool:
        return self._batch.on_request_completed(self.thread_id, issue_id)

    def finalize(self, now: int) -> None:
        self._batch.finalize(self.thread_id, now)


def build_cpu_batch(
    specs, config: SimConfig, seed: int, weights, streams
) -> Tuple[CpuBatch, List[FastThreadModel]]:
    """The fast backend's thread layer for one system."""
    batch = CpuBatch(list(specs), config, seed, list(weights), list(streams))
    return batch, [FastThreadModel(batch, tid) for tid in range(len(specs))]
