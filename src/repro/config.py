"""System configuration for the TCM reproduction.

The defaults mirror Table 3 of the paper (24-core CMP, 4 memory
controllers, 4 banks per controller, DDR2-800 timing) with one
difference: time is scaled down so that pure-Python simulation stays
tractable.  The paper runs 100M-cycle simulations with 1M-cycle quanta;
we default to a 1/20 scale (see ``DEFAULT_SCALE``).  All quantum-relative
mechanisms are unaffected by the scale because per-quantum statistics
converge within a few thousand requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

#: Paper quantum is 1M cycles; we scale by this factor by default.
DEFAULT_SCALE = 1.0 / 20.0

#: Paper run length (100M cycles), used to derive scaled run lengths.
PAPER_RUN_CYCLES = 100_000_000
PAPER_QUANTUM_CYCLES = 1_000_000


@dataclass(frozen=True)
class DramTimings:
    """Service-time model derived from DDR2-800 (Micron MT47H128M8HQ-25).

    The paper's Table 3 gives tCL = tRCD = tRP = 15ns and BL/2 = 10ns,
    and quotes uncontended round-trip L2 miss latencies of 200 / 300 /
    400 CPU cycles for row-buffer hit / closed / conflict accesses,
    implying a 5 GHz core clock.  We express everything in CPU cycles.

    ``*_occupancy`` is how long the bank (and, for the burst portion,
    the channel data bus) is kept busy; ``fixed_overhead`` is the
    remaining round-trip latency (interconnect, controller, L2 fill)
    that does not occupy the bank.
    """

    t_cl: int = 75       # 15ns @ 5GHz
    t_rcd: int = 75
    t_rp: int = 75
    burst: int = 50      # BL/2 = 10ns @ 5GHz (32-byte cache block)
    fixed_overhead: int = 150
    #: Row-buffer management: "open" keeps the row latched after an
    #: access (the paper's policy — row hits possible), "closed"
    #: auto-precharges after every access (no hits, but no conflicts
    #: either; every access pays the activate).
    page_policy: str = "open"
    #: Detailed command-level constraints (DDR2-800, Micron -25E).
    #: Enabled by ``detailed``; the default service-time model matches
    #: the paper's three-case latency abstraction and is what the
    #: calibrated results use.
    detailed: bool = False
    t_ras: int = 225     # 45ns: activate-to-precharge minimum
    t_rc: int = 300      # 60ns: activate-to-activate, same bank
    t_rrd: int = 37      # 7.5ns: activate-to-activate, different banks
    t_faw: int = 187     # 37.5ns: four-activate window
    t_refi: int = 39_000  # 7.8us: average refresh interval
    t_rfc: int = 637     # 127.5ns: refresh cycle time

    def __post_init__(self):
        if self.page_policy not in ("open", "closed"):
            raise ValueError(f"unknown page policy {self.page_policy!r}")

    @property
    def hit_occupancy(self) -> int:
        """Bank-busy cycles for a row-buffer hit (burst only)."""
        return self.burst

    @property
    def closed_occupancy(self) -> int:
        """Bank-busy cycles when the row must first be activated."""
        return self.t_rcd + self.burst

    @property
    def conflict_occupancy(self) -> int:
        """Bank-busy cycles when another row must first be precharged."""
        return self.t_rp + self.t_rcd + self.burst

    def occupancy(self, *, row_hit: bool, row_open: bool) -> int:
        """Bank occupancy for an access given current row-buffer state."""
        if row_hit:
            return self.hit_occupancy
        if row_open:
            return self.conflict_occupancy
        return self.closed_occupancy


@dataclass(frozen=True)
class SimConfig:
    """Top-level system configuration (paper Table 3, scaled).

    Attributes mirror the baseline CMP and memory system configuration:
    24 cores, 4 independent DRAM controllers, 4 banks each, 128-entry
    instruction window, 3-wide issue.
    """

    #: Simulation engine backend: ``"reference"`` (the event-heap,
    #: per-thread-object engine) or ``"fast"`` (``repro.engine``: the
    #: vectorized struct-of-arrays CPU model plus timing-wheel event
    #: core).  The two backends are contractually **bit-identical** —
    #: enforced by the cross-backend parity matrix
    #: (``tests/engine/test_backend_parity.py``) — which is why
    #: ``backend`` is excluded from :meth:`cache_key` and the campaign
    #: content hashes: results, alone-IPC cache entries and golden
    #: fingerprints are backend-independent by construction.  The
    #: ``REPRO_BACKEND`` environment variable overrides this field at
    #: :class:`~repro.sim.system.System` construction time.
    backend: str = "reference"
    num_threads: int = 24
    num_channels: int = 4
    banks_per_channel: int = 4
    num_rows: int = 16_384           # 2KB rows; plenty for address diversity
    window_size: int = 128           # instruction window entries
    ipc_peak: float = 3.0            # issue width
    quantum_cycles: int = int(PAPER_QUANTUM_CYCLES * DEFAULT_SCALE)
    run_cycles: int = int(PAPER_QUANTUM_CYCLES * DEFAULT_SCALE) * 12
    #: Mean length (cycles) of a benchmark phase; the miss rate per
    #: instruction is modulated by x0.5 / x1 / x2 across phases,
    #: mirroring the phase behaviour of real SPEC traces.  0 disables
    #: phases (fully stationary traces).
    phase_mean_cycles: int = 40_000
    #: Model write traffic (dirty-eviction writebacks).  Off by
    #: default: writes are off the critical path (paper Table 3 buffers
    #: them and prioritises reads) and none of the studied algorithms
    #: schedule them differently; enable for bandwidth-fidelity studies.
    model_writes: bool = False
    #: Fraction of misses that evict a dirty line (when model_writes).
    writeback_ratio: float = 0.33
    #: Per-controller write data buffer entries (paper Table 3: 64).
    write_buffer_size: int = 64
    #: Stream-prefetcher degree per thread; 0 disables prefetching.
    #: Prefetch requests are tagged and serviced demand-first (related
    #: work [6], combinable with all schedulers here).
    prefetch_degree: int = 0
    timings: DramTimings = field(default_factory=DramTimings)
    seed: int = 42

    #: Fields that never influence simulated *results* and are
    #: therefore excluded from :meth:`cache_key` and the campaign
    #: content hashes (see :mod:`repro.campaign.hashing`).  Only fields
    #: whose result-independence is enforced by a test may be listed
    #: here; ``backend`` is pinned bit-identical by the parity matrix.
    CACHE_KEY_EXCLUDE = frozenset({"backend"})

    def __post_init__(self):
        if self.backend not in ("reference", "fast"):
            raise ValueError(
                f"unknown backend {self.backend!r} "
                "(expected 'reference' or 'fast')"
            )

    @property
    def num_banks(self) -> int:
        """Total banks across all channels (16 in the baseline)."""
        return self.num_channels * self.banks_per_channel

    def with_(self, **kwargs) -> "SimConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def cache_key(self) -> Tuple:
        """A hashable key covering *every* field of the configuration.

        Derived from :func:`dataclasses.fields` (recursing into nested
        dataclasses such as :class:`DramTimings`), so adding a config
        field automatically changes the key — cache entries can never
        silently alias across configurations that differ in a field the
        key's author forgot about.
        """
        return _flatten_dataclass(self)


def _flatten_dataclass(obj) -> Tuple:
    """Recursively flatten a dataclass into a hashable (name, value) tuple.

    Fields named in the dataclass's ``CACHE_KEY_EXCLUDE`` class
    attribute (e.g. :attr:`SimConfig.backend`) are skipped: they are
    contractually result-independent, so cache entries stay shared
    across them.
    """
    import dataclasses

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        exclude = getattr(type(obj), "CACHE_KEY_EXCLUDE", frozenset())
        return tuple(
            (f.name, _flatten_dataclass(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
            if f.name not in exclude
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_flatten_dataclass(v) for v in obj)
    if isinstance(obj, dict):
        return tuple(
            sorted((k, _flatten_dataclass(v)) for k, v in obj.items())
        )
    return obj


@dataclass(frozen=True)
class TCMParams:
    """TCM algorithmic parameters (paper Section 6).

    ``cluster_thresh`` is the fraction of the previous quantum's total
    bandwidth usage allotted to the latency-sensitive cluster (paper
    default 4/24).  ``shuffle_interval`` is in cycles; the paper uses
    800.  ``shuffle_algo_thresh`` controls the insertion-vs-random
    shuffle fallback; 1.0 forces pure random shuffling.
    """

    cluster_thresh: float = 4.0 / 24.0
    shuffle_interval: int = 800
    shuffle_algo_thresh: float = 0.1
    shuffle_mode: str = "dynamic"  # dynamic | insertion | random | round_robin
    #: Paper default: one global shuffled order agreed by all
    #: controllers.  False de-synchronises shuffling per channel (an
    #: ablation of the paper's synchronised-shuffling design point).
    sync_shuffle: bool = True
    thread_weights: Optional[Tuple[int, ...]] = None
    #: Niceness definition ablation: "blp_minus_rbl" (the paper's
    #: b_i - r_i), "blp_only", "rbl_only".
    niceness_mode: str = "blp_minus_rbl"


@dataclass(frozen=True)
class ATLASParams:
    """ATLAS parameters (paper §6: QuantumLength 10M cycles, alpha=0.875).

    The quantum is scaled more aggressively than TCM's (to two base
    quanta rather than ten) so that several ATLAS ranking epochs fit in
    a scaled run; Figure 6 of the paper shows ATLAS behaviour is
    insensitive to QuantumLength across 1K-20M cycles.
    """

    quantum_cycles: int = int(2 * PAPER_QUANTUM_CYCLES * DEFAULT_SCALE)
    history_weight: float = 0.875
    #: T: requests older than this jump the ranking.  Kept at the paper
    #: value (not scaled): queueing/service times are physical and do
    #: not shrink with the statistics-gathering quanta.
    starvation_threshold: int = 100_000


@dataclass(frozen=True)
class StaticParams:
    """Static-priority parameters: thread ids, highest priority first.

    An empty order ranks every thread equally, which degenerates to
    FR-FCFS (row-hit-first, oldest-first) — the identity baseline used
    by the validation suite's differential checks.
    """

    order: Tuple[int, ...] = ()


@dataclass(frozen=True)
class PARBSParams:
    """PAR-BS parameters: BatchCap (marking cap per thread per bank)."""

    batch_cap: int = 5


@dataclass(frozen=True)
class STFMParams:
    """STFM parameters: unfairness threshold and update interval."""

    fairness_threshold: float = 1.1
    interval_length: int = 2 ** 14   # slowdown re-evaluation period (scaled)


#: Registry of default scheduler parameter objects, keyed by scheduler name.
DEFAULT_PARAMS: Dict[str, object] = {
    "tcm": TCMParams(),
    "atlas": ATLASParams(),
    "parbs": PARBSParams(),
    "stfm": STFMParams(),
}
