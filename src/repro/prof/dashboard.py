"""Perf dashboard: the simulator's own speed trajectory as one page.

Reuses the ``repro.obs`` dashboard infrastructure (page shell, CSS
themes, tiles, details-tables) and follows the same contract: one
self-contained HTML file, inline SVG, light/dark via CSS custom
properties, no JavaScript.

Sections:

* per-benchmark **trajectory sparklines** — median wall-time across
  the history's records (newest right), best-round band;
* **component-share stacked bars** — where each benchmark's wall-time
  goes (engine / scheduler / dram / cpu / telemetry / obs), from the
  latest record carrying ``extra.component_shares``;
* **slowest-phase table** — top self-time stack paths of a fresh
  profile, when one is supplied;
* optionally an embedded flame graph SVG.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence

from repro.obs.dashboard import (  # shared page infra (obs PR)
    _CSS,
    _details_table,
    _fmt,
    _legend,
    _page,
    _series_color,
    _tiles,
)
from repro.prof.history import benches
from repro.prof.profiler import ProfileReport

#: component -> palette slot (matches flame.py's hues)
_COMPONENT_SLOTS = {"engine": 0, "scheduler": 1, "dram": 2, "cpu": 3,
                    "telemetry": 4, "obs": 6, "other": 7}

assert _CSS  # re-exported page shell carries the stylesheet


def _sparkline(rounds: List[dict], width: int = 280,
               height: int = 54) -> str:
    """One bench's median wall-time across records, newest right."""
    medians = [r["wall_s"]["median"] for r in rounds]
    bests = [r["wall_s"]["best"] for r in rounds]
    lo = min(bests) * 0.95
    hi = max(medians) * 1.05
    span = (hi - lo) or 1.0
    n = len(medians)

    def sx(i: int) -> float:
        return 4 + (i / max(1, n - 1)) * (width - 8)

    def sy(v: float) -> float:
        return 4 + (1 - (v - lo) / span) * (height - 8)

    parts = [f'<svg width="{width}" height="{height + 14}">']
    if n > 1:
        path = " ".join(f"{sx(i):.1f},{sy(v):.1f}"
                        for i, v in enumerate(medians))
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="var(--s1)" stroke-width="2"/>')
    for i, record in enumerate(rounds):
        sha = (record.get("git_sha") or "?")[:9]
        parts.append(
            f'<circle cx="{sx(i):.1f}" cy="{sy(medians[i]):.1f}" r="3.5" '
            f'fill="var(--s1)" stroke="var(--surface-1)" stroke-width="1.5">'
            f"<title>{escape(record.get('recorded_on', '?'))} @ "
            f"{escape(sha)}: median {medians[i]:.4f}s "
            f"(best {bests[i]:.4f}s)</title></circle>"
        )
    parts.append(
        f'<text x="4" y="{height + 11}" fill="var(--muted)">'
        f"{medians[0]:.3f}s</text>"
        f'<text x="{width - 4}" y="{height + 11}" text-anchor="end" '
        f'fill="var(--muted)">{medians[-1]:.3f}s</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _trajectories(records: List[dict]) -> str:
    facets, rows = [], []
    for bench in benches(records):
        history = [r for r in records if r.get("bench") == bench]
        facets.append(
            f'<div class="facet"><div class="fl">{escape(bench)} '
            f"· {len(history)} record(s)</div>"
            f"{_sparkline(history)}</div>"
        )
        for record in history:
            rows.append([
                bench, record.get("recorded_on", "?"),
                (record.get("git_sha") or "?")[:9],
                round(record["wall_s"]["median"], 4),
                round(record["wall_s"]["best"], 4),
                record.get("events_per_sec"),
            ])
    table = _details_table(
        ["bench", "date", "sha", "median s", "best s", "events/s"],
        rows, left_cols=3,
    )
    return ("<h2>Wall-time trajectory per benchmark "
            "(median of rounds, newest right)</h2>"
            f'<div class="facets">{"".join(facets)}</div>' + table)


def _share_bars(records: List[dict]) -> str:
    """Latest component shares per bench as stacked horizontal bars."""
    latest_shares: List = []
    for bench in benches(records):
        for record in reversed(records):
            if record.get("bench") != bench:
                continue
            shares = (record.get("extra") or {}).get("component_shares")
            if shares:
                latest_shares.append((bench, shares))
            break
    if not latest_shares:
        return ""
    components = sorted(
        {c for _, shares in latest_shares for c in shares},
        key=lambda c: _COMPONENT_SLOTS.get(c, 7),
    )
    w, bh, gap, left = 520, 20, 10, 190
    height = len(latest_shares) * (bh + gap) + 4
    parts = [f'<svg width="{w + left + 16}" height="{height}" role="img" '
             f'aria-label="component shares per benchmark">']
    rows = []
    for i, (bench, shares) in enumerate(latest_shares):
        y = i * (bh + gap)
        parts.append(f'<text x="{left - 8}" y="{y + bh - 5}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"{escape(bench)}</text>")
        x = float(left)
        for component in components:
            share = shares.get(component, 0.0)
            seg = share * w
            if seg > 1.5:
                slot = _COMPONENT_SLOTS.get(component, 7)
                parts.append(
                    f'<rect x="{x:.1f}" y="{y}" width="{seg - 1:.1f}" '
                    f'height="{bh}" rx="3" fill="{_series_color(slot)}">'
                    f"<title>{escape(bench)} — {escape(component)}: "
                    f"{share:.1%}</title></rect>"
                )
            x += seg
        rows.append([bench] + [f"{shares.get(c, 0.0):.1%}"
                               for c in components])
    parts.append("</svg>")
    legend = _legend([(c, _series_color(_COMPONENT_SLOTS.get(c, 7)))
                      for c in components])
    table = _details_table(["bench"] + components, rows)
    return ("<h2>Where the wall-time goes — component shares "
            "(latest record per bench)</h2>"
            + "".join(parts) + legend + table)


def _slowest_table(report: ProfileReport, limit: int = 12) -> str:
    selfs = report.self_times()
    rows = [
        [";".join(node.path), round(selfs.get(node.path, 0.0) * 1e3, 3),
         node.calls]
        for node in report.slowest(limit)
    ]
    head = "".join(
        f'<th class="{"l" if i == 0 else ""}">{h}</th>'
        for i, h in enumerate(["stack path", "self ms", "calls"])
    )
    cells = "".join(
        "<tr>" + "".join(
            f'<td class="{"l" if i == 0 else ""}">{escape(_fmt(c))}</td>'
            for i, c in enumerate(row)) + "</tr>"
        for row in rows
    )
    return (f"<h2>Slowest phases — "
            f"{escape(report.workload or '?')} under "
            f"{escape(report.scheduler or '?')}</h2>"
            f"<table><tr>{head}</tr>{cells}</table>")


def render_perf_dashboard(
    records: Sequence[dict],
    report: Optional[ProfileReport] = None,
    flame_svg: Optional[str] = None,
    title: str = "repro.prof — simulator performance",
) -> str:
    """The perf page as a self-contained HTML string."""
    records = list(records)
    machines = {tuple(sorted((r.get("machine") or {}).items()))
                for r in records}
    last = records[-1] if records else {}
    tiles = [
        ("records", _fmt(len(records))),
        ("benchmarks", _fmt(len(benches(records)))),
        ("machines", _fmt(len(machines))),
        ("latest sha", (last.get("git_sha") or "?")[:9]),
    ]
    if report is not None:
        tiles += [("events/s", f"{report.events_per_sec():,.0f}"),
                  ("requests/s", f"{report.requests_per_sec():,.0f}")]
    body = [_tiles(tiles)]
    if records:
        body.append(f'<div class="card">{_trajectories(records)}</div>')
        bars = _share_bars(records)
        if bars:
            body.append(f'<div class="card">{bars}</div>')
    if report is not None:
        body.append(f'<div class="card">{_slowest_table(report)}</div>')
    if flame_svg:
        body.append('<div class="card"><h2>Flame graph</h2>'
                    f"{flame_svg}</div>")
    subtitle = (f"{len(records)} history record(s) · append-only "
                "BENCH_history.json · medians of rounds")
    return _page(title, subtitle, "".join(body))
