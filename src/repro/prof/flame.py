"""Flame graphs for the self-profiler.

Two interchangeable exports of a :class:`~repro.prof.profiler.\
ProfileReport`'s stack costs:

* **Collapsed stacks** (Brendan Gregg's text format): one line per
  stack path, frames joined by ``;``, a space, then an integer value —
  here microseconds of *self* time.  ``render_collapsed`` /
  ``parse_collapsed`` round-trip exactly (covered by tests), so the
  text file feeds any external flame-graph tool unchanged.
* **Inline SVG** — a self-contained icicle flame graph: embedded
  ``<style>`` with light/dark themes via ``prefers-color-scheme``,
  native ``<title>`` tooltips, no JavaScript and no external assets.
  Frames are colored by component using the same categorical palette
  as the ``repro.obs`` dashboards.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Tuple

from repro.prof.profiler import Path, ProfileReport, component_of

#: component -> (light, dark) fill, matching obs/dashboard slot order
_COMPONENT_FILLS = {
    "engine": ("#2a78d6", "#3987e5"),     # blue
    "scheduler": ("#eb6834", "#d95926"),  # orange
    "dram": ("#1baf7a", "#199e70"),       # aqua
    "cpu": ("#eda100", "#c98500"),        # yellow
    "telemetry": ("#e87ba4", "#d55181"),  # magenta
    "obs": ("#4a3aa7", "#9085e9"),        # violet
    "other": ("#898781", "#898781"),      # muted
}


# ----------------------------------------------------------------------
# collapsed-stack text format
# ----------------------------------------------------------------------

def render_collapsed(report: ProfileReport) -> str:
    """Collapsed stacks with self-time values in integer microseconds.

    Zero-valued stacks (self time rounding to 0 µs) are kept so the
    call structure survives the round trip; lines are sorted for
    determinism.
    """
    lines = []
    for path, self_s in sorted(report.self_times().items()):
        lines.append(f"{';'.join(path)} {int(round(self_s * 1e6))}")
    return "\n".join(lines) + "\n"


def parse_collapsed(text: str) -> Dict[Path, int]:
    """Parse collapsed-stack text back into ``{path: microseconds}``.

    Tolerates blank lines and ``#`` comments; raises ``ValueError`` on
    a malformed line.
    """
    out: Dict[Path, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack, _, value = line.rpartition(" ")
        if not stack:
            raise ValueError(f"line {lineno}: no stack before value")
        try:
            micros = int(value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: value {value!r} is not an integer"
            ) from None
        path = tuple(stack.split(";"))
        out[path] = out.get(path, 0) + micros
    return out


# ----------------------------------------------------------------------
# icicle SVG
# ----------------------------------------------------------------------

def _build_tree(stacks: Dict[Path, int]):
    """Fold self-values into a nested tree with inclusive totals."""
    root: dict = {"children": {}, "self": 0}
    for path, value in stacks.items():
        node = root
        for frame in path:
            node = node["children"].setdefault(
                frame, {"children": {}, "self": 0}
            )
        node["self"] += value
    def total(node) -> int:
        node["total"] = node["self"] + sum(
            total(child) for child in node["children"].values()
        )
        return node["total"]
    total(root)
    return root


_SVG_CSS = """
svg.flame { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
svg.flame .bg { fill: #f9f9f7; }
svg.flame text { fill: #0b0b0b; }
svg.flame .hdr { fill: #52514e; }
svg.flame rect.frame { stroke: #f9f9f7; stroke-width: 1; rx: 2; }
@media (prefers-color-scheme: dark) {
  svg.flame .bg { fill: #0d0d0d; }
  svg.flame text { fill: #ffffff; }
  svg.flame .hdr { fill: #c3c2b7; }
  svg.flame rect.frame { stroke: #0d0d0d; }
  svg.flame rect.frame { fill: var(--dark-fill, inherit); }
}
"""


def render_flame_svg(
    report: ProfileReport,
    title: str = "repro.prof flame graph",
    width: int = 980,
) -> str:
    """Self-contained icicle flame graph as an SVG document string.

    Root at the top, children below; frame width is proportional to
    inclusive time.  The header lists per-component shares (they sum
    to 100% up to rounding).  Dark mode comes from an embedded
    ``prefers-color-scheme`` stylesheet; hover tooltips are native
    ``<title>`` elements — no scripts anywhere.
    """
    stacks = {path: int(round(s * 1e6))
              for path, s in report.self_times().items()}
    tree = _build_tree(stacks)
    total = tree["total"] or 1
    row_h, top, pad = 19, 58, 8

    def depth(node) -> int:
        children = node["children"].values()
        return 1 + max((depth(c) for c in children), default=0)

    height = top + (depth(tree) - 1) * row_h + pad
    parts: List[str] = []

    def emit(name: str, node: dict, x: float, level: int,
             path: Tuple[str, ...]) -> None:
        w = (node["total"] / total) * (width - 2 * pad)
        if w < 0.4:
            return
        y = top + level * row_h
        component = component_of(name)
        light, dark = _COMPONENT_FILLS.get(
            component, _COMPONENT_FILLS["other"]
        )
        pct = node["total"] / total
        tip = (f"{';'.join(path)} — {node['total'] / 1e3:.2f} ms "
               f"inclusive ({pct:.1%}), {node['self'] / 1e3:.2f} ms self")
        parts.append(
            f'<rect class="frame" x="{x:.2f}" y="{y}" '
            f'width="{max(1.0, w - 0.5):.2f}" height="{row_h - 2}" '
            f'fill="{light}" style="--dark-fill:{dark}">'
            f"<title>{escape(tip)}</title></rect>"
        )
        if w > 40:
            label = name if w > 7 * len(name) else name[: int(w // 7)] + "…"
            parts.append(
                f'<text x="{x + 4:.2f}" y="{y + row_h - 6}" '
                f'pointer-events="none">{escape(label)}</text>'
            )
        cx = x
        for child_name, child in sorted(node["children"].items()):
            emit(child_name, child, cx, level + 1, path + (child_name,))
            cx += (child["total"] / total) * (width - 2 * pad)

    x = float(pad)
    for name, node in sorted(tree["children"].items()):
        emit(name, node, x, 0, (name,))
        x += (node["total"] / total) * (width - 2 * pad)

    shares = report.component_shares()
    share_text = "  ·  ".join(
        f"{name} {share:.1%}" for name, share in shares.items()
    )
    legend = []
    lx = pad
    for name in shares:
        light, dark = _COMPONENT_FILLS.get(name, _COMPONENT_FILLS["other"])
        legend.append(
            f'<rect class="frame" x="{lx}" y="38" width="10" height="10" '
            f'fill="{light}" style="--dark-fill:{dark}"/>'
            f'<text class="hdr" x="{lx + 14}" y="47">{escape(name)}</text>'
        )
        lx += 14 + 7 * len(name) + 18
    meta = (f"{report.workload or '?'} under {report.scheduler or '?'} · "
            f"wall {report.wall_s:.3f}s · "
            f"{report.events_per_sec():,.0f} events/s")
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" class="flame" '
        f'width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{escape(title)}">'
        f"<style>{_SVG_CSS}</style>"
        f'<rect class="bg" x="0" y="0" width="{width}" height="{height}"/>'
        f'<text x="{pad}" y="16" font-size="14">{escape(title)}</text>'
        f'<text class="hdr" x="{pad}" y="32">{escape(meta)} · '
        f"{escape(share_text)}</text>"
        + "".join(legend)
        + "".join(parts)
        + "</svg>"
    )


def write_flame_svg(report: ProfileReport, path,
                    title: str = "repro.prof flame graph") -> str:
    """Render and write the flame SVG; returns the path written."""
    from pathlib import Path as _P

    out = _P(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_flame_svg(report, title=title), encoding="utf-8")
    return str(out)
