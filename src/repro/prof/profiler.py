"""Simulator self-profiling: where does the *engine's* wall-time go?

``repro.telemetry`` and ``repro.obs`` instrument the *simulated*
machine; this module instruments the simulator itself.  A
:class:`Profiler` attaches to a built :class:`~repro.sim.system.System`
by per-instance bound-method wrapping — the same mechanism the
invariant oracle uses — so a system that was never profiled executes
byte-identical code, and the hot path carries only the single
``self._prof is None`` branch pair in :meth:`System.run`.

Every wrapped call pushes a frame label onto a shared stack and
accumulates *inclusive* wall time and call counts per stack path, which
is exactly the shape a collapsed-stack flame graph wants
(:mod:`repro.prof.flame`).  Components:

* ``run`` (root) — self time is the event loop itself: heap pops,
  dispatch branching (the *engine event dispatch* cost);
* ``engine.*`` — quantum bookkeeping and bank-free dispatch;
* ``sched.*[NAME]`` — every scheduler's grant/rank/select paths, via
  :meth:`repro.schedulers.base.Scheduler.prof_points` (policies extend
  the base list with their internal hot methods: TCM's rank rebuild and
  shuffler choice, PAR-BS's batch formation, STFM's slowdown
  re-evaluation, FQM's virtual-time scan);
* ``dram.*`` — bank/channel service timing;
* ``cpu.*`` — thread issue/retire and end-of-run finalize;
* ``telemetry.*`` / ``obs.*`` — tracer emit, epoch sampling, span
  collection and explain forensics overhead (``obs.explain.*``, via
  :meth:`repro.explain.ExplainCollector.prof_points`) when those
  layers are attached.  (An invariant
  oracle attached *before* the profiler is folded into the component
  that invokes its checks; attach the profiler first to see oracle
  cost separated under the wrapped component's frame.)

Deep mode (``Profiler(deep=True)``) additionally runs :mod:`cProfile`
over the wrapped ``run`` for function-level detail below the explicit
instrumentation points.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: stack-path key: root-first tuple of frame labels
Path = Tuple[str, ...]

#: frame-label prefix -> component bucket (shares sum to exactly 1.0
#: because every frame maps to exactly one bucket and ``other`` catches
#: the rest)
_COMPONENT_PREFIXES = (
    ("sched.", "scheduler"),
    ("dram.", "dram"),
    ("cpu.", "cpu"),
    ("telemetry.", "telemetry"),
    ("obs.", "obs"),
    ("engine.", "engine"),
    ("run", "engine"),
)


def component_of(label: str) -> str:
    """Component bucket of a frame label (``sched.select[TCM]`` etc.)."""
    for prefix, component in _COMPONENT_PREFIXES:
        if label.startswith(prefix):
            return component
    return "other"


@dataclass
class ProfileNode:
    """Aggregated cost of one stack path."""

    path: Path
    inclusive_s: float
    calls: int


@dataclass
class ProfileReport:
    """A finished profile: per-path inclusive times plus run metadata.

    ``nodes`` maps root-first stack paths to inclusive seconds and call
    counts.  Self time of a path is its inclusive time minus the
    inclusive time of its direct children; component shares are the
    per-bucket sums of self time over the root's inclusive time, so
    they sum to 1.0 by construction.
    """

    nodes: Dict[Path, ProfileNode] = field(default_factory=dict)
    #: engine metadata recorded by ``System.run``'s guard branch
    wall_s: float = 0.0
    cycles: int = 0
    events: int = 0
    requests: int = 0
    scheduler: str = ""
    workload: str = ""
    #: cProfile text table when deep mode was on
    deep_table: Optional[str] = None

    # -- derived views --------------------------------------------------

    @property
    def total_s(self) -> float:
        """Inclusive time of the root frame (the profiled run)."""
        return sum(
            node.inclusive_s for path, node in self.nodes.items()
            if len(path) == 1
        )

    def self_times(self) -> Dict[Path, float]:
        """Self (exclusive) seconds per stack path, floored at zero."""
        selfs = {path: node.inclusive_s for path, node in self.nodes.items()}
        for path, node in self.nodes.items():
            if len(path) > 1:
                parent = path[:-1]
                if parent in selfs:
                    selfs[parent] -= node.inclusive_s
        return {path: max(0.0, s) for path, s in selfs.items()}

    def component_times(self) -> Dict[str, float]:
        """Self seconds summed per component bucket."""
        out: Dict[str, float] = {}
        for path, self_s in self.self_times().items():
            component = component_of(path[-1])
            out[component] = out.get(component, 0.0) + self_s
        return out

    def component_shares(self) -> Dict[str, float]:
        """Fraction of the profiled wall-time per component (sums to 1)."""
        times = self.component_times()
        total = sum(times.values())
        if total <= 0.0:
            return {}
        return {name: s / total for name, s in
                sorted(times.items(), key=lambda kv: -kv[1])}

    def slowest(self, limit: int = 12) -> List[ProfileNode]:
        """The paths with the largest self time, descending."""
        selfs = self.self_times()
        ranked = sorted(self.nodes.values(),
                        key=lambda n: -selfs.get(n.path, 0.0))
        return ranked[:limit]

    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def requests_per_sec(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    # -- text rendering -------------------------------------------------

    def format_text(self, limit: int = 12) -> str:
        """Human-readable component table + slowest-path table."""
        selfs = self.self_times()
        lines = [
            f"profiled {self.workload or '?'} under "
            f"{self.scheduler or '?'}: wall {self.wall_s:.3f}s, "
            f"{self.events} events "
            f"({self.events_per_sec():,.0f} ev/s), "
            f"{self.requests} requests "
            f"({self.requests_per_sec():,.0f} req/s)",
            "",
            f"{'component':<12} {'share':>7} {'self s':>9}",
        ]
        for name, share in self.component_shares().items():
            lines.append(
                f"{name:<12} {share:>6.1%} "
                f"{self.component_times()[name]:>9.4f}"
            )
        lines += ["", f"{'self s':>9} {'calls':>9}  slowest paths"]
        for node in self.slowest(limit):
            lines.append(
                f"{selfs.get(node.path, 0.0):>9.4f} {node.calls:>9}  "
                + ";".join(node.path)
            )
        if self.deep_table:
            lines += ["", "deep (cProfile, top cumulative):",
                      self.deep_table]
        return "\n".join(lines)


class Profiler:
    """Phase-scoped wall-time profiler for one simulated run.

    Usage::

        profiler = Profiler()
        system = System(workload, scheduler, config)
        profiler.attach(system)
        system.run()
        report = profiler.detach()

    Or in one call: :func:`profile_run`.  Attach wraps instrumentation
    points on the *instance*; detach restores every one, leaving the
    system indistinguishable from an unprofiled one.
    """

    def __init__(self, deep: bool = False):
        self.deep = deep
        self._stack: List[str] = []
        self._inclusive: Dict[Path, float] = {}
        self._calls: Dict[Path, int] = {}
        self._originals: List[Tuple[object, str, object, bool]] = []
        self._system = None
        self._cprofile = None
        self._run_t0 = 0.0
        self._events_at_start = 0
        self._report = ProfileReport()

    # -- wrapping -------------------------------------------------------

    def _wrap(self, obj, name: str, label: str) -> None:
        original = getattr(obj, name)
        stack = self._stack
        inclusive = self._inclusive
        calls = self._calls
        perf = time.perf_counter

        def wrapper(*args, **kwargs):
            stack.append(label)
            key = tuple(stack)
            t0 = perf()
            try:
                return original(*args, **kwargs)
            finally:
                dt = perf() - t0
                inclusive[key] = inclusive.get(key, 0.0) + dt
                calls[key] = calls.get(key, 0) + 1
                stack.pop()

        self._originals.append((obj, name, original, name in vars(obj)))
        setattr(obj, name, wrapper)

    def _wrap_run(self, system) -> None:
        """Root frame around ``run``; also hosts deep-mode cProfile."""
        original = system.run
        stack = self._stack
        inclusive = self._inclusive
        calls = self._calls
        perf = time.perf_counter
        profiler = self

        def run(*args, **kwargs):
            stack.append("run")
            key = tuple(stack)
            t0 = perf()
            try:
                if profiler.deep:
                    import cProfile

                    profiler._cprofile = cProfile.Profile()
                    profiler._cprofile.enable()
                    try:
                        return original(*args, **kwargs)
                    finally:
                        profiler._cprofile.disable()
                return original(*args, **kwargs)
            finally:
                dt = perf() - t0
                inclusive[key] = inclusive.get(key, 0.0) + dt
                calls[key] = calls.get(key, 0) + 1
                stack.pop()

        self._originals.append((system, "run", original, "run" in vars(system)))
        setattr(system, "run", run)

    # -- lifecycle ------------------------------------------------------

    def attach(self, system) -> "Profiler":
        """Install instrumentation points; call before ``system.run()``."""
        if self._system is not None:
            raise RuntimeError("profiler already attached")
        self._system = system
        self._wrap_run(system)
        # engine-internal actions
        self._wrap(system, "_issue_miss", "cpu.issue")
        self._wrap(system, "_complete_request", "cpu.retire")
        self._wrap(system, "_quantum_boundary", "engine.quantum")
        self._wrap(system, "_try_schedule", "engine.dispatch")
        # scheduler grant/rank paths, as declared by the policy itself
        scheduler = system.scheduler
        for label, method in scheduler.prof_points():
            if hasattr(scheduler, method):
                self._wrap(scheduler, method, label)
        # DRAM bank/channel timing
        for channel in system.channels:
            self._wrap(channel, "start_service", "dram.service")
            self._wrap(channel, "start_write_service", "dram.write")
        # cpu retire detail + end-of-run finalize
        for thread in system.threads:
            self._wrap(thread, "finalize", "cpu.finalize")
        # observability layers, when this run carries them
        if system._tracer is not None:
            self._wrap(system._tracer, "emit", "telemetry.emit")
        if system._sampler is not None:
            self._wrap(system._sampler, "sample", "telemetry.sample")
        if system._spans is not None:
            for method, label in (
                ("on_arrival", "obs.spans.arrival"),
                ("on_scheduled", "obs.spans.grant"),
                ("on_write_scheduled", "obs.spans.write"),
                ("on_complete", "obs.spans.complete"),
            ):
                if hasattr(system._spans, method):
                    self._wrap(system._spans, method, label)
        if system._explain is not None:
            for label, method in system._explain.prof_points():
                if hasattr(system._explain, method):
                    self._wrap(system._explain, method, label)
        system._prof = self
        return self

    def detach(self) -> ProfileReport:
        """Restore every wrapped method and return the finished report."""
        if self._system is None:
            raise RuntimeError("profiler not attached")
        for obj, name, original, was_instance in reversed(self._originals):
            if was_instance:
                setattr(obj, name, original)
            else:
                delattr(obj, name)
        self._originals.clear()
        self._system._prof = None
        self._system = None
        report = self._report
        report.nodes = {
            path: ProfileNode(path, s, self._calls.get(path, 0))
            for path, s in self._inclusive.items()
        }
        if report.wall_s == 0.0:
            report.wall_s = report.total_s
        if self._cprofile is not None:
            report.deep_table = _deep_table(self._cprofile)
        return report

    # -- System.run guard hooks (the one-branch-when-off sites) ---------

    def begin_run(self, system) -> None:
        """Called by ``System.run`` when a profiler is attached."""
        self._run_t0 = time.perf_counter()
        self._events_at_start = system._seq
        self._report.scheduler = system.scheduler.name
        self._report.workload = system.workload.name

    def end_run(self, system, horizon: int) -> None:
        self._report.wall_s += time.perf_counter() - self._run_t0
        self._report.cycles = horizon
        self._report.events += system._seq - self._events_at_start
        self._report.requests = sum(
            ch.serviced_requests for ch in system.channels
        )


def _deep_table(profile, limit: int = 20) -> str:
    """Top functions by cumulative time from a cProfile run."""
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(limit)
    return buffer.getvalue()


def attach_profiler(system, deep: bool = False) -> Profiler:
    """Attach a fresh :class:`Profiler` to a built system."""
    return Profiler(deep=deep).attach(system)


def profile_run(
    workload,
    scheduler_name: str,
    config=None,
    seed: int = 0,
    deep: bool = False,
    telemetry=None,
    params=None,
):
    """Run one workload under one scheduler with the profiler attached.

    Returns ``(RunResult, ProfileReport)``.  The simulated outcome is
    byte-identical to an unprofiled run (covered by ``tests/prof``).
    """
    from repro.config import SimConfig
    from repro.schedulers import make_scheduler
    from repro.sim import System

    config = config or SimConfig()
    system = System(
        workload, make_scheduler(scheduler_name, params), config,
        seed=seed, telemetry=telemetry,
    )
    profiler = attach_profiler(system, deep=deep)
    result = system.run()
    return result, profiler.detach()
