"""Benchmark-history store: the simulator's perf trajectory on disk.

``BENCH_history.json`` (repo root) is an append-only list of structured
benchmark records under a versioned envelope::

    {"format": "repro.prof.history/v1",
     "records": [{"bench": "engine_speed[tcm]",
                  "family": "engine_speed",
                  "wall_s": {"median": ..., "best": ..., "rounds": [...]},
                  "events_per_sec": ..., "requests_per_sec": ...,
                  "machine": {...}, "git_sha": "...", ...}, ...]}

Every record carries a machine fingerprint and the git SHA it was
measured at, so :func:`compare` can tell a genuine regression from a
different machine: records from different fingerprints yield a
``fingerprint-mismatch`` verdict (warn, never fail) instead of a bogus
ratio.

The regression gate: :func:`compare` takes the **median** of a record's
rounds (robust against one noisy round), a configurable tolerance
(default ±5%), and returns ``improvement`` / ``ok`` / ``regression`` /
``fingerprint-mismatch``.  Callers decide severity; the convention
throughout the repo is *warn by default, fail under*
``REPRO_BENCH_STRICT=1``.

Legacy shim (one release): :func:`load_baseline` also reads the
pre-prof ``benchmarks/telemetry_baseline.json`` shape (a bare dict
with ``min_s``/``requests`` keys) and normalises it into the v1 record
fields the overhead benches consume.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

FORMAT = "repro.prof.history/v1"

#: default relative path of the committed history (repo root)
DEFAULT_HISTORY = "BENCH_history.json"

#: default regression tolerance on the median wall-time ratio
DEFAULT_TOLERANCE = 1.05

VERDICT_IMPROVEMENT = "improvement"
VERDICT_OK = "ok"
VERDICT_REGRESSION = "regression"
VERDICT_MISMATCH = "fingerprint-mismatch"


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------

def machine_fingerprint() -> Dict[str, object]:
    """Stable identity of the measuring machine (not of the workload)."""
    return {
        "platform": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "impl": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 0,
    }


def same_machine(a: Optional[dict], b: Optional[dict]) -> bool:
    """Whether two fingerprints identify comparable measurements."""
    if not a or not b:
        return False
    keys = ("platform", "machine", "python", "impl", "cpu_count")
    return all(a.get(k) == b.get(k) for k in keys)


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current git commit SHA, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------

def make_record(
    bench: str,
    family: str,
    rounds_s: List[float],
    tolerance: float = DEFAULT_TOLERANCE,
    extra: Optional[dict] = None,
    **metrics,
) -> dict:
    """Build one v1 record from raw per-round wall times.

    ``metrics`` are scalar facts about the run (``events_per_sec``,
    ``requests``, ``cycles``, ...); ``extra`` holds structured payloads
    such as component shares.  Timestamps are deliberately coarse
    (date only) — the git SHA is the real provenance.
    """
    import datetime

    if not rounds_s:
        raise ValueError("a record needs at least one timing round")
    record = {
        "bench": bench,
        "family": family,
        "wall_s": {
            "median": statistics.median(rounds_s),
            "best": min(rounds_s),
            "rounds": list(rounds_s),
        },
        "tolerance": tolerance,
        "machine": machine_fingerprint(),
        "git_sha": git_sha(),
        "recorded_on": datetime.date.today().isoformat(),
    }
    record.update(metrics)
    if extra:
        record["extra"] = extra
    return record


def load(path) -> List[dict]:
    """Read a v1 history file; missing file -> empty list."""
    p = Path(path)
    if not p.exists():
        return []
    doc = json.loads(p.read_text())
    if isinstance(doc, dict) and doc.get("format") == FORMAT:
        return list(doc.get("records", []))
    raise ValueError(
        f"{p}: not a {FORMAT} file "
        "(legacy baselines load via load_baseline)"
    )


def append(path, record: dict) -> int:
    """Append one record (append-only); returns the new record count."""
    p = Path(path)
    records = load(p) if p.exists() else []
    records.append(record)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(
        json.dumps({"format": FORMAT, "records": records}, indent=1)
        + "\n",
        encoding="utf-8",
    )
    return len(records)


def latest(records: List[dict], bench: str) -> Optional[dict]:
    """The most recently appended record for ``bench``, if any."""
    for record in reversed(records):
        if record.get("bench") == bench:
            return record
    return None


def benches(records: List[dict]) -> List[str]:
    """Distinct bench names in first-appearance order."""
    seen: List[str] = []
    for record in records:
        name = record.get("bench")
        if name and name not in seen:
            seen.append(name)
    return seen


# ----------------------------------------------------------------------
# legacy baseline shim (telemetry_baseline.json, pre-prof shape)
# ----------------------------------------------------------------------

#: keys the overhead benches consume from a baseline
_BASELINE_KEYS = ("scheduler", "intensity", "num_threads", "seed",
                  "run_cycles", "requests", "min_s", "max_slowdown")


def load_baseline(path) -> dict:
    """Normalised overhead-bench baseline from either on-disk format.

    * v1 history file: the latest ``telemetry_overhead`` family record;
      its ``workload`` sub-dict plus ``wall_s.best`` map onto the
      legacy keys.
    * legacy bare dict (``min_s`` at top level): returned as-is.

    The legacy branch is a one-release shim — drop it once no checkout
    carries the old ``telemetry_baseline.json`` shape.
    """
    doc = json.loads(Path(path).read_text())
    if isinstance(doc, dict) and doc.get("format") == FORMAT:
        records = [r for r in doc.get("records", [])
                   if r.get("family") == "telemetry_overhead"]
        if not records:
            raise ValueError(f"{path}: no telemetry_overhead record")
        record = records[-1]
        workload = record.get("workload", {})
        return {
            "scheduler": workload["scheduler"],
            "intensity": workload["intensity"],
            "num_threads": workload["num_threads"],
            "seed": workload["seed"],
            "run_cycles": workload["run_cycles"],
            "requests": record["requests"],
            "min_s": record["wall_s"]["best"],
            "max_slowdown": record.get("tolerance", 1.03),
            "machine": record.get("machine"),
        }
    if isinstance(doc, dict) and "min_s" in doc:  # legacy shape
        return {key: doc[key] for key in _BASELINE_KEYS if key in doc}
    raise ValueError(f"{path}: neither a {FORMAT} file nor a legacy "
                     "baseline dict")


# ----------------------------------------------------------------------
# comparison / regression verdicts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Verdict:
    """Outcome of comparing a new record against a baseline record."""

    bench: str
    verdict: str  # improvement | ok | regression | fingerprint-mismatch
    ratio: Optional[float]  # new median / baseline median
    baseline_median: Optional[float]
    new_median: Optional[float]
    tolerance: float
    message: str

    @property
    def comparable(self) -> bool:
        return self.verdict != VERDICT_MISMATCH

    @property
    def failed(self) -> bool:
        """True only for a genuine regression on the same machine."""
        return self.verdict == VERDICT_REGRESSION


def compare(baseline: dict, new: dict,
            tolerance: Optional[float] = None) -> Verdict:
    """Median-of-rounds comparison of two records for the same bench.

    ``tolerance`` defaults to the baseline record's own (then 1.05).
    Ratios above it are regressions, below its reciprocal are
    improvements, anything else is ``ok``.  Records measured on
    different machines are never compared numerically.
    """
    bench = new.get("bench") or baseline.get("bench") or "?"
    tol = tolerance if tolerance is not None else float(
        baseline.get("tolerance", DEFAULT_TOLERANCE)
    )
    if not same_machine(baseline.get("machine"), new.get("machine")):
        return Verdict(
            bench, VERDICT_MISMATCH, None,
            baseline.get("wall_s", {}).get("median"),
            new.get("wall_s", {}).get("median"), tol,
            "different machine fingerprints; timings not comparable "
            "(warn only)",
        )
    base_median = float(baseline["wall_s"]["median"])
    new_median = float(new["wall_s"]["median"])
    ratio = new_median / base_median if base_median > 0 else float("inf")
    if ratio > tol:
        verdict = VERDICT_REGRESSION
        message = (f"median {new_median:.4f}s is {ratio:.3f}x the "
                   f"baseline {base_median:.4f}s (limit {tol:.2f}x)")
    elif ratio < 1.0 / tol:
        verdict = VERDICT_IMPROVEMENT
        message = (f"median {new_median:.4f}s improved to {ratio:.3f}x "
                   f"of baseline {base_median:.4f}s")
    else:
        verdict = VERDICT_OK
        message = (f"median {new_median:.4f}s within tolerance "
                   f"({ratio:.3f}x of {base_median:.4f}s)")
    return Verdict(bench, verdict, ratio, base_median, new_median, tol,
                   message)


def compare_histories(
    baseline_path, new_path, tolerance: Optional[float] = None
) -> List[Verdict]:
    """Compare the latest record per bench across two history files.

    With identical paths, compares each bench's last record against
    its previous one (the in-file trajectory).  Benches present on one
    side only are skipped — there is nothing to regress against.
    """
    baseline_records = load(baseline_path)
    if Path(baseline_path).resolve() == Path(new_path).resolve():
        verdicts = []
        for bench in benches(baseline_records):
            history = [r for r in baseline_records
                       if r.get("bench") == bench]
            if len(history) >= 2:
                verdicts.append(
                    compare(history[-2], history[-1], tolerance)
                )
        return verdicts
    new_records = load(new_path)
    verdicts = []
    for bench in benches(new_records):
        base = latest(baseline_records, bench)
        new = latest(new_records, bench)
        if base is not None and new is not None:
            verdicts.append(compare(base, new, tolerance))
    return verdicts


def strict_mode() -> bool:
    """The repo-wide opt-in for failing (not warning) on regressions."""
    return os.environ.get("REPRO_BENCH_STRICT") == "1"
