"""repro.prof — the simulator profiling itself.

Where :mod:`repro.telemetry` and :mod:`repro.obs` measure the
*simulated* machine, this package measures the *simulator*: which
engine component burns the wall-clock, how fast the event loop runs,
and whether either regressed since the last commit.

Three cooperating pieces:

* :class:`Profiler` / :func:`profile_run` — phase-scoped wall-time
  attribution over explicit instrumentation points (event dispatch,
  per-scheduler grant/rank paths, DRAM service, CPU retire, attached
  telemetry/obs overhead), attached per-instance so an unprofiled run
  executes byte-identical code; optional cProfile deep mode.
* :mod:`repro.prof.flame` — collapsed-stack text (Brendan Gregg
  format, exact round-trip) and a self-contained no-JS SVG flame
  graph.
* :mod:`repro.prof.history` — the append-only ``BENCH_history.json``
  record format with ``load``/``append``/``compare`` and
  median-of-rounds regression verdicts (warn by default, fail under
  ``REPRO_BENCH_STRICT=1``).

CLI: ``python -m repro.experiments.cli prof run|flame|history|``
``compare|dashboard`` — see docs/PROFILING.md.
"""

from repro.prof.flame import (
    parse_collapsed,
    render_collapsed,
    render_flame_svg,
    write_flame_svg,
)
from repro.prof.history import (
    DEFAULT_HISTORY,
    DEFAULT_TOLERANCE,
    Verdict,
    append,
    compare,
    compare_histories,
    git_sha,
    latest,
    load,
    load_baseline,
    machine_fingerprint,
    make_record,
    same_machine,
    strict_mode,
)
from repro.prof.profiler import (
    ProfileNode,
    ProfileReport,
    Profiler,
    attach_profiler,
    component_of,
    profile_run,
)

__all__ = [
    "DEFAULT_HISTORY",
    "DEFAULT_TOLERANCE",
    "ProfileNode",
    "ProfileReport",
    "Profiler",
    "Verdict",
    "append",
    "attach_profiler",
    "compare",
    "compare_histories",
    "component_of",
    "git_sha",
    "latest",
    "load",
    "load_baseline",
    "machine_fingerprint",
    "make_record",
    "parse_collapsed",
    "profile_run",
    "render_collapsed",
    "render_flame_svg",
    "same_machine",
    "strict_mode",
    "write_flame_svg",
]
