"""Event schema for the tracer's JSONL stream.

Every traced event is one JSON object with at least:

* ``ev`` — the event type (a key of :data:`EVENT_SCHEMA`);
* ``ts`` — the simulation cycle the event happened at (int, >= 0).

plus the type's own required fields.  Extra fields are allowed (they
flow through to the sinks untouched); missing or mistyped required
fields fail :func:`validate_event`.

The schema doubles as documentation: docs/TELEMETRY.md renders from the
same definitions, and CI validates a freshly traced run against it.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

#: field-name -> allowed types (json-decoded)
_NUM = (int, float)
_INT = (int,)
_STR = (str,)
_LIST = (list,)
_DICT = (dict,)

#: event type -> {field: allowed types}; every event also needs ev/ts.
EVENT_SCHEMA: Dict[str, Dict[str, Tuple[type, ...]]] = {
    # run lifecycle
    "run_begin": {"workload": _STR, "scheduler": _STR, "seed": _INT,
                  "threads": _INT},
    "run_end": {"requests": _INT, "row_hits": _INT},
    # DRAM command stream: one event per serviced access.  ``kind`` is
    # the row-buffer outcome (hit | closed | conflict).
    "dram_cmd": {"ch": _INT, "bank": _INT, "row": _INT, "tid": _INT,
                 "kind": _STR, "start": _INT, "end": _INT},
    # scheduler picked ``tid``'s request at a free bank; ``queued`` is
    # the number of requests that were waiting there.
    "sched_decision": {"ch": _INT, "bank": _INT, "tid": _INT,
                       "queued": _INT, "row_hit": (bool,)},
    # quantum boundary: per-thread monitored metrics for the quantum
    # that just ended.
    "quantum": {"index": _INT, "mpki": _LIST, "bw": _LIST, "blp": _LIST,
                "rbl": _LIST},
    # TCM clustering decision (one per quantum).
    "cluster": {"quantum": _INT, "latency": _LIST, "bandwidth": _LIST},
    # TCM bandwidth-cluster shuffle: the algorithm chosen and the new
    # priority order (last element = highest rank).
    "shuffle": {"algo": _STR, "order": _LIST},
    # ATLAS per-quantum ranking (tid -> rank, larger = higher).
    "rank": {"ranks": _DICT},
    # PAR-BS batch formation.
    "batch": {"marked": _INT},
    # STFM fairness evaluation.
    "stfm_eval": {"unfairness": _NUM},
    # epoch sampler output: per-thread time-series row.
    "epoch": {"cycle": _INT, "threads": _LIST},
    # decision forensics (repro.explain): one event per grant.
    # ``tie`` is the tie-break provenance (priority | queue-order |
    # only-candidate); ``component`` names the priority slot that
    # decided the grant ("" for ties and single-candidate queues);
    # ``disagree`` lists the shadow policies that would have granted a
    # different request.
    "explain": {"ch": _INT, "bank": _INT, "tid": _INT, "queued": _INT,
                "tie": _STR, "tied": _INT, "component": _STR,
                "delta": _NUM, "disagree": _LIST},
    # starvation watch (repro.explain): a thread's oldest pending
    # request crossed the age threshold.
    "starvation": {"tid": _INT, "age": _INT, "pending": _INT},
}

_KIND_VALUES = {"hit", "closed", "conflict"}


class SchemaError(ValueError):
    """An event failed schema validation."""


def validate_event(event: dict) -> None:
    """Raise :class:`SchemaError` unless ``event`` matches the schema."""
    if not isinstance(event, dict):
        raise SchemaError(f"event must be an object, got {type(event).__name__}")
    ev = event.get("ev")
    if ev not in EVENT_SCHEMA:
        raise SchemaError(f"unknown event type {ev!r}")
    ts = event.get("ts")
    if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
        raise SchemaError(f"{ev}: ts must be a non-negative int, got {ts!r}")
    for name, types in EVENT_SCHEMA[ev].items():
        if name not in event:
            raise SchemaError(f"{ev}: missing required field {name!r}")
        value = event[name]
        if bool not in types and isinstance(value, bool):
            raise SchemaError(f"{ev}: field {name!r} must not be a bool")
        if not isinstance(value, types):
            raise SchemaError(
                f"{ev}: field {name!r} expected "
                f"{'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__}"
            )
    if ev == "dram_cmd" and event["kind"] not in _KIND_VALUES:
        raise SchemaError(f"dram_cmd: bad kind {event['kind']!r}")
    if ev == "dram_cmd" and event["end"] < event["start"]:
        raise SchemaError("dram_cmd: end before start")


def validate_events(events: Iterable[dict]) -> int:
    """Validate an event stream; returns the number of events checked."""
    count = 0
    for event in events:
        validate_event(event)
        count += 1
    return count


def validate_jsonl(path) -> int:
    """Validate a JSONL trace file; returns the number of events.

    Raises :class:`SchemaError` with the offending line number.
    """
    count = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                raise SchemaError(f"{path}:{lineno}: bad JSON: {exc}") from exc
            try:
                validate_event(event)
            except SchemaError as exc:
                raise SchemaError(f"{path}:{lineno}: {exc}") from exc
            count += 1
    return count


def schema_markdown() -> str:
    """Render the event schema as a markdown table (for docs)."""
    lines: List[str] = [
        "| event | required fields |",
        "|-------|-----------------|",
    ]
    for ev in sorted(EVENT_SCHEMA):
        fields = ", ".join(
            f"`{name}`" for name in sorted(EVENT_SCHEMA[ev])
        )
        lines.append(f"| `{ev}` | {fields or '—'} |")
    return "\n".join(lines)
