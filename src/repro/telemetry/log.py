"""Stdlib logging wiring with one consistent format for all tools.

Every CLI entry point (``repro.experiments.cli``, ``scripts/full_eval``)
calls :func:`configure_logging` once with its ``--log-level`` flag;
library code gets loggers from :func:`get_logger` and never configures
handlers itself, so embedding applications keep full control.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: One format everywhere: time, level, dotted component, message.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
DATE_FORMAT = "%H:%M:%S"

_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def configure_logging(level: str = "warning",
                      stream=None) -> logging.Logger:
    """Install one stream handler on the ``repro`` root logger.

    Idempotent: re-configuring replaces the previous handler instead of
    stacking duplicates.  Returns the configured root logger.
    """
    numeric = getattr(logging, str(level).upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(_ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
    handler._repro_handler = True
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root


def add_log_level_argument(parser, default: str = "warning") -> None:
    """Attach the shared ``--log-level`` flag to an argparse parser."""
    parser.add_argument(
        "--log-level", default=default,
        choices=("debug", "info", "warning", "error", "critical"),
        help="stdlib logging level for all repro components "
             f"(default: {default})",
    )
