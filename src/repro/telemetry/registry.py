"""Metrics registry: named instruments plus polled providers.

Two complementary registration styles, both near-zero-overhead on the
simulation hot path:

* **Instruments** (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
  are owned by the registry and updated by the code that created them.
  They are meant for warm paths (campaign engine events, per-quantum
  policy decisions), not per-request simulation work.
* **Providers** are read-only callbacks over counters a component
  already keeps as plain attributes (``bank.row_hits`` etc.).  The hot
  path keeps its raw ``+= 1`` attribute arithmetic; the registry polls
  the provider only when a snapshot is taken (epoch sample, debug
  report, end of run).  Registration happens once at system
  construction, so simulation with telemetry disabled pays nothing per
  event.

Metric identity is ``name`` plus a frozen ``labels`` mapping; the flat
:meth:`MetricsRegistry.snapshot` renders labels into the key
(``dram.bank.row_hits{bank=1,ch=0}``) while :meth:`MetricsRegistry.collect`
returns the structured (labels, value) pairs for one metric name.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple


def _label_suffix(labels: Optional[Dict[str, object]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


def _label_key(labels: Optional[Dict[str, object]]) -> Tuple:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonic counter instrument."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[Dict[str, object]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Last-value instrument."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[Dict[str, object]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram instrument (upper-bound buckets + +Inf)."""

    __slots__ = ("name", "labels", "bounds", "counts", "total", "sum")

    DEFAULT_BOUNDS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)

    def __init__(
        self,
        name: str,
        labels: Optional[Dict[str, object]] = None,
        bounds: Optional[Iterable[float]] = None,
    ):
        self.name = name
        self.labels = dict(labels or {})
        self.bounds = tuple(sorted(bounds if bounds is not None
                                   else self.DEFAULT_BOUNDS))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = q * self.total
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= target:
                return float(bound)
        return float("inf")

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def snapshot_value(self) -> Dict[str, float]:
        return {"count": self.total, "sum": self.sum, "mean": self.mean}


@dataclass(frozen=True)
class _Provider:
    """A polled read-only metric source."""

    name: str
    fn: Callable[[], float]
    labels: Tuple = ()
    label_dict: Dict[str, object] = field(default_factory=dict, hash=False)


class MetricsRegistry:
    """One namespace of metrics for a run (or a campaign).

    The registry never touches the objects behind its providers except
    when polled, so registering a component costs nothing per simulated
    event.  ``(name, labels)`` pairs must be unique; re-registering one
    raises unless :meth:`reset` (full clear) was called in between —
    this catches two runs accidentally sharing one registry.
    """

    def __init__(self) -> None:
        self._providers: Dict[Tuple[str, Tuple], _Provider] = {}
        self._instruments: Dict[Tuple[str, Tuple], object] = {}

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        fn: Callable[[], float],
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        """Register a polled provider for ``name`` with ``labels``."""
        key = (name, _label_key(labels))
        if key in self._providers or key in self._instruments:
            raise ValueError(
                f"metric {name}{_label_suffix(labels)} already registered"
            )
        self._providers[key] = _Provider(
            name=name, fn=fn, labels=_label_key(labels),
            label_dict=dict(labels or {}),
        )

    def _instrument(self, cls, name, labels, **kwargs):
        key = (name, _label_key(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name}{_label_suffix(labels)} already "
                    f"registered as {type(existing).__name__}"
                )
            return existing
        if key in self._providers:
            raise ValueError(
                f"metric {name}{_label_suffix(labels)} already registered "
                f"as a provider"
            )
        instrument = cls(name, labels, **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str,
                labels: Optional[Dict[str, object]] = None) -> Counter:
        """Create (or fetch the existing) counter instrument."""
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str,
              labels: Optional[Dict[str, object]] = None) -> Gauge:
        """Create (or fetch the existing) gauge instrument."""
        return self._instrument(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, object]] = None,
        bounds: Optional[Iterable[float]] = None,
    ) -> Histogram:
        """Create (or fetch the existing) histogram instrument."""
        return self._instrument(Histogram, name, labels, bounds=bounds)

    # -- reads ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._providers) + len(self._instruments)

    def names(self) -> List[str]:
        """Sorted distinct metric names."""
        return sorted(
            {k[0] for k in self._providers} | {k[0] for k in self._instruments}
        )

    def collect(self, name: str) -> List[Tuple[Dict[str, object], float]]:
        """All (labels, value) pairs registered under ``name``."""
        out = []
        for (n, _), provider in self._providers.items():
            if n == name:
                out.append((dict(provider.label_dict), provider.fn()))
        for (n, _), inst in self._instruments.items():
            if n == name:
                value = (inst.snapshot_value()
                         if isinstance(inst, Histogram) else inst.value)
                out.append((dict(inst.labels), value))
        out.sort(key=lambda pair: sorted(pair[0].items()))
        return out

    def value(self, name: str,
              labels: Optional[Dict[str, object]] = None):
        """The single value registered under ``(name, labels)``."""
        key = (name, _label_key(labels))
        provider = self._providers.get(key)
        if provider is not None:
            return provider.fn()
        inst = self._instruments.get(key)
        if inst is None:
            raise KeyError(f"no metric {name}{_label_suffix(labels)}")
        return inst.snapshot_value() if isinstance(inst, Histogram) else inst.value

    def sum(self, name: str) -> float:
        """Sum of all label variants of ``name`` (counters/gauges only)."""
        return sum(v for _, v in self.collect(name)
                   if not isinstance(v, dict))

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name{labels}: value}`` view of every metric."""
        out: Dict[str, float] = {}
        for (name, _), provider in self._providers.items():
            out[name + _label_suffix(provider.label_dict)] = provider.fn()
        for (name, _), inst in self._instruments.items():
            key = name + _label_suffix(inst.labels)
            if isinstance(inst, Histogram):
                for suffix, v in inst.snapshot_value().items():
                    out[f"{key}.{suffix}"] = v
            else:
                out[key] = inst.value
        return out

    # -- lifecycle ------------------------------------------------------

    def reset_values(self) -> None:
        """Zero every instrument; providers are untouched (read-only)."""
        for inst in self._instruments.values():
            inst.reset()

    def reset(self) -> None:
        """Full clear: drop all providers and instruments.

        A registry reused across runs must be reset so stale providers
        cannot silently poll a dead system's counters.
        """
        self._providers.clear()
        self._instruments.clear()
