"""Tracer sinks: JSONL, in-memory, and Chrome/Perfetto trace_event.

The JSONL stream (one event object per line, schema in
:mod:`repro.telemetry.schema`) is the canonical format; the Perfetto
sink — and the :func:`jsonl_to_perfetto` converter — render the same
events into the Chrome ``trace_event`` JSON that https://ui.perfetto.dev
and ``chrome://tracing`` open directly:

* each DRAM bank is a thread-track of the "DRAM" process: ``dram_cmd``
  events become duration slices named by their row-buffer outcome;
* scheduler decisions are thread-scoped instants on the same tracks;
* policy events (clustering, shuffles, rankings, batches) land on a
  "policy" process;
* epoch samples become per-thread counter tracks (MPKI / BLP / RBL),
  which Perfetto plots as time series.

Simulation cycles are written as microseconds (1 cycle = 1us) since
trace_event timestamps are always in microseconds.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional


def _open_creating_dirs(path, mode: str = "w"):
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    return open(path, mode, encoding="utf-8")

#: trace_event pids for the synthetic processes.
_PID_DRAM = 1
_PID_POLICY = 2
_PID_THREADS = 3
_PID_SERVE = 4


class Sink:
    """Base class: receives schema'd event dicts from the tracer."""

    def write(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class MemorySink(Sink):
    """Collect events into a list (tests, report rendering)."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)


class JsonlSink(Sink):
    """Append events to a JSONL file, one compact object per line."""

    def __init__(self, path) -> None:
        self.path = path
        self._file = _open_creating_dirs(path)

    def write(self, event: dict) -> None:
        self._file.write(json.dumps(event, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class PerfettoSink(Sink):
    """Buffer events and write a Perfetto-loadable JSON file on close."""

    def __init__(self, path) -> None:
        self.path = path
        self._events: List[dict] = []

    def write(self, event: dict) -> None:
        self._events.append(event)

    def close(self) -> None:
        if self._events is None:
            return
        with _open_creating_dirs(self.path) as f:
            json.dump(events_to_perfetto(self._events), f)
        self._events = None


# ----------------------------------------------------------------------
# trace_event conversion
# ----------------------------------------------------------------------


def _meta(pid: int, name: str, tid: Optional[int] = None,
          thread_name: Optional[str] = None) -> List[dict]:
    out = [{"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": name}}]
    if tid is not None:
        out = [{"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": thread_name}}]
    return out


def events_to_perfetto(events: Iterable[dict],
                       banks_per_channel: Optional[int] = None) -> dict:
    """Convert schema'd events to a Chrome trace_event JSON object."""
    trace: List[dict] = []
    bank_tracks: Dict[tuple, int] = {}
    thread_tracks: set = set()
    if banks_per_channel is None:
        banks_per_channel = 64  # track ids only need to be distinct

    def bank_tid(ch: int, bank: int) -> int:
        key = (ch, bank)
        if key not in bank_tracks:
            tid = ch * banks_per_channel + bank
            bank_tracks[key] = tid
            trace.extend(_meta(_PID_DRAM, "", tid=tid,
                               thread_name=f"ch{ch} bank{bank}"))
        return bank_tracks[key]

    def thread_tid(tid: int) -> int:
        if tid not in thread_tracks:
            thread_tracks.add(tid)
            trace.extend(_meta(_PID_THREADS, "", tid=tid,
                               thread_name=f"thread {tid}"))
        return tid

    trace.extend(_meta(_PID_DRAM, "DRAM"))
    trace.extend(_meta(_PID_POLICY, "policy"))
    trace.extend(_meta(_PID_THREADS, "threads"))
    serve_meta_done = False
    shard_tracks: set = set()
    # running explain counters: cumulative disagreements per shadow
    disagreements: Dict[str, int] = {}

    def serve_pid() -> int:
        nonlocal serve_meta_done
        if not serve_meta_done:
            serve_meta_done = True
            trace.extend(_meta(_PID_SERVE, "serve"))
        return _PID_SERVE

    def shard_tid(shard: int) -> int:
        # tid 0 holds the async job tracks; shard slices start at 1
        tid = shard + 1
        if tid not in shard_tracks:
            shard_tracks.add(tid)
            trace.extend(_meta(_PID_SERVE, "", tid=tid,
                               thread_name=f"shard {shard}"))
        return tid

    for event in events:
        ev, ts = event["ev"], event["ts"]
        if ev == "dram_cmd":
            trace.append({
                "ph": "X", "pid": _PID_DRAM,
                "tid": bank_tid(event["ch"], event["bank"]),
                "ts": event["start"],
                "dur": max(1, event["end"] - event["start"]),
                "name": event["kind"],
                "args": {"thread": event["tid"], "row": event["row"],
                         "write": event.get("write", False)},
            })
        elif ev == "sched_decision":
            trace.append({
                "ph": "i", "s": "t", "pid": _PID_DRAM,
                "tid": bank_tid(event["ch"], event["bank"]),
                "ts": ts, "name": f"pick t{event['tid']}",
                "args": {"queued": event["queued"],
                         "row_hit": event["row_hit"]},
            })
        elif ev == "cluster":
            for tid in event["latency"]:
                trace.append({
                    "ph": "C", "pid": _PID_THREADS, "tid": 0, "ts": ts,
                    "name": f"cluster t{tid}", "args": {"latency": 1},
                })
            for tid in event["bandwidth"]:
                trace.append({
                    "ph": "C", "pid": _PID_THREADS, "tid": 0, "ts": ts,
                    "name": f"cluster t{tid}", "args": {"latency": 0},
                })
            trace.append({
                "ph": "i", "s": "p", "pid": _PID_POLICY, "tid": 0,
                "ts": ts, "name": "cluster",
                "args": {"latency": event["latency"],
                         "bandwidth": event["bandwidth"]},
            })
        elif ev == "epoch":
            for row in event["threads"]:
                tid = thread_tid(row["tid"])
                for metric in ("mpki", "blp", "rbl"):
                    if metric in row:
                        trace.append({
                            "ph": "C", "pid": _PID_THREADS, "tid": tid,
                            "ts": ts, "name": f"{metric} t{row['tid']}",
                            "args": {metric: row[metric]},
                        })
        elif ev == "explain":
            # disagreement instants on the granting bank's track, plus
            # cumulative per-shadow disagreement counters on the policy
            # process (Perfetto plots them as staircase time series)
            if event["disagree"]:
                trace.append({
                    "ph": "i", "s": "t", "pid": _PID_DRAM,
                    "tid": bank_tid(event["ch"], event["bank"]),
                    "ts": ts, "name": "disagree",
                    "args": {"thread": event["tid"],
                             "shadows": event["disagree"],
                             "component": event["component"]},
                })
            for label in event["disagree"]:
                disagreements[label] = disagreements.get(label, 0) + 1
                trace.append({
                    "ph": "C", "pid": _PID_POLICY, "tid": 0, "ts": ts,
                    "name": f"disagreements {label}",
                    "args": {"count": disagreements[label]},
                })
        elif ev == "starvation":
            trace.append({
                "ph": "i", "s": "p", "pid": _PID_POLICY, "tid": 0,
                "ts": ts, "name": f"starvation t{event['tid']}",
                "args": {"tid": event["tid"], "age": event["age"],
                         "pending": event["pending"]},
            })
        elif ev in ("quantum", "shuffle", "rank", "batch", "stfm_eval",
                    "run_begin", "run_end"):
            args = {k: v for k, v in event.items() if k not in ("ev", "ts")}
            trace.append({
                "ph": "i", "s": "p", "pid": _PID_POLICY, "tid": 0,
                "ts": ts, "name": ev, "args": args,
            })
        elif ev == "job_span":
            # serve-layer job stage spans: async b/e pairs keyed by the
            # job's content hash (async tracks tolerate the overlap of
            # concurrent jobs); execute spans additionally land as
            # duration slices on per-shard thread tracks, which never
            # overlap (a shard runs one task at a time)
            pid = serve_pid()
            stage = event["stage"]
            key = event["key"]
            dur = max(0.0, event.get("dur", 0.0))
            args = {"lane": event.get("lane"),
                    "status": event.get("status")}
            if stage == "job":
                args["hits"] = event.get("hits", 0)
                args["attempts"] = event.get("attempts", 0)
                name = f"job {key[:10]}"
            else:
                name = stage
            trace.append({"ph": "b", "cat": "job", "id": key, "pid": pid,
                          "tid": 0, "ts": ts, "name": name, "args": args})
            trace.append({"ph": "e", "cat": "job", "id": key, "pid": pid,
                          "tid": 0, "ts": ts + dur, "name": name})
            if stage == "execute" and event.get("shard") is not None:
                trace.append({
                    "ph": "X", "pid": pid,
                    "tid": shard_tid(event["shard"]),
                    "ts": ts, "dur": max(1.0, dur),
                    "name": f"execute {key[:10]}",
                    "args": args,
                })
        elif ev == "serve_sample":
            pid = serve_pid()
            for lane, depth in sorted(event.get("depths", {}).items()):
                trace.append({
                    "ph": "C", "pid": pid, "tid": 0, "ts": ts,
                    "name": f"queue {lane}", "args": {"depth": depth},
                })
            trace.append({
                "ph": "C", "pid": pid, "tid": 0, "ts": ts,
                "name": "shards busy",
                "args": {"busy": event.get("shards_busy", 0)},
            })
            trace.append({
                "ph": "C", "pid": pid, "tid": 0, "ts": ts,
                "name": "burn rate",
                "args": {"fast": event.get("burn_fast", 0.0)},
            })
        # unknown events are dropped from the visual trace on purpose:
        # the JSONL stream remains the lossless record

    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def rebase_trace_events(doc: dict, ts_scale: float = 1.0,
                        ts_offset: float = 0.0, pid_base: int = 0,
                        process_prefix: str = "") -> dict:
    """Rebase a converted trace document in place (and return it).

    Timestamps map as ``ts * ts_scale + ts_offset`` (durations scale
    only) and every pid shifts by ``pid_base`` — which is how a
    per-point simulation trace is nested into the service-side
    ``execute`` window of the job that ran it, with a unique pid block
    per job so bank/thread tracks never collide.  ``process_prefix``
    labels the relocated processes in the Perfetto UI.
    """
    for entry in doc["traceEvents"]:
        entry["pid"] = entry.get("pid", 0) + pid_base
        if "ts" in entry:
            entry["ts"] = entry["ts"] * ts_scale + ts_offset
        if "dur" in entry:
            entry["dur"] = max(entry["dur"] * ts_scale, 0.001)
        if (process_prefix and entry.get("ph") == "M"
                and entry.get("name") == "process_name"):
            entry["args"]["name"] = (
                f"{process_prefix}{entry['args'].get('name', '')}")
    return doc


def jsonl_to_perfetto(src_path, dst_path) -> int:
    """Convert a JSONL trace file to Perfetto JSON; returns event count."""
    events = []
    with open(src_path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    with _open_creating_dirs(dst_path) as f:
        json.dump(events_to_perfetto(events), f)
    return len(events)
