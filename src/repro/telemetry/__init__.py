"""repro.telemetry — cycle-level tracing, metrics, and observability.

Three cooperating pieces, all optional and all zero-cost when unused:

* :class:`~repro.telemetry.registry.MetricsRegistry` — counters,
  gauges, histograms and *polled providers* over the attribute counters
  components already keep.  Every :class:`~repro.sim.system.System`
  builds one (``system.metrics``); polling happens only when a snapshot
  is taken.
* :class:`~repro.telemetry.tracer.Tracer` — schema'd event stream
  (DRAM commands, scheduler decisions, clustering, shuffles, epochs)
  fanned out to sinks: JSONL and Chrome/Perfetto ``trace_event``.
* :class:`~repro.telemetry.sampler.EpochSampler` — periodic per-thread
  MPKI/RBL/BLP/cluster time-series snapshots.

Bundle them with :class:`Telemetry` and hand it to the system::

    from repro.telemetry import Telemetry

    telemetry = Telemetry.tracing("run.jsonl", perfetto_path="run.json")
    system = System(workload, make_scheduler("tcm"), cfg,
                    telemetry=telemetry)
    system.run()
    telemetry.close()        # flushes sinks, writes the Perfetto file
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.log import configure_logging, get_logger
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sampler import EpochSample, EpochSampler
from repro.telemetry.schema import (
    EVENT_SCHEMA,
    SchemaError,
    validate_event,
    validate_jsonl,
)
from repro.telemetry.sinks import (
    JsonlSink,
    MemorySink,
    PerfettoSink,
    Sink,
    events_to_perfetto,
    jsonl_to_perfetto,
)
from repro.telemetry.tracer import Tracer, memory_tracer


class Telemetry:
    """A run's observability bundle: tracer + sampler + registry.

    Pass one to :class:`repro.sim.System`; the system binds it at
    construction (resetting any state left by a previous run) and
    drives the tracer and sampler from its event loop.  ``registry``
    is optional — when omitted the system builds its own, reachable as
    ``system.metrics`` either way.
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 sampler: Optional[EpochSampler] = None,
                 registry: Optional[MetricsRegistry] = None,
                 spans=None) -> None:
        self.tracer = tracer
        self.sampler = sampler
        self.registry = registry
        #: optional repro.obs.spans.SpanCollector; the system binds it
        #: at construction and drives it from the hot path
        self.spans = spans
        self.system = None

    # -- construction helpers -------------------------------------------

    @classmethod
    def tracing(cls, jsonl_path=None, perfetto_path=None,
                epoch_cycles: Optional[int] = None,
                snapshot_registry: bool = False,
                validate: bool = False) -> "Telemetry":
        """Telemetry with file sinks and an epoch sampler."""
        sinks = []
        if jsonl_path is not None:
            sinks.append(JsonlSink(jsonl_path))
        if perfetto_path is not None:
            sinks.append(PerfettoSink(perfetto_path))
        return cls(
            tracer=Tracer(sinks, validate=validate),
            sampler=EpochSampler(epoch_cycles,
                                 snapshot_registry=snapshot_registry),
        )

    @classmethod
    def in_memory(cls, epoch_cycles: Optional[int] = None,
                  validate: bool = True) -> "Telemetry":
        """Telemetry collecting events and samples in memory."""
        return cls(
            tracer=Tracer([MemorySink()], validate=validate),
            sampler=EpochSampler(epoch_cycles),
        )

    @classmethod
    def observing(cls, epoch_cycles: Optional[int] = None,
                  validate: bool = False) -> "Telemetry":
        """In-memory telemetry plus a full request-span collector.

        The bundle :mod:`repro.obs` consumers want: events and epoch
        samples in memory, and every request's lifecycle decomposed
        into cause-tagged wait intervals (``telemetry.spans``).
        """
        from repro.obs.spans import SpanCollector

        return cls(
            tracer=Tracer([MemorySink()], validate=validate),
            sampler=EpochSampler(epoch_cycles),
            spans=SpanCollector(),
        )

    # -- lifecycle ------------------------------------------------------

    def bind(self, system) -> None:
        """Attach to a system run; resets per-run state if reused."""
        if self.system is not None and self.registry is not None:
            self.registry.reset()
        self.system = system
        if self.sampler is not None:
            self.sampler.reset()

    @property
    def events(self):
        """Events collected by the first in-memory sink, if any."""
        if self.tracer is not None:
            for sink in self.tracer.sinks:
                if isinstance(sink, MemorySink):
                    return sink.events
        return []

    @property
    def samples(self):
        return self.sampler.samples if self.sampler is not None else []

    def summary(self) -> dict:
        """Compact JSON-friendly digest (campaign stores keep this)."""
        out = {
            "events": (self.tracer.events_emitted
                       if self.tracer is not None else 0),
            "epochs": len(self.samples),
        }
        if self.spans is not None:
            out["spans"] = self.spans.requests_completed
        if self.system is not None:
            reg = self.system.metrics
            out["requests"] = int(reg.sum("dram.channel.serviced_requests"))
            hits = reg.sum("dram.bank.row_hits")
            total = (hits + reg.sum("dram.bank.row_conflicts")
                     + reg.sum("dram.bank.row_closed"))
            out["row_hit_rate"] = hits / total if total else 0.0
            out["quanta"] = int(reg.value("sim.quanta"))
        return out

    def close(self) -> None:
        """Flush and close every sink (writes the Perfetto file)."""
        if self.tracer is not None:
            self.tracer.close()


__all__ = [
    "Counter",
    "EVENT_SCHEMA",
    "EpochSample",
    "EpochSampler",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "PerfettoSink",
    "SchemaError",
    "Sink",
    "Telemetry",
    "Tracer",
    "configure_logging",
    "events_to_perfetto",
    "get_logger",
    "jsonl_to_perfetto",
    "memory_tracer",
    "validate_event",
    "validate_jsonl",
]
