"""Event tracer: fan events out to pluggable sinks.

The tracer is designed so a *disabled* tracer costs exactly one branch
at each emit site: the system binds ``self._tracer`` to ``None`` when
tracing is off and the hot path does ``if tr is not None: tr.emit(...)``.
An *enabled* tracer builds one dict per event and hands it to every
sink; events are validated against the schema only when ``validate=True``
(tests and CI), not on the production path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.telemetry.schema import validate_event
from repro.telemetry.sinks import MemorySink, Sink


class Tracer:
    """Fan-out of schema'd events to sinks, with an emit counter."""

    def __init__(self, sinks: Optional[Sequence[Sink]] = None,
                 validate: bool = False) -> None:
        self.sinks: List[Sink] = list(sinks or [])
        self.validate = validate
        self.events_emitted = 0

    @property
    def enabled(self) -> bool:
        return bool(self.sinks)

    def add_sink(self, sink: Sink) -> Sink:
        self.sinks.append(sink)
        return sink

    def emit(self, ev: str, ts: int, **fields) -> None:
        """Record one event at simulation cycle ``ts``."""
        event = {"ev": ev, "ts": ts}
        event.update(fields)
        if self.validate:
            validate_event(event)
        self.events_emitted += 1
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def memory_tracer(validate: bool = True) -> "Tracer":
    """A tracer with one in-memory sink (convenient in tests)."""
    return Tracer([MemorySink()], validate=validate)
