"""Render a run's telemetry time-series as text reports.

``telemetry report`` (CLI) uses these to print the per-epoch per-thread
MPKI/RBL/BLP table and the Fig. 7-style cluster timeline — the
time-varying view that explains *why* a run behaved the way it did,
which end-of-run aggregates cannot.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.telemetry.sampler import EpochSample


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    cells = [[_format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(row):
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in cells)
    return "\n".join(lines)


def epoch_table(samples: Sequence[EpochSample],
                thread_ids: Optional[Sequence[int]] = None,
                benchmarks: Optional[Sequence[str]] = None) -> str:
    """Per-epoch per-thread metrics as one aligned table."""
    if not samples:
        return "(no epoch samples)"
    headers = ["cycle", "tid", "bench", "MPKI", "IPC", "RBL", "BLP",
               "cluster", "rank"]
    rows = []
    for sample in samples:
        for row in sample.threads:
            tid = row["tid"]
            if thread_ids is not None and tid not in thread_ids:
                continue
            rows.append([
                sample.cycle, tid,
                benchmarks[tid] if benchmarks else "-",
                row["mpki"], row["ipc"], row["rbl"], row["blp"],
                row.get("cluster"), row.get("rank"),
            ])
    return _table(headers, rows)


def cluster_timeline(samples: Sequence[EpochSample],
                     benchmarks: Optional[Sequence[str]] = None) -> str:
    """Fig. 7-style timeline: one row per thread, one column per epoch.

    ``L`` = latency-sensitive cluster, ``B`` = bandwidth-sensitive,
    ``.`` = not annotated (scheduler without clustering, or epoch
    before the first quantum).
    """
    if not samples:
        return "(no epoch samples)"
    n = len(samples[0].threads)
    label_of = {None: ".", "latency": "L", "bandwidth": "B"}
    lines = [f"cluster timeline ({len(samples)} epochs of "
             f"{samples[0].cycle} cycles):"]
    for tid in range(n):
        marks = "".join(
            label_of.get(s.threads[tid].get("cluster"), "?")
            for s in samples
        )
        name = benchmarks[tid] if benchmarks else f"t{tid}"
        lines.append(f"  {name:>16} {marks}")
    lines.append("  (L=latency-sensitive, B=bandwidth-sensitive)")
    return "\n".join(lines)


def system_table(samples: Sequence[EpochSample]) -> str:
    """Per-epoch system-level table: queue depths and bus utilisation."""
    if not samples:
        return "(no epoch samples)"
    headers = ["cycle", "queued/ch", "bus util/ch"]
    rows = [
        [s.cycle,
         " ".join(str(q) for q in s.queue_depths),
         " ".join(f"{u:.0%}" for u in s.bus_busy)]
        for s in samples
    ]
    return _table(headers, rows)


def render_report(samples: Sequence[EpochSample],
                  benchmarks: Optional[Sequence[str]] = None) -> str:
    """The full ``telemetry report`` text output."""
    parts: List[str] = [
        epoch_table(samples, benchmarks=benchmarks),
        "",
        cluster_timeline(samples, benchmarks=benchmarks),
        "",
        system_table(samples),
    ]
    return "\n".join(parts)


def render_metrics_report(snapshot: dict) -> str:
    """Text report for a ``/v1/metrics`` service snapshot.

    Renders the flat registry metrics, and — when the service runs
    with tracing on — the per-stage latency percentiles, the per-lane
    wait/service percentiles, and the latest timeline sample.
    """
    parts: List[str] = []

    metrics = snapshot.get("metrics") or {}
    if metrics:
        rows = [[name, value] for name, value in sorted(metrics.items())]
        parts.append(_table(["metric", "value"], rows))
    else:
        parts.append("(no registry metrics)")

    stages = snapshot.get("stages") or {}
    if stages:
        headers = ["stage", "count", "mean_s", "p50_s", "p90_s",
                   "p99_s", "max_s"]
        rows = [
            [stage, s.get("count"), s.get("mean_s"), s.get("p50_s"),
             s.get("p90_s"), s.get("p99_s"), s.get("max_s")]
            for stage, s in stages.items()
        ]
        parts.extend(["", _table(headers, rows)])

    lanes = snapshot.get("lanes") or {}
    if lanes:
        headers = ["lane", "finished", "wait p50", "wait p99",
                   "service p50", "service p99"]
        rows = [
            [lane, s.get("finished"),
             (s.get("wait") or {}).get("p50_s"),
             (s.get("wait") or {}).get("p99_s"),
             (s.get("service") or {}).get("p50_s"),
             (s.get("service") or {}).get("p99_s")]
            for lane, s in sorted(lanes.items())
        ]
        parts.extend(["", _table(headers, rows)])

    series = snapshot.get("series") or []
    if series:
        last = series[-1]
        depths = last.get("depths") or {}
        depth_txt = " ".join(f"{lane}={d}" for lane, d in sorted(
            depths.items())) or "-"
        parts.extend(["", "timeline: {} samples; latest: depth [{}], "
                      "shards busy {}, burn fast {:.2f}, alert {}".format(
                          len(series), depth_txt,
                          last.get("shards_busy", 0),
                          last.get("burn_fast", 0.0),
                          last.get("alert", "ok"))])
    return "\n".join(parts)
