"""Epoch sampler: periodic snapshots of a running system's metrics.

Every ``epoch_cycles`` the sampler turns the system's lifetime counters
into *per-epoch* per-thread rows (MPKI, RBL, BLP, service share) by
differencing against the previous sample — so the series is exact
regardless of how the monitor's own quantum windows reset.  Scheduler
policy state (cluster membership, rank) is annotated per row via
:meth:`repro.schedulers.base.Scheduler.epoch_annotations`.

Sampling is read-only: it never mutates simulation state, touches no
RNG, and therefore cannot perturb results (enabled and disabled runs
are bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import System


def _rate(num: float, den: float) -> float:
    return num / den if den else 0.0


@dataclass
class EpochSample:
    """One sampling instant: per-thread rows plus system-level state."""

    cycle: int
    threads: List[dict]
    queue_depths: Tuple[int, ...]
    bus_busy: Tuple[float, ...]
    registry: Optional[Dict[str, float]] = None

    def thread(self, tid: int) -> dict:
        return self.threads[tid]


@dataclass
class _PerThreadPrev:
    instructions: int = 0
    misses: int = 0
    shadow_hits: int = 0
    shadow_accesses: int = 0
    blp_integral: float = 0.0
    busy_time: int = 0
    service_cycles: int = 0


class EpochSampler:
    """Snapshot the registry and per-thread metrics every N cycles.

    ``epoch_cycles=None`` aligns epochs to the system's quantum length
    (the natural resolution of the paper's mechanisms).  Set
    ``snapshot_registry=True`` to additionally store the full flat
    registry snapshot with every sample (larger, but lossless).
    """

    def __init__(self, epoch_cycles: Optional[int] = None,
                 snapshot_registry: bool = False) -> None:
        self.epoch_cycles = epoch_cycles
        self.snapshot_registry = snapshot_registry
        self.samples: List[EpochSample] = []
        self._prev: List[_PerThreadPrev] = []
        self._prev_accesses: List[int] = []
        self._last_cycle = 0

    def reset(self) -> None:
        """Clear the series; called when the sampler is bound to a run."""
        self.samples = []
        self._prev = []
        self._prev_accesses = []
        self._last_cycle = 0

    def resolve_period(self, system: "System") -> int:
        """The effective epoch length for ``system``."""
        period = self.epoch_cycles or system.config.quantum_cycles
        if period <= 0:
            raise ValueError(f"epoch_cycles must be positive, got {period}")
        return period

    # ------------------------------------------------------------------

    def sample(self, system: "System", now: int) -> EpochSample:
        """Take one sample at cycle ``now`` and append it to the series."""
        n = len(system.threads)
        if not self._prev:
            self._prev = [_PerThreadPrev() for _ in range(n)]
            self._prev_accesses = [0] * len(system.channels)
        monitor = system.monitor
        scheduler = system.scheduler
        elapsed = max(1, now - self._last_cycle)
        rows: List[dict] = []
        for tid in range(n):
            prev = self._prev[tid]
            stats = system.threads[tid].stats
            d_instr = stats.instructions - prev.instructions
            d_miss = stats.misses - prev.misses
            d_sh = monitor.lifetime_shadow_hits[tid] - prev.shadow_hits
            d_sa = monitor.lifetime_shadow_accesses[tid] - prev.shadow_accesses
            d_blp = monitor.lifetime_blp_integral[tid] - prev.blp_integral
            d_busy = monitor.lifetime_busy_time[tid] - prev.busy_time
            d_svc = monitor.lifetime_service_cycles[tid] - prev.service_cycles
            row = {
                "tid": tid,
                "instructions": d_instr,
                "misses": d_miss,
                "mpki": _rate(1000.0 * d_miss, d_instr),
                "ipc": d_instr / elapsed,
                "rbl": _rate(d_sh, d_sa),
                "blp": _rate(d_blp, d_busy),
                "service_cycles": d_svc,
            }
            row.update(scheduler.epoch_annotations(tid))
            rows.append(row)
            prev.instructions = stats.instructions
            prev.misses = stats.misses
            prev.shadow_hits = monitor.lifetime_shadow_hits[tid]
            prev.shadow_accesses = monitor.lifetime_shadow_accesses[tid]
            prev.blp_integral = monitor.lifetime_blp_integral[tid]
            prev.busy_time = monitor.lifetime_busy_time[tid]
            prev.service_cycles = monitor.lifetime_service_cycles[tid]
        burst = system.config.timings.burst
        bus = []
        for ch_idx, channel in enumerate(system.channels):
            accesses = sum(
                b.row_hits + b.row_conflicts + b.row_closed
                for b in channel.banks
            )
            delta = accesses - self._prev_accesses[ch_idx]
            self._prev_accesses[ch_idx] = accesses
            bus.append(min(1.0, _rate(delta * burst, elapsed)))
        sample = EpochSample(
            cycle=now,
            threads=rows,
            queue_depths=tuple(
                ch.pending_requests() for ch in system.channels
            ),
            bus_busy=tuple(bus),
            registry=(system.metrics.snapshot()
                      if self.snapshot_registry else None),
        )
        self.samples.append(sample)
        self._last_cycle = now
        return sample

    # ------------------------------------------------------------------
    # series access
    # ------------------------------------------------------------------

    def series(self, tid: int, metric: str) -> List[float]:
        """One thread's per-epoch series of ``metric``."""
        return [s.threads[tid].get(metric) for s in self.samples]

    def cycles(self) -> List[int]:
        return [s.cycle for s in self.samples]
