"""Microbenchmarks of paper Table 1 / Figure 2.

Two specifically constructed bandwidth-sensitive threads with equal
memory intensity but opposite locality structure:

* ``random-access`` — high bank-level parallelism (72.7% of the 16-bank
  maximum = 11.6 banks), essentially no row-buffer locality.
* ``streaming`` — almost pure row-buffer hits (99%), essentially no
  bank-level parallelism (1.05 banks).

The paper uses these to show that the random-access thread is far more
susceptible to interference (Figure 2), motivating the niceness metric.
"""

from repro.workloads.spec import BenchmarkSpec

#: Random-access microbenchmark (Table 1, first row).
RANDOM_ACCESS = BenchmarkSpec(name="random-access", mpki=100.0, rbl=0.001, blp=11.6)

#: Streaming microbenchmark (Table 1, second row).
STREAMING = BenchmarkSpec(name="streaming", mpki=100.0, rbl=0.99, blp=1.05)
