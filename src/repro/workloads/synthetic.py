"""Synthetic address-stream generation.

Substitutes for the paper's Pin-captured SPEC CPU2006 traces.  A stream
is parameterised by a :class:`~repro.workloads.spec.BenchmarkSpec` and
produces, per miss, a (channel, bank, row) target such that the
*measured* row-buffer locality and bank-level parallelism of the thread
converge to the spec's targets:

* **RBL**: each access to a bank reuses the thread's previous row in
  that bank with probability ``rbl`` — precisely the shadow row-buffer
  hit rate the paper's monitors measure.
* **BLP**: misses rotate over a *spread* of banks resampled around the
  BLP target (floor/ceil with matching mean) within a contiguous bank
  window, so the number of banks holding the thread's outstanding
  requests tracks the target.

The bank window *drifts*: every row change advances it by one bank,
the way a sequential walk crosses from one row into the next bank.
A streaming thread (RBL ~= 0.99) therefore dwells ~100 misses on one
bank and then moves on — sweeping the whole memory system and
temporarily denying service to any thread sharing its current bank
(the paper's §2.4 hostility).  A random-access thread's window slides
almost every miss, scattering its requests bank-wide.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.config import SimConfig
from repro.workloads.spec import BenchmarkSpec


class AddressStream:
    """Generates DRAM targets for one thread's cache misses."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        config: SimConfig,
        rng: np.random.Generator,
    ):
        self.spec = spec
        self.config = config
        self._rng = rng
        num_banks = config.num_banks
        self._window = min(num_banks, max(1, math.ceil(spec.blp)))
        self._base = int(rng.integers(num_banks))
        # The first access after drifting onto a bank can never reuse a
        # row, so the per-access reuse probability is raised such that
        # the *measured* reuse rate (hits / all accesses, first touches
        # included) converges to exactly ``rbl``:
        #   measured = p / (2 - p)  =>  p = 2*rbl / (1 + rbl)
        self._reuse_prob = 2.0 * spec.rbl / (1.0 + spec.rbl)
        self._last_row = {}  # global bank id -> last row accessed
        self._spread = self._sample_spread()
        self._pos = 0
        self.accesses = 0
        self.row_reuses = 0
        self.drifts = 0

    # ------------------------------------------------------------------

    def _sample_spread(self) -> int:
        """How many banks the next rotation of misses covers."""
        target = min(self.spec.blp, float(self._window))
        target = max(1.0, target)
        lo = math.floor(target)
        hi = math.ceil(target)
        if lo == hi:
            return lo
        frac = target - lo
        return hi if self._rng.random() < frac else lo

    def _global_to_location(self, gbank: int, row: int) -> Tuple[int, int, int]:
        channel = gbank // self.config.banks_per_channel
        bank = gbank % self.config.banks_per_channel
        return channel, bank, row

    def _drift(self) -> None:
        """Slide the bank window by one, like a walk crossing a row end."""
        departed = self._base
        self._base = (self._base + 1) % self.config.num_banks
        self._last_row.pop(departed, None)
        self.drifts += 1

    def _row_for(self, gbank: int) -> Tuple[int, bool]:
        """Row for the next access to ``gbank``; True if an open row
        was exhausted (a re-visited bank switched rows).

        The first touch of a bank opens a fresh row but is not an
        exhaustion — otherwise every post-drift access would cascade
        into another drift.  The expected drift rate under this rule is
        ``(1 - rbl) / 2`` per access.
        """
        self.accesses += 1
        last = self._last_row.get(gbank)
        if last is None:
            row = int(self._rng.integers(self.config.num_rows))
            self._last_row[gbank] = row
            return row, False
        if self._rng.random() < self._reuse_prob:
            self.row_reuses += 1
            return last, False
        # row exhausted: sequential walk to the next row (streams read
        # memory in address order; prefetchers can predict this)
        row = (last + 1) % self.config.num_rows
        self._last_row[gbank] = row
        return row, True

    # ------------------------------------------------------------------

    def next_location(self) -> Tuple[int, int, int]:
        """DRAM target of the thread's next cache miss."""
        if self._pos >= self._spread:
            self._pos = 0
            self._spread = self._sample_spread()
        gbank = (self._base + self._pos) % self.config.num_banks
        self._pos += 1
        row, exhausted = self._row_for(gbank)
        if exhausted:
            self._drift()
        return self._global_to_location(gbank, row)

    def next_locations(self, count: int) -> List[Tuple[int, int, int]]:
        """Convenience: the next ``count`` miss targets."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.next_location() for _ in range(count)]

    @property
    def measured_reuse_rate(self) -> float:
        """Fraction of accesses that reused the previous row (sanity stat)."""
        if self.accesses == 0:
            return 0.0
        return self.row_reuses / self.accesses
