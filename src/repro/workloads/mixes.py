"""Multiprogrammed workload construction.

Provides the four representative workloads of paper Table 5 and the
random workload suites the evaluation uses: for each memory-intensity
category (fraction of memory-intensive benchmarks: 25%, 50%, 75%,
100%), the paper simulates 32 randomly composed 24-thread workloads,
96 total across the 50/75/100% categories used in Figures 1 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.spec import (
    BENCHMARKS,
    MEMORY_INTENSIVE,
    MEMORY_NON_INTENSIVE,
    BenchmarkSpec,
    benchmark,
)


@dataclass(frozen=True)
class Workload:
    """A multiprogrammed mix: one benchmark per hardware context.

    Benchmarks are usually named Table 4 entries; ``custom_specs``
    allows mixes of ad-hoc :class:`BenchmarkSpec` objects (e.g. the
    Table 1 microbenchmarks) that are not in the registry.
    """

    name: str
    benchmark_names: Tuple[str, ...]
    weights: Optional[Tuple[int, ...]] = None
    custom_specs: Optional[Tuple[BenchmarkSpec, ...]] = None

    def __post_init__(self):
        if self.custom_specs is not None:
            if tuple(s.name for s in self.custom_specs) != self.benchmark_names:
                raise ValueError(
                    f"workload {self.name}: custom_specs names must match "
                    "benchmark_names"
                )
        else:
            for bname in self.benchmark_names:
                if bname not in BENCHMARKS:
                    raise ValueError(
                        f"workload {self.name}: unknown benchmark {bname}"
                    )
        if self.weights is not None and len(self.weights) != len(
            self.benchmark_names
        ):
            raise ValueError(
                f"workload {self.name}: {len(self.weights)} weights for "
                f"{len(self.benchmark_names)} threads"
            )

    @property
    def num_threads(self) -> int:
        return len(self.benchmark_names)

    @property
    def specs(self) -> Tuple[BenchmarkSpec, ...]:
        if self.custom_specs is not None:
            return self.custom_specs
        return tuple(benchmark(n) for n in self.benchmark_names)

    @property
    def intensity(self) -> float:
        """Fraction of memory-intensive benchmarks in the mix."""
        intensive = sum(1 for s in self.specs if s.memory_intensive)
        return intensive / self.num_threads


def workload_from_specs(
    name: str,
    specs: Sequence[BenchmarkSpec],
    weights: Optional[Sequence[int]] = None,
) -> Workload:
    """Build a workload directly from spec objects (registry bypass)."""
    return Workload(
        name=name,
        benchmark_names=tuple(s.name for s in specs),
        weights=tuple(weights) if weights is not None else None,
        custom_specs=tuple(specs),
    )


def _expand(counts: Sequence[Tuple[str, int]]) -> List[str]:
    names: List[str] = []
    for name, count in counts:
        names.extend([name] * count)
    return names


def _table5(name: str, non_intensive, intensive) -> Workload:
    names = _expand(non_intensive) + _expand(intensive)
    if len(names) != 24:
        raise AssertionError(f"workload {name} has {len(names)} threads, want 24")
    return Workload(name=name, benchmark_names=tuple(names))


#: The four representative 24-thread workloads of paper Table 5
#: (all are 50%-memory-intensive mixes).
TABLE5_WORKLOADS: Dict[str, Workload] = {
    "A": _table5(
        "A",
        [("calculix", 3), ("dealII", 1), ("gcc", 1), ("gromacs", 2),
         ("namd", 1), ("perlbench", 1), ("povray", 1), ("sjeng", 1),
         ("tonto", 1)],
        [("mcf", 1), ("soplex", 2), ("lbm", 2), ("leslie3d", 1),
         ("sphinx3", 1), ("xalancbmk", 1), ("omnetpp", 1), ("astar", 1),
         ("hmmer", 2)],
    ),
    "B": _table5(
        "B",
        [("gcc", 2), ("gobmk", 3), ("namd", 2), ("perlbench", 3),
         ("sjeng", 1), ("wrf", 1)],
        [("bzip2", 2), ("cactusADM", 3), ("GemsFDTD", 1), ("h264ref", 2),
         ("hmmer", 1), ("libquantum", 2), ("sphinx3", 1)],
    ),
    "C": _table5(
        "C",
        [("calculix", 2), ("dealII", 2), ("gromacs", 2), ("namd", 1),
         ("perlbench", 2), ("povray", 1), ("tonto", 1), ("wrf", 1)],
        [("GemsFDTD", 2), ("libquantum", 3), ("cactusADM", 1), ("astar", 1),
         ("omnetpp", 1), ("bzip2", 1), ("soplex", 3)],
    ),
    "D": _table5(
        "D",
        [("calculix", 1), ("dealII", 1), ("gcc", 1), ("gromacs", 1),
         ("perlbench", 1), ("povray", 2), ("sjeng", 2), ("tonto", 3)],
        [("omnetpp", 1), ("bzip2", 2), ("h264ref", 1), ("cactusADM", 1),
         ("astar", 1), ("soplex", 1), ("lbm", 2), ("leslie3d", 1),
         ("xalancbmk", 2)],
    ),
}


def workload_to_dict(workload: Workload) -> Dict:
    """JSON-serialisable representation of a workload."""
    data: Dict = {
        "name": workload.name,
        "benchmarks": list(workload.benchmark_names),
    }
    if workload.weights is not None:
        data["weights"] = list(workload.weights)
    if workload.custom_specs is not None:
        data["custom_specs"] = [
            {"name": s.name, "mpki": s.mpki, "rbl": s.rbl, "blp": s.blp}
            for s in workload.custom_specs
        ]
    return data


def workload_from_dict(data: Dict) -> Workload:
    """Rebuild a workload from :func:`workload_to_dict` output."""
    custom = None
    if "custom_specs" in data:
        custom = tuple(
            BenchmarkSpec(
                name=s["name"], mpki=s["mpki"], rbl=s["rbl"], blp=s["blp"]
            )
            for s in data["custom_specs"]
        )
    weights = tuple(data["weights"]) if "weights" in data else None
    return Workload(
        name=data["name"],
        benchmark_names=tuple(data["benchmarks"]),
        weights=weights,
        custom_specs=custom,
    )


def save_workload(workload: Workload, path) -> None:
    """Write a workload definition to a JSON file."""
    import json
    from pathlib import Path

    Path(path).write_text(json.dumps(workload_to_dict(workload), indent=2))


def load_workload(path) -> Workload:
    """Read a workload definition from a JSON file."""
    import json
    from pathlib import Path

    return workload_from_dict(json.loads(Path(path).read_text()))


def make_intensity_workload(
    intensity: float,
    num_threads: int = 24,
    seed: int = 0,
    name: Optional[str] = None,
) -> Workload:
    """Randomly compose a mix with the given memory-intensive fraction.

    Benchmarks are drawn with replacement from the intensive and
    non-intensive pools, mirroring the paper's random workload
    construction (Table 5 shows several duplicated instances).
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError("intensity must be in [0, 1]")
    rng = np.random.default_rng((seed, int(intensity * 100), num_threads))
    n_intensive = round(intensity * num_threads)
    n_light = num_threads - n_intensive
    picks = [
        MEMORY_INTENSIVE[int(i)]
        for i in rng.integers(len(MEMORY_INTENSIVE), size=n_intensive)
    ]
    picks += [
        MEMORY_NON_INTENSIVE[int(i)]
        for i in rng.integers(len(MEMORY_NON_INTENSIVE), size=n_light)
    ]
    rng.shuffle(picks)
    label = name or f"mix-{int(intensity * 100)}pct-s{seed}"
    return Workload(name=label, benchmark_names=tuple(picks))


def make_workload_suite(
    intensities: Sequence[float] = (0.5, 0.75, 1.0),
    per_category: int = 32,
    num_threads: int = 24,
    base_seed: int = 0,
) -> List[Workload]:
    """Build the paper's evaluation suite.

    Defaults give the 96 workloads of Figures 1 and 4: 32 mixes at each
    of 50%, 75% and 100% memory intensity.
    """
    suite: List[Workload] = []
    for intensity in intensities:
        for i in range(per_category):
            suite.append(
                make_intensity_workload(
                    intensity,
                    num_threads=num_threads,
                    seed=base_seed + i,
                    name=f"mix-{int(intensity * 100)}pct-{i:02d}",
                )
            )
    return suite
