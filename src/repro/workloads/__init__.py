"""Workload substrate: benchmark specs, trace synthesis, and mixes."""

from repro.workloads.microbench import RANDOM_ACCESS, STREAMING
from repro.workloads.mixes import (
    TABLE5_WORKLOADS,
    Workload,
    load_workload,
    make_intensity_workload,
    make_workload_suite,
    save_workload,
    workload_from_dict,
    workload_from_specs,
    workload_to_dict,
)
from repro.workloads.spec import (
    BENCHMARKS,
    MEMORY_INTENSIVE,
    MEMORY_NON_INTENSIVE,
    BenchmarkSpec,
    benchmark,
)
from repro.workloads.synthetic import AddressStream

__all__ = [
    "AddressStream",
    "BENCHMARKS",
    "BenchmarkSpec",
    "MEMORY_INTENSIVE",
    "MEMORY_NON_INTENSIVE",
    "RANDOM_ACCESS",
    "STREAMING",
    "TABLE5_WORKLOADS",
    "Workload",
    "benchmark",
    "load_workload",
    "make_intensity_workload",
    "make_workload_suite",
    "save_workload",
    "workload_from_dict",
    "workload_from_specs",
    "workload_to_dict",
]
