"""SPEC CPU2006 benchmark characteristics (paper Table 4).

The paper drives its simulator with Pin traces of 25 SPEC CPU2006
benchmarks and reports, for each, the three statistics that fully
determine scheduler behaviour: memory intensity (L2 MPKI), row-buffer
locality (RBL, shadow row-buffer hit rate) and bank-level parallelism
(BLP, average banks with outstanding requests).  We reproduce each
benchmark as a synthetic trace generator targeting exactly that triple.

Benchmarks with MPKI > 1 are classified memory-intensive (paper §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkSpec:
    """The scheduler-relevant behavioural signature of one benchmark.

    Attributes:
        name: benchmark name (SPEC id dropped for brevity).
        mpki: last-level-cache misses per kilo-instruction.
        rbl: row-buffer locality in [0, 1] — inherent (alone-run,
            shadow row-buffer) hit rate.
        blp: bank-level parallelism — average number of banks with at
            least one outstanding request while the thread has any.
    """

    name: str
    mpki: float
    rbl: float
    blp: float

    def __post_init__(self):
        if self.mpki <= 0:
            raise ValueError(f"{self.name}: MPKI must be positive")
        if not 0.0 <= self.rbl <= 1.0:
            raise ValueError(f"{self.name}: RBL must be in [0, 1]")
        if self.blp < 1.0:
            raise ValueError(f"{self.name}: BLP must be >= 1")

    @property
    def memory_intensive(self) -> bool:
        """Paper classification: MPKI > 1 is memory-intensive."""
        return self.mpki > 1.0


def _spec(name: str, mpki: float, rbl_pct: float, blp: float) -> BenchmarkSpec:
    return BenchmarkSpec(name=name, mpki=mpki, rbl=rbl_pct / 100.0, blp=blp)


#: Table 4 of the paper, verbatim (RBL given there in percent).
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    s.name: s
    for s in [
        _spec("mcf", 97.38, 42.41, 6.20),
        _spec("libquantum", 50.00, 99.22, 1.05),
        _spec("leslie3d", 49.35, 91.18, 1.51),
        _spec("soplex", 46.70, 88.84, 1.79),
        _spec("lbm", 43.52, 95.17, 2.82),
        _spec("GemsFDTD", 31.79, 56.22, 3.15),
        _spec("sphinx3", 24.94, 84.78, 2.24),
        _spec("xalancbmk", 22.95, 72.01, 2.35),
        _spec("omnetpp", 21.63, 45.71, 4.37),
        _spec("cactusADM", 12.01, 19.05, 1.43),
        _spec("astar", 9.26, 75.24, 1.61),
        _spec("hmmer", 5.66, 34.42, 1.25),
        _spec("bzip2", 3.98, 71.44, 1.87),
        _spec("h264ref", 2.30, 90.34, 1.19),
        _spec("gromacs", 0.98, 89.25, 1.54),
        _spec("gobmk", 0.77, 65.76, 1.52),
        _spec("sjeng", 0.39, 12.47, 1.57),
        _spec("gcc", 0.34, 70.92, 1.96),
        _spec("dealII", 0.21, 86.83, 1.22),
        _spec("wrf", 0.21, 92.34, 1.23),
        _spec("namd", 0.19, 93.05, 1.16),
        _spec("perlbench", 0.12, 81.59, 1.66),
        _spec("calculix", 0.10, 88.71, 1.20),
        _spec("tonto", 0.03, 88.60, 1.81),
        _spec("povray", 0.01, 87.22, 1.43),
    ]
}

#: Benchmarks with MPKI > 1 (14 of 25), in descending intensity.
MEMORY_INTENSIVE: Tuple[str, ...] = tuple(
    s.name
    for s in sorted(BENCHMARKS.values(), key=lambda s: -s.mpki)
    if s.memory_intensive
)

#: Benchmarks with MPKI <= 1 (11 of 25), in descending intensity.
MEMORY_NON_INTENSIVE: Tuple[str, ...] = tuple(
    s.name
    for s in sorted(BENCHMARKS.values(), key=lambda s: -s.mpki)
    if not s.memory_intensive
)


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name (raises KeyError with options)."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        ) from None
