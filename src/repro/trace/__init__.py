"""Trace recording and replay.

The paper drives its simulator with Pin-captured traces; this package
provides the equivalent bring-your-own-trace path for the reproduction:
record the miss stream of any simulated thread to a file, and replay
recorded streams as workload threads — bit-exact, scheduler-agnostic.
"""

from repro.trace.format import TraceEvent, TraceReader, TraceWriter, read_trace, write_trace
from repro.trace.record import TraceRecorder
from repro.trace.replay import TraceSpec, replay_workload

__all__ = [
    "TraceEvent",
    "TraceReader",
    "TraceRecorder",
    "TraceSpec",
    "TraceWriter",
    "read_trace",
    "replay_workload",
    "write_trace",
]
