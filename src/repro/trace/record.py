"""Recording the miss streams of a simulated system."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.trace.format import TraceEvent, write_trace


class TraceRecorder:
    """Collects every thread's miss stream during a simulation run.

    Pass an instance as ``System(..., trace_recorder=...)``; after the
    run, ``save_all`` writes one trace file per thread.
    """

    def __init__(self):
        self.events: Dict[int, List[TraceEvent]] = {}
        self.benchmarks: Dict[int, str] = {}

    def record(
        self,
        thread_id: int,
        benchmark: str,
        cycle: int,
        channel: int,
        bank: int,
        row: int,
    ) -> None:
        """Record one miss (called by the simulation system)."""
        self.events.setdefault(thread_id, []).append(
            TraceEvent(cycle=cycle, channel=channel, bank=bank, row=row)
        )
        self.benchmarks.setdefault(thread_id, benchmark)

    def save(self, thread_id: int, path: Union[str, Path]) -> int:
        """Write one thread's trace; returns the event count."""
        return write_trace(
            path,
            self.events.get(thread_id, []),
            benchmark=self.benchmarks.get(thread_id, "unknown"),
        )

    def save_all(self, directory: Union[str, Path]) -> Dict[int, Path]:
        """Write every thread's trace into ``directory``.

        Files are named ``t<NN>-<benchmark>.trace``; returns the path
        per thread id.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {}
        for thread_id in sorted(self.events):
            benchmark = self.benchmarks.get(thread_id, "unknown")
            path = directory / f"t{thread_id:02d}-{benchmark}.trace"
            self.save(thread_id, path)
            paths[thread_id] = path
        return paths
