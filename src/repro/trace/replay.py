"""Replaying recorded traces as workload threads.

Replay preserves the trace's *structure* — the compute gaps between
misses and the exact DRAM coordinates — while the memory system's
response is simulated live, so the same trace can be replayed under any
scheduler and any level of contention (this is exactly how the paper
uses its Pin traces).  Traces shorter than the run loop around.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.config import SimConfig
from repro.cpu.thread import ThreadModel
from repro.schedulers.base import Scheduler
from repro.sim import System
from repro.trace.format import TraceEvent, read_trace
from repro.workloads.mixes import Workload, workload_from_specs
from repro.workloads.spec import BenchmarkSpec


class TraceSpec:
    """A parsed trace plus the behavioural statistics derived from it."""

    def __init__(self, events: List[TraceEvent], benchmark: str = "replay"):
        if not events:
            raise ValueError("trace is empty")
        self.events = events
        self.benchmark = benchmark

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TraceSpec":
        reader_events = read_trace(path)
        name = Path(path).stem
        return cls(reader_events, benchmark=name)

    @property
    def span_cycles(self) -> int:
        return self.events[-1].cycle - self.events[0].cycle

    def mean_gap(self, ipc_peak: float = 3.0) -> float:
        if len(self.events) < 2:
            return 1000.0
        return max(1.0, self.span_cycles / (len(self.events) - 1))

    def to_benchmark_spec(self, config: SimConfig) -> BenchmarkSpec:
        """Summarise the trace as a (MPKI, RBL, BLP) spec.

        Only used for bookkeeping (workload labels, intensity
        classification); replay itself uses the raw events.
        """
        gap = self.mean_gap(config.ipc_peak)
        mpki = max(0.01, 1000.0 / (gap * config.ipc_peak))
        last_row = {}
        hits = 0
        banks = set()
        for event in self.events:
            gbank = event.channel * config.banks_per_channel + event.bank
            banks.add(gbank)
            if last_row.get(gbank) == event.row:
                hits += 1
            last_row[gbank] = event.row
        rbl = min(1.0, hits / len(self.events))
        blp = float(max(1, min(len(banks), config.num_banks)))
        return BenchmarkSpec(
            name=self.benchmark, mpki=min(1000.0, mpki), rbl=rbl, blp=blp
        )


class _ReplayAddressSource:
    """Feeds recorded coordinates, looping when exhausted."""

    def __init__(self, events: List[TraceEvent]):
        self._events = events
        self._index = 0

    def next_location(self) -> Tuple[int, int, int]:
        event = self._events[self._index]
        self._index = (self._index + 1) % len(self._events)
        return event.channel, event.bank, event.row


class ReplayThread(ThreadModel):
    """A thread whose misses follow a recorded trace.

    Compute gaps are the recorded inter-miss cycle deltas; addresses
    are the recorded coordinates.  Window semantics (in-order retire,
    MSHR bound) are inherited from :class:`ThreadModel`.
    """

    def __init__(
        self,
        thread_id: int,
        trace: TraceSpec,
        config: SimConfig,
        seed: int,
        weight: int = 1,
        stream: Optional[int] = None,
    ):
        spec = trace.to_benchmark_spec(config)
        # Phases come from the trace itself; disable the synthetic ones.
        super().__init__(
            thread_id,
            spec,
            config.with_(phase_mean_cycles=0),
            seed,
            weight=weight,
            stream=stream,
        )
        self.trace = trace
        self._addr = _ReplayAddressSource(trace.events)
        self._gaps = self._compute_gaps(trace.events)
        self._gap_index = 0

    @staticmethod
    def _compute_gaps(events: List[TraceEvent]) -> List[int]:
        gaps = [
            max(1, b.cycle - a.cycle)
            for a, b in zip(events, events[1:])
        ]
        # wrap-around gap when the trace loops: reuse the mean gap
        mean = max(1, int(sum(gaps) / len(gaps))) if gaps else 1000
        return (gaps or [1000]) + [mean]

    def issue_gap(self) -> int:
        gap = self._gaps[self._gap_index]
        self._gap_index = (self._gap_index + 1) % len(self._gaps)
        self._pending_credit = gap * self.config.ipc_peak
        self.program_time += gap
        return gap


def replay_workload(
    traces: Sequence[Union[TraceSpec, str, Path]],
    scheduler: Scheduler,
    config: Optional[SimConfig] = None,
    seed: int = 0,
    name: str = "replay",
) -> System:
    """Build a System whose threads replay the given traces.

    Returns the (not yet run) system; call ``.run()`` on it.
    """
    config = config or SimConfig()
    specs: List[TraceSpec] = [
        t if isinstance(t, TraceSpec) else TraceSpec.from_file(t)
        for t in traces
    ]
    workload = workload_from_specs(
        name, tuple(s.to_benchmark_spec(config) for s in specs)
    )
    system = System(workload, scheduler, config, seed=seed)
    system.threads = [
        ReplayThread(tid, trace, config, seed, stream=tid)
        for tid, trace in enumerate(specs)
    ]
    return system
