"""On-disk trace format.

A trace is the miss stream of ONE thread: for each last-level-cache
miss, the issue cycle and the DRAM coordinate it addresses.  The file
format is line-oriented text, one event per line::

    # repro-trace v1 <benchmark-name>
    <issue_cycle> <channel> <bank> <row>

Text keeps traces greppable and diffable; they compress well and a
100M-cycle intensive thread is only a few hundred thousand lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Union

MAGIC = "# repro-trace v1"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded cache miss."""

    cycle: int
    channel: int
    bank: int
    row: int

    def __post_init__(self):
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")
        if min(self.channel, self.bank, self.row) < 0:
            raise ValueError("coordinates must be non-negative")


class TraceWriter:
    """Streams trace events to an open text file."""

    def __init__(self, path: Union[str, Path], benchmark: str = "unknown"):
        self.path = Path(path)
        self.benchmark = benchmark
        self._file = None
        self.events_written = 0

    def __enter__(self) -> "TraceWriter":
        self._file = self.path.open("w")
        self._file.write(f"{MAGIC} {self.benchmark}\n")
        return self

    def write(self, event: TraceEvent) -> None:
        if self._file is None:
            raise RuntimeError("TraceWriter must be used as a context manager")
        self._file.write(
            f"{event.cycle} {event.channel} {event.bank} {event.row}\n"
        )
        self.events_written += 1

    def __exit__(self, *exc) -> None:
        self._file.close()
        self._file = None


class TraceReader:
    """Iterates trace events from a file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.benchmark = "unknown"

    def __iter__(self) -> Iterator[TraceEvent]:
        with self.path.open() as f:
            header = f.readline().rstrip("\n")
            if not header.startswith(MAGIC):
                raise ValueError(
                    f"{self.path}: not a repro trace (bad header {header!r})"
                )
            self.benchmark = header[len(MAGIC):].strip() or "unknown"
            last_cycle = -1
            for lineno, line in enumerate(f, start=2):
                parts = line.split()
                if len(parts) != 4:
                    raise ValueError(
                        f"{self.path}:{lineno}: expected 4 fields, got "
                        f"{len(parts)}"
                    )
                event = TraceEvent(*(int(p) for p in parts))
                if event.cycle < last_cycle:
                    raise ValueError(
                        f"{self.path}:{lineno}: cycles must be non-decreasing"
                    )
                last_cycle = event.cycle
                yield event


def write_trace(
    path: Union[str, Path], events: Iterable[TraceEvent], benchmark: str = "unknown"
) -> int:
    """Write all events to ``path``; returns the event count."""
    with TraceWriter(path, benchmark) as writer:
        for event in events:
            writer.write(event)
        return writer.events_written


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Read a whole trace into memory."""
    return list(TraceReader(path))
