"""Differential and metamorphic validation.

**Differential** testing runs the *same* workload through several
schedulers and asserts facts that no scheduling policy may change:

* request conservation holds under every policy (delegated to the
  invariant oracle);
* a single-thread run is identical under every *ranking* policy —
  with one thread, every rank/cluster/victim term in a priority tuple
  is constant across the queue, so TCM, ATLAS, STFM, FQM, PAR-BS and
  static all collapse to FR-FCFS's row-hit-first/oldest-first order.
  (Plain FCFS genuinely differs: it ignores the row buffer.)

**Metamorphic** testing applies input transforms with known output
relations:

* same seed ⇒ bit-identical :class:`~repro.sim.results.RunResult`;
* permuting thread placement permutes per-thread results but does not
  change them (a benchmark behaves identically whichever core it lands
  on — the rng streams are keyed by benchmark identity, not thread id);
* campaign worker count never changes campaign output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.sim.results import RunResult
from repro.workloads.mixes import Workload, workload_from_specs

#: Schedulers whose single-thread behaviour provably reduces to
#: FR-FCFS: with one thread every thread-indexed term of the priority
#: tuple (rank, cluster, victim flag, virtual time) is constant across
#: the queue, leaving (row_hit, -arrival).  ATLAS also carries a
#: starvation flag and PAR-BS a marking bit that *can* reorder
#: same-thread requests, so they are checked empirically but not
#: guaranteed here; FCFS is genuinely different.
RANK_REDUCIBLE = ("frfcfs", "static", "stfm", "fqm", "tcm")


def thread_outcome(result: RunResult, tid: int) -> Tuple:
    """Position-independent digest of one thread's results."""
    t = result.threads[tid]
    return (
        t.benchmark, t.instructions, t.misses, t.ipc, t.mpki,
        t.blp, t.rbl, t.service_cycles, t.avg_latency,
    )


def run_outcome(result: RunResult) -> Tuple:
    """Digest of a whole run, with threads as an unordered multiset."""
    return (
        result.cycles,
        result.total_requests,
        result.row_hits,
        result.row_conflicts,
        result.row_closed,
        result.quantum_count,
        tuple(sorted(
            thread_outcome(result, tid)
            for tid in range(len(result.threads))
        )),
    )


def run_matrix(
    workload: Workload,
    scheduler_names: Sequence[str],
    config: Optional[SimConfig] = None,
    seed: int = 0,
    check: bool = True,
) -> Dict[str, RunResult]:
    """Run one workload under several schedulers.

    With ``check=True`` every run is oracle-checked (conservation,
    timing, row state, policy invariants) — a differential sweep is
    also a sweep of the runtime oracle across the registry.
    """
    from repro.experiments.runner import run_shared
    from repro.validate.oracle import checked_run

    config = config or SimConfig()
    results: Dict[str, RunResult] = {}
    for name in scheduler_names:
        if check:
            results[name], _ = checked_run(workload, name, config, seed=seed)
        else:
            results[name] = run_shared(workload, name, config, seed=seed)
    return results


def single_thread_matrix(
    benchmark_name: str,
    scheduler_names: Sequence[str],
    config: Optional[SimConfig] = None,
    seed: int = 0,
) -> Dict[str, RunResult]:
    """Run one benchmark alone under several schedulers."""
    from repro.workloads.spec import benchmark

    workload = workload_from_specs(
        f"solo-{benchmark_name}", (benchmark(benchmark_name),)
    )
    return run_matrix(workload, scheduler_names, config, seed)


def differential_groups(
    results: Dict[str, RunResult]
) -> List[Tuple[Tuple, List[str]]]:
    """Group schedulers by identical run outcome (largest group first)."""
    groups: Dict[Tuple, List[str]] = {}
    for name, result in results.items():
        groups.setdefault(run_outcome(result), []).append(name)
    return sorted(
        ((outcome, sorted(names)) for outcome, names in groups.items()),
        key=lambda item: (-len(item[1]), item[1]),
    )


def assert_single_thread_consistency(
    benchmark_name: str,
    config: Optional[SimConfig] = None,
    seed: int = 0,
    scheduler_names: Sequence[str] = RANK_REDUCIBLE,
) -> Dict[str, RunResult]:
    """Every rank-reducible policy must run a solo thread identically."""
    results = single_thread_matrix(
        benchmark_name, scheduler_names, config, seed
    )
    reference_name = scheduler_names[0]
    reference = run_outcome(results[reference_name])
    for name in scheduler_names[1:]:
        outcome = run_outcome(results[name])
        if outcome != reference:
            raise AssertionError(
                f"single-thread divergence: {name} != {reference_name} "
                f"for solo {benchmark_name} (seed {seed}): "
                f"{outcome[:6]} vs {reference[:6]}"
            )
    return results


# ----------------------------------------------------------------------
# metamorphic transforms
# ----------------------------------------------------------------------


def assert_seed_determinism(
    workload: Workload,
    scheduler_name: str,
    config: Optional[SimConfig] = None,
    seed: int = 0,
) -> RunResult:
    """Same inputs twice ⇒ bit-identical RunResult (dataclass equality)."""
    from repro.experiments.runner import run_shared

    config = config or SimConfig()
    first = run_shared(workload, scheduler_name, config, seed=seed)
    second = run_shared(workload, scheduler_name, config, seed=seed)
    if first != second:
        raise AssertionError(
            f"nondeterminism: {scheduler_name} on {workload.name} "
            f"(seed {seed}) produced two different results"
        )
    return first


def permute_workload(workload: Workload, perm: Sequence[int]) -> Workload:
    """Reorder a workload's threads by ``perm`` (new position i takes
    old thread ``perm[i]``)."""
    if sorted(perm) != list(range(workload.num_threads)):
        raise ValueError(f"{perm!r} is not a permutation of "
                         f"0..{workload.num_threads - 1}")
    specs = workload.specs
    weights = workload.weights
    return workload_from_specs(
        f"{workload.name}-perm",
        tuple(specs[p] for p in perm),
        tuple(weights[p] for p in perm) if weights is not None else None,
    )


def assert_permutation_equivariance(
    workload: Workload,
    scheduler_name: str,
    perm: Sequence[int],
    config: Optional[SimConfig] = None,
    seed: int = 0,
) -> Tuple[RunResult, RunResult]:
    """Thread placement must not matter.

    Running a permuted copy of the workload must produce the *same
    multiset* of per-thread outcomes (each benchmark instance keeps its
    exact instructions/misses/IPC, just on a different core) and
    identical aggregate counters.
    """
    from repro.experiments.runner import run_shared

    config = config or SimConfig()
    base = run_shared(workload, scheduler_name, config, seed=seed)
    permuted = run_shared(
        permute_workload(workload, perm), scheduler_name, config, seed=seed
    )
    base_digest = run_outcome(base)
    perm_digest = run_outcome(permuted)
    if base_digest != perm_digest:
        raise AssertionError(
            f"permutation changed results for {scheduler_name} on "
            f"{workload.name} (seed {seed}, perm {list(perm)})"
        )
    return base, permuted
