"""Runtime invariant oracle — checks a live simulation against its model.

The oracle attaches to one :class:`repro.sim.System` *before* ``run()``
and verifies, request by request, that the simulation obeys the
guarantees the rest of the repo silently assumes:

* **Request conservation** — every request that enters a controller
  queue is scheduled exactly once, and every scheduled request either
  completes at its stamped completion cycle or is still in flight at
  the horizon.  Nothing leaks, nothing is serviced twice.
* **Bank timing legality** — at most one request in service per bank
  (service intervals never overlap); service occupancy matches the
  Table-3 service-time model exactly (hit / closed / conflict =
  burst / tRCD+burst / tRP+tRCD+burst bank cycles, 200/300/400-class
  round trips with the fixed overhead); at most one burst on a
  channel's data bus at a time.
* **Row-buffer state-machine consistency** — the oracle replays its
  own shadow row-buffer per bank and requires every access's
  hit/closed/conflict classification to match.
* **Bounded starvation** — optionally, no request (queued or serviced)
  may wait longer than ``starvation_cap`` cycles.
* **Span legality** — when the run carries a full
  :class:`repro.obs.spans.SpanCollector`, every completed request span
  must tile ``[arrival, completion)`` exactly with disjoint,
  contiguous wait intervals, and every culprit tag must refer to a
  request the oracle actually saw in service: a ``queue`` wait names
  the grant occupying the bank over exactly that interval, a ``bus``
  wait names the burst whose data occupied the channel until the wait
  ended, and a ``row`` wait names a thread that had been serviced at
  that bank earlier.
* **Decision-record legality** — when the run carries a
  :class:`repro.explain.ExplainCollector`, every grant must produce
  exactly one decision record, the record's winner must be the request
  actually granted, and the recorded candidate set must match the bank
  queue's occupancy at select time; at the end of the run the record
  count must equal the system's grant counter.
* **Policy invariants** — the selected request must maximise the
  scheduler's own priority tuple over the queue (for every scheduler
  using the base ``select``); TCM must never service a
  bandwidth-cluster demand request while a latency-cluster demand
  request waits at the same bank; ATLAS must service starving requests
  first.

Attachment is entirely per-instance (bound-method wrapping plus a
telemetry sink); a system without an oracle runs byte-identically to
one that never imported this module — the disabled path costs nothing,
not even a branch.

Usage::

    system = System(workload, make_scheduler("tcm"), cfg, seed=0)
    oracle = attach_oracle(system)
    result = system.run()
    report = oracle.finish(result)   # raises InvariantViolation on drift
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.request import MemoryRequest
from repro.telemetry.sinks import Sink
from repro.telemetry.tracer import Tracer


class InvariantViolation(AssertionError):
    """A runtime invariant did not hold."""


@dataclass(frozen=True)
class OracleConfig:
    """What the oracle checks and how it reacts.

    ``starvation_cap`` bounds the queueing delay of any request; the
    default (None) disables the check because strict-priority policies
    (``static``) legitimately starve deprioritised threads for as long
    as high-priority traffic lasts.
    """

    check_conservation: bool = True
    check_timing: bool = True
    check_row_state: bool = True
    check_policy: bool = True
    #: validate request-lifecycle spans against the oracle's own
    #: service log (no-op unless the run has a full span collector)
    check_spans: bool = True
    #: validate explain decision records against the actual grant
    #: stream (no-op unless the run has an explain collector)
    check_decisions: bool = True
    starvation_cap: Optional[int] = None
    #: raise at the first violation (default) or collect them all into
    #: the report for post-mortem inspection.
    raise_on_violation: bool = True


@dataclass
class OracleReport:
    """Outcome of one oracle-checked run."""

    scheduler: str = ""
    workload: str = ""
    #: number of checks evaluated, per category
    checks: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_checks(self) -> int:
        return sum(self.checks.values())

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        cats = ", ".join(
            f"{name}={count}" for name, count in sorted(self.checks.items())
        )
        return (
            f"oracle[{self.scheduler}/{self.workload}] {status} "
            f"({self.total_checks} checks: {cats})"
        )


class _OracleSink(Sink):
    """Telemetry sink feeding the event stream into the oracle."""

    def __init__(self, oracle: "InvariantOracle"):
        self._oracle = oracle

    def write(self, event: dict) -> None:
        self._oracle.on_event(event)

    def close(self) -> None:  # pragma: no cover - nothing to flush
        pass


class _BankState:
    """The oracle's independent model of one bank."""

    __slots__ = ("busy_until", "open_row")

    def __init__(self) -> None:
        self.busy_until = 0
        self.open_row: Optional[int] = None


class InvariantOracle:
    """Checks one system's run against the invariants above.

    Build via :func:`attach_oracle`; do not construct directly unless
    you call :meth:`attach` yourself before the run starts.
    """

    #: request lifecycle states
    _QUEUED, _SERVICED, _COMPLETED = "queued", "serviced", "completed"

    def __init__(self, system, config: Optional[OracleConfig] = None):
        self.system = system
        self.config = config or OracleConfig()
        self.report = OracleReport(
            scheduler=system.scheduler.name,
            workload=system.workload.name,
        )
        simcfg = system.config
        self._timings = simcfg.timings
        # independent shadow state, never shared with the simulator
        self._banks: Dict[Tuple[int, int], _BankState] = {
            (ch, b): _BankState()
            for ch in range(simcfg.num_channels)
            for b in range(simcfg.banks_per_channel)
        }
        self._bus_free: List[int] = [0] * simcfg.num_channels
        # request ledger: id -> (state, request)
        self._ledger: Dict[int, Tuple[str, MemoryRequest]] = {}
        self._write_arrivals = 0
        self._write_services = 0
        self._serviced_reads = 0
        # span-legality evidence: what was *actually* in service.
        # services: (ch, bank) -> {occupancy end: (grant cycle, thread)}
        # (bank occupancies never share an end cycle: each grant needs
        # an idle bank, so ends are strictly increasing per bank);
        # earliest_service: (ch, bank) -> {thread: earliest occupancy end}
        # (evidence for row-blame: the culprit used the bank earlier);
        # bus: channel -> {burst end: thread} (bursts serialise, so
        # data ends are strictly increasing per channel too)
        self._services: Dict[Tuple[int, int],
                             Dict[int, Tuple[int, int]]] = {}
        self._earliest_service: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._bus_bursts: Dict[int, Dict[int, int]] = {}
        self._kind_counts = {"hit": 0, "closed": 0, "conflict": 0}
        self._last_event_ts = 0
        self._last_quantum_index: Optional[int] = None
        self._originals: List[Tuple[object, str, object, bool]] = []
        self._sink: Optional[_OracleSink] = None
        self._created_tracer = False
        self._attached = False
        # fcfs/frfcfs override select() for speed but keep the
        # priority-maximal contract (SELECT_IS_PRIORITY_MAXIMAL), so
        # their grants are audited like everyone else's.
        self._generic_select = getattr(
            type(system.scheduler), "SELECT_IS_PRIORITY_MAXIMAL", True
        )

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------

    def _count(self, category: str) -> None:
        checks = self.report.checks
        checks[category] = checks.get(category, 0) + 1

    def _violate(self, category: str, message: str) -> None:
        text = f"[{category}] {message}"
        self.report.violations.append(text)
        if self.config.raise_on_violation:
            raise InvariantViolation(text)

    def _expect(self, condition: bool, category: str, message: str) -> None:
        self._count(category)
        if not condition:
            self._violate(category, message)

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def _wrap(self, obj, name: str, wrapper) -> None:
        original = getattr(obj, name)
        self._originals.append((obj, name, original, name in vars(obj)))
        setattr(obj, name, wrapper)

    def attach(self) -> "InvariantOracle":
        """Install per-instance hooks; must run before ``system.run()``."""
        if self._attached:
            return self
        system = self.system
        for channel in system.channels:
            self._wrap(channel, "enqueue",
                       self._make_enqueue(channel, channel.enqueue))
            self._wrap(channel, "enqueue_write",
                       self._make_enqueue_write(channel.enqueue_write))
            self._wrap(channel, "start_service",
                       self._make_start_service(channel,
                                                channel.start_service))
            self._wrap(
                channel, "start_write_service",
                self._make_start_write_service(channel,
                                               channel.start_write_service),
            )
        scheduler = system.scheduler
        self._wrap(scheduler, "select",
                   self._make_select(scheduler, scheduler.select))
        self._wrap(scheduler, "on_request_complete",
                   self._make_complete(scheduler.on_request_complete))
        explain = getattr(system, "_explain", None)
        if explain is not None and self.config.check_decisions:
            self._wrap(
                explain, "on_decision",
                self._make_explain_decision(explain, explain.on_decision),
            )
        # subscribe to the telemetry event stream (creating a tracer if
        # the run is otherwise untraced) for stream-level checks
        self._sink = _OracleSink(self)
        tracer = system._tracer
        if tracer is None:
            self._created_tracer = True
            system._tracer = Tracer([self._sink])
        else:
            self._created_tracer = False
            tracer.add_sink(self._sink)
        self._attached = True
        return self

    def detach(self) -> None:
        """Restore every wrapped method and remove the telemetry sink."""
        for obj, name, original, was_instance in reversed(self._originals):
            if was_instance:
                setattr(obj, name, original)
            else:
                # the original was the class method: drop the wrapper so
                # the instance is indistinguishable from a fresh one
                delattr(obj, name)
        self._originals.clear()
        tracer = self.system._tracer
        if tracer is not None and self._sink in tracer.sinks:
            tracer.sinks.remove(self._sink)
            if self._created_tracer and not tracer.sinks:
                self.system._tracer = None
        self._attached = False

    # ------------------------------------------------------------------
    # direct hooks
    # ------------------------------------------------------------------

    def _make_enqueue(self, channel, original):
        def enqueue(request: MemoryRequest) -> None:
            if self.config.check_conservation:
                self._expect(
                    request.request_id not in self._ledger,
                    "conservation",
                    f"{request!r} enqueued twice",
                )
                self._ledger[request.request_id] = (self._QUEUED, request)
            original(request)
        return enqueue

    def _make_enqueue_write(self, original):
        def enqueue_write(request: MemoryRequest) -> bool:
            self._write_arrivals += 1
            return original(request)
        return enqueue_write

    def _service_checks(self, channel, request, now: int,
                        kind: str, data_start: int, data_end: int) -> None:
        """Timing/row-state checks shared by the read and write paths."""
        t = self._timings
        state = self._banks[(channel.channel_id, request.bank_id)]
        if self.config.check_timing:
            # one request in service per bank: intervals may not overlap
            self._expect(
                now >= state.busy_until,
                "timing",
                f"bank ch{channel.channel_id}/b{request.bank_id} double-"
                f"booked: service at {now} overlaps busy-until "
                f"{state.busy_until}",
            )
            # one burst on the channel data bus at a time
            bus_free = self._bus_free[channel.channel_id]
            self._expect(
                data_start >= bus_free,
                "timing",
                f"channel {channel.channel_id} bus double-booked: burst "
                f"at {data_start} before bus free {bus_free}",
            )
            self._expect(
                data_end == data_start + t.burst,
                "timing",
                f"burst length {data_end - data_start} != {t.burst}",
            )
            if not t.detailed:
                # Table-3 service-time model, exactly: the burst starts
                # the moment the row is ready and the bus is free.
                prep = {
                    "hit": 0,
                    "closed": t.t_rcd,
                    "conflict": t.t_rp + t.t_rcd,
                }[kind]
                expected_start = max(now + prep, bus_free)
                self._expect(
                    data_start == expected_start,
                    "timing",
                    f"{kind} access at {now}: burst starts {data_start}, "
                    f"expected {expected_start} "
                    f"(prep {prep}, bus free {bus_free})",
                )
            else:
                # detailed timings add tRAS/tRC/tRRD/tFAW/refresh waits
                # that can only push the burst later, never earlier
                self._expect(
                    data_start >= now,
                    "timing",
                    f"burst at {data_start} before service start {now}",
                )
        if self.config.check_row_state:
            expected = (
                "closed" if state.open_row is None
                else ("hit" if state.open_row == request.row else "conflict")
            )
            self._expect(
                kind == expected,
                "row_state",
                f"access to ch{channel.channel_id}/b{request.bank_id} "
                f"row {request.row} classified {kind!r}, shadow state "
                f"says {expected!r} (open row {state.open_row})",
            )
        if self.config.starvation_cap is not None:
            waited = now - request.arrival
            self._expect(
                waited <= self.config.starvation_cap,
                "starvation",
                f"{request!r} waited {waited} cycles for service "
                f"(cap {self.config.starvation_cap})",
            )
        # advance the shadow model
        state.busy_until = data_end
        state.open_row = (
            None if t.page_policy == "closed" else request.row
        )
        self._bus_free[channel.channel_id] = data_end
        if self.config.check_spans:
            key = (channel.channel_id, request.bank_id)
            tid = request.thread_id
            self._services.setdefault(key, {})[data_end] = (now, tid)
            earliest = self._earliest_service.setdefault(key, {})
            if tid not in earliest:
                earliest[tid] = data_end
            self._bus_bursts.setdefault(
                channel.channel_id, {}
            )[data_end] = tid

    def _make_start_service(self, channel, original):
        def start_service(request: MemoryRequest, now: int):
            if self.config.check_conservation:
                entry = self._ledger.get(request.request_id)
                self._expect(
                    entry is not None and entry[0] == self._QUEUED,
                    "conservation",
                    f"{request!r} serviced but "
                    f"{'never arrived' if entry is None else entry[0]}",
                )
                self._expect(
                    request in channel.queues[request.bank_id],
                    "conservation",
                    f"{request!r} serviced while absent from its queue",
                )
                self._ledger[request.request_id] = (self._SERVICED, request)
            access, completion = original(request, now)
            self._serviced_reads += 1
            self._kind_counts[access.kind] += 1
            self._service_checks(
                channel, request, now,
                access.kind, access.data_start, access.data_end,
            )
            if self.config.check_timing:
                self._expect(
                    completion == access.data_end
                    + self._timings.fixed_overhead,
                    "timing",
                    f"completion {completion} != data end {access.data_end}"
                    f" + fixed overhead {self._timings.fixed_overhead}",
                )
            return access, completion
        return start_service

    def _make_start_write_service(self, channel, original):
        def start_write_service(request: MemoryRequest, now: int):
            access = original(request, now)
            self._write_services += 1
            self._kind_counts[access.kind] += 1
            self._service_checks(
                channel, request, now,
                access.kind, access.data_start, access.data_end,
            )
            return access
        return start_write_service

    def _make_complete(self, original):
        def on_request_complete(request: MemoryRequest, now: int) -> None:
            if self.config.check_conservation:
                entry = self._ledger.get(request.request_id)
                self._expect(
                    entry is not None and entry[0] == self._SERVICED,
                    "conservation",
                    f"{request!r} completed but "
                    f"{'never arrived' if entry is None else entry[0]}",
                )
                self._expect(
                    request.completion == now,
                    "conservation",
                    f"{request!r} completed at {now}, stamped "
                    f"{request.completion}",
                )
                self._ledger[request.request_id] = (self._COMPLETED, request)
            original(request, now)
        return on_request_complete

    # ------------------------------------------------------------------
    # policy invariants (select-time)
    # ------------------------------------------------------------------

    def _make_select(self, scheduler, original):
        def select(channel, bank_id: int, now: int) -> MemoryRequest:
            chosen = original(channel, bank_id, now)
            if self.config.check_policy:
                self._check_policy(scheduler, channel, bank_id, now, chosen)
            return chosen
        return select

    def _check_policy(self, scheduler, channel, bank_id: int, now: int,
                      chosen: MemoryRequest) -> None:
        queue = channel.queues[bank_id]
        if self._generic_select:
            # the chosen request must maximise the scheduler's own
            # priority tuple (re-evaluated; priority() is pure)
            open_row = channel.banks[bank_id].open_row

            def key(r: MemoryRequest):
                return (not r.is_prefetch,) + tuple(
                    scheduler.priority(r, r.row == open_row, now)
                )

            best = max(key(r) for r in queue)
            self._expect(
                key(chosen) == best,
                "policy",
                f"{scheduler.name} chose {chosen!r} with priority "
                f"{key(chosen)}, but a queued request has {best}",
            )
        self._check_tcm(scheduler, queue, chosen)
        self._check_atlas(scheduler, queue, chosen, now)

    def _check_tcm(self, scheduler, queue, chosen: MemoryRequest) -> None:
        """TCM: latency-cluster demand beats bandwidth-cluster demand."""
        clustering = getattr(scheduler, "clustering", None)
        if clustering is None or chosen.is_prefetch:
            return
        latency = set(clustering.latency_cluster)
        if chosen.thread_id not in set(clustering.bandwidth_cluster):
            return
        waiting_latency = [
            r for r in queue
            if r is not chosen
            and not r.is_prefetch
            and r.thread_id in latency
        ]
        self._expect(
            not waiting_latency,
            "policy",
            f"TCM serviced bandwidth-cluster {chosen!r} while "
            f"latency-cluster demand {waiting_latency[0]!r} waited"
            if waiting_latency else "",
        )

    def _check_atlas(self, scheduler, queue, chosen: MemoryRequest,
                     now: int) -> None:
        """ATLAS: requests past the starvation threshold go first."""
        params = getattr(scheduler, "params", None)
        threshold = getattr(params, "starvation_threshold", None)
        if threshold is None or not hasattr(scheduler, "_attained"):
            return
        if chosen.is_prefetch or (now - chosen.arrival) > threshold:
            return
        starving = [
            r for r in queue
            if r is not chosen
            and not r.is_prefetch
            and (now - r.arrival) > threshold
        ]
        self._expect(
            not starving,
            "policy",
            f"ATLAS serviced fresh {chosen!r} while starving "
            f"{starving[0]!r} waited" if starving else "",
        )

    # ------------------------------------------------------------------
    # explain decision records (grant-time + end-of-run)
    # ------------------------------------------------------------------

    def _make_explain_decision(self, collector, original):
        def on_decision(channel, bank_id: int, winner, now: int) -> None:
            # snapshot the queue before the collector runs: the record's
            # candidate set must be exactly this occupancy
            queued_ids = {
                r.request_id for r in channel.queues[bank_id]
            }
            before = collector.decisions_total
            original(channel, bank_id, winner, now)
            self._expect(
                collector.decisions_total == before + 1,
                "decisions",
                f"grant at {now} produced "
                f"{collector.decisions_total - before} decision records, "
                f"expected exactly 1",
            )
            record = collector.last_record
            self._expect(
                record is not None
                and record.winner_request_id == winner.request_id,
                "decisions",
                f"decision record winner "
                f"{record.winner_request_id if record else None} != "
                f"granted request {winner.request_id}",
            )
            recorded = (
                {c.request_id for c in record.candidates}
                if record is not None else set()
            )
            self._expect(
                recorded == queued_ids,
                "decisions",
                f"decision record candidates {sorted(recorded)} != bank "
                f"ch{channel.channel_id}/b{bank_id} occupancy "
                f"{sorted(queued_ids)}",
            )
        return on_decision

    def _finish_decisions(self) -> None:
        collector = getattr(self.system, "_explain", None)
        if collector is None:
            return
        self._expect(
            collector.decisions_total == self.system.sched_decisions,
            "decisions",
            f"explain recorded {collector.decisions_total} decisions, "
            f"system granted {self.system.sched_decisions}",
        )

    # ------------------------------------------------------------------
    # span legality (end-of-run, against the oracle's own service log)
    # ------------------------------------------------------------------

    def _finish_spans(self) -> None:
        """Validate every completed request span the run collected."""
        collector = getattr(self.system, "_spans", None)
        if (
            collector is None
            or not getattr(collector, "record_intervals", False)
            or not getattr(collector, "keep_spans", False)
        ):
            return
        for span in collector.spans:
            self._check_span(span)

    def _check_span(self, span) -> None:
        from repro.obs.spans import CAUSE_BUS, CAUSE_QUEUE, CAUSE_ROW

        # intervals, in recorded order, must chain without gap or
        # overlap from arrival to completion
        cursor = span.arrival
        tiled = True
        for interval in span.intervals:
            if interval.start != cursor or interval.end <= interval.start:
                tiled = False
                break
            cursor = interval.end
        self._expect(
            tiled and cursor == span.completion,
            "spans",
            f"{span!r} intervals do not tile [arrival, completion): "
            f"chain broke at {cursor} "
            f"({[tuple(i) for i in span.intervals]})",
        )
        total = sum(i.end - i.start for i in span.intervals)
        self._expect(
            total == span.latency,
            "spans",
            f"{span!r} interval cycles {total} != latency {span.latency}",
        )
        key = (span.channel_id, span.bank_id)
        services = self._services.get(key, {})
        tid = span.thread_id
        # the span's own grant must be a service the oracle witnessed
        own = services.get(span.completion - self._timings.fixed_overhead)
        self._expect(
            own is not None and own == (span.start_service, tid),
            "spans",
            f"{span!r} claims service at {span.start_service}, oracle "
            f"saw {own}",
        )
        earliest = self._earliest_service.get(key, {})
        bursts = self._bus_bursts.get(span.channel_id, {})
        for interval in span.intervals:
            culprit = interval.culprit
            if culprit == tid:
                continue
            if interval.cause == CAUSE_QUEUE:
                entry = services.get(interval.end)
                if interval.partial:
                    # the blocking grant predates the victim's arrival
                    legal = (
                        entry is not None
                        and entry[1] == culprit
                        and entry[0] <= interval.start
                    )
                else:
                    legal = entry == (interval.start, culprit)
                self._expect(
                    legal,
                    "spans",
                    f"{span!r} blames t{culprit} for queue wait "
                    f"[{interval.start}, {interval.end}), but the bank's "
                    f"service there was {entry}",
                )
            elif interval.cause == CAUSE_BUS:
                self._expect(
                    bursts.get(interval.end) == culprit,
                    "spans",
                    f"{span!r} blames t{culprit} for bus wait ending "
                    f"{interval.end}, but that burst belonged to "
                    f"t{bursts.get(interval.end)}",
                )
            elif interval.cause == CAUSE_ROW:
                first = earliest.get(culprit)
                self._expect(
                    first is not None and first <= interval.start,
                    "spans",
                    f"{span!r} blames t{culprit} for a row conflict at "
                    f"{interval.start}, but t{culprit} was never "
                    f"serviced at that bank before then",
                )

    # ------------------------------------------------------------------
    # telemetry event stream
    # ------------------------------------------------------------------

    def on_event(self, event: dict) -> None:
        """Stream-level checks over the telemetry events of the run."""
        ts = event.get("ts", 0)
        self._expect(
            ts >= self._last_event_ts,
            "stream",
            f"event {event.get('ev')!r} at ts {ts} after ts "
            f"{self._last_event_ts}",
        )
        self._last_event_ts = ts
        if event.get("ev") == "quantum":
            index = event.get("index")
            expected = (
                0 if self._last_quantum_index is None
                else self._last_quantum_index + 1
            )
            self._expect(
                index == expected,
                "stream",
                f"quantum index {index}, expected {expected}",
            )
            self._last_quantum_index = index
            n = self.system.workload.num_threads
            self._expect(
                all(
                    len(event.get(k, ())) == n
                    for k in ("mpki", "bw", "blp", "rbl")
                ),
                "stream",
                f"quantum metrics not sized to {n} threads",
            )

    # ------------------------------------------------------------------
    # end-of-run accounting
    # ------------------------------------------------------------------

    def finish(self, result=None) -> OracleReport:
        """Run end-of-run conservation checks and return the report.

        Raises :class:`InvariantViolation` (unless configured to
        collect) if any check failed during the run or at the end.
        ``result`` is the :class:`~repro.sim.results.RunResult`; when
        passed, its aggregate counters are cross-checked against the
        oracle's independent ledger.
        """
        system = self.system
        horizon = system.now
        if self.config.check_conservation:
            states = {self._QUEUED: 0, self._SERVICED: 0, self._COMPLETED: 0}
            for state, request in self._ledger.values():
                states[state] += 1
                if state == self._QUEUED:
                    self._expect(
                        any(
                            request in ch.queues[request.bank_id]
                            for ch in system.channels
                            if ch.channel_id == request.channel_id
                        ),
                        "conservation",
                        f"{request!r} neither serviced nor still queued "
                        "at run end (leaked)",
                    )
                elif state == self._SERVICED:
                    # in flight at the horizon: its data must be due
                    # strictly after the run ended, else the completion
                    # event was lost
                    self._expect(
                        request.completion is not None
                        and request.completion > horizon,
                        "conservation",
                        f"{request!r} serviced (completion "
                        f"{request.completion}) but never completed "
                        f"by horizon {horizon}",
                    )
            queued_now = sum(ch.pending_requests() for ch in system.channels)
            self._expect(
                states[self._QUEUED] == queued_now,
                "conservation",
                f"ledger says {states[self._QUEUED]} queued, channels "
                f"hold {queued_now}",
            )
            serviced = sum(ch.serviced_requests for ch in system.channels)
            self._expect(
                serviced == self._serviced_reads,
                "conservation",
                f"channels serviced {serviced}, oracle saw "
                f"{self._serviced_reads}",
            )
            # write-path conservation (counts; ids are not tracked
            # because a full buffer legally drops the oldest write)
            buffered = sum(len(ch.write_buffer) for ch in system.channels)
            dropped = sum(ch.dropped_writes for ch in system.channels)
            self._expect(
                self._write_arrivals
                == self._write_services + buffered + dropped,
                "conservation",
                f"write ledger: {self._write_arrivals} buffered != "
                f"{self._write_services} serviced + {buffered} pending "
                f"+ {dropped} dropped",
            )
        if result is not None and self.config.check_conservation:
            self._expect(
                result.total_requests == self._serviced_reads,
                "conservation",
                f"result.total_requests {result.total_requests} != "
                f"oracle count {self._serviced_reads}",
            )
            for kind, attr in (
                ("hit", "row_hits"),
                ("conflict", "row_conflicts"),
                ("closed", "row_closed"),
            ):
                # bank counters (what the result aggregates) tally read
                # and write accesses alike, as does the oracle
                self._expect(
                    getattr(result, attr) == self._kind_counts[kind],
                    "conservation",
                    f"result.{attr} {getattr(result, attr)} != oracle "
                    f"{kind} count {self._kind_counts[kind]}",
                )
        if self.config.check_spans:
            self._finish_spans()
        if self.config.check_decisions:
            self._finish_decisions()
        if self.config.starvation_cap is not None:
            for ch in system.channels:
                for queue in ch.queues:
                    for request in queue:
                        waited = horizon - request.arrival
                        self._expect(
                            waited <= self.config.starvation_cap,
                            "starvation",
                            f"{request!r} still queued after waiting "
                            f"{waited} cycles "
                            f"(cap {self.config.starvation_cap})",
                        )
        return self.report


def attach_oracle(system, config: Optional[OracleConfig] = None
                  ) -> InvariantOracle:
    """Attach a fresh :class:`InvariantOracle` to ``system`` and return it."""
    return InvariantOracle(system, config).attach()


def checked_run(
    workload,
    scheduler_name: str,
    config=None,
    seed: int = 0,
    params=None,
    oracle_config: Optional[OracleConfig] = None,
    cycles: Optional[int] = None,
    spans: bool = False,
    explain: bool = False,
    shadows=(),
):
    """Run one oracle-checked simulation; returns (result, report).

    Raises :class:`InvariantViolation` if any invariant fails (unless
    ``oracle_config.raise_on_violation`` is False).  With ``spans`` a
    full :class:`repro.obs.spans.SpanCollector` is attached and every
    completed span is validated against the oracle's service log.  With
    ``explain`` an :class:`repro.explain.ExplainCollector` (carrying
    ``shadows``) is attached and every grant's decision record is
    cross-checked against the actual grant stream.
    """
    from repro.config import SimConfig
    from repro.schedulers import make_scheduler
    from repro.sim.system import System

    system = System(
        workload,
        make_scheduler(scheduler_name, params),
        config or SimConfig(),
        seed=seed,
    )
    if spans:
        from repro.obs.spans import attach_spans

        attach_spans(system)
    if explain:
        from repro.explain import attach_explain

        attach_explain(system, shadows=shadows)
    oracle = attach_oracle(system, oracle_config)
    result = system.run(cycles)
    report = oracle.finish(result)
    return result, report
