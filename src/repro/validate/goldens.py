"""Golden-run regression harness.

A pinned matrix of (scheduler x workload mix x seed) runs is
fingerprinted (see :mod:`repro.validate.fingerprint`) and committed
under ``tests/goldens/``.  Any behavioural change to the simulator —
intended or not — shows up as fingerprint drift; CI fails until the
goldens are regenerated *deliberately* with
``scripts/update_goldens.py`` (see docs/VALIDATION.md for when that is
legitimate).

The matrix is sized to stay cheap (a few seconds) while covering every
registered scheduler, three memory-intensity classes, and several
quanta of TCM clustering/shuffling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.validate.fingerprint import (
    Drift,
    compare_fingerprints,
    fingerprint_run,
)
from repro.workloads.mixes import Workload, make_intensity_workload

#: Fingerprint format version; bump on layout changes.
GOLDEN_VERSION = 1

#: Default location of the committed golden matrix.
GOLDEN_PATH = (
    Path(__file__).resolve().parents[3] / "tests" / "goldens"
    / "golden_matrix.json"
)

#: Every scheduler in the registry, pinned alphabetically.
GOLDEN_SCHEDULERS: Tuple[str, ...] = (
    "atlas", "fcfs", "fqm", "frfcfs", "parbs", "static", "stfm", "tcm",
)

#: Workload mixes: one per memory-intensity class, 8 threads each.
GOLDEN_MIX_INTENSITIES: Tuple[float, ...] = (0.25, 0.5, 1.0)
GOLDEN_MIX_SEED = 7
GOLDEN_THREADS = 8

#: Run seeds per (scheduler, mix) point.
GOLDEN_SEEDS: Tuple[int, ...] = (11,)

#: Small but non-trivial config: 3 quanta, default geometry, so TCM
#: clusters and shuffles and ATLAS completes ranking epochs.
GOLDEN_CONFIG = SimConfig(run_cycles=150_000)


def golden_mixes() -> List[Workload]:
    """The pinned workload mixes of the golden matrix."""
    return [
        make_intensity_workload(
            intensity, num_threads=GOLDEN_THREADS, seed=GOLDEN_MIX_SEED
        )
        for intensity in GOLDEN_MIX_INTENSITIES
    ]


def golden_key(workload: Workload, scheduler: str, seed: int) -> str:
    return f"{workload.name}/{scheduler}/s{seed}"


def compute_golden_matrix(
    config: Optional[SimConfig] = None,
    schedulers: Sequence[str] = GOLDEN_SCHEDULERS,
    mixes: Optional[Sequence[Workload]] = None,
    seeds: Sequence[int] = GOLDEN_SEEDS,
    progress: bool = False,
    backend: Optional[str] = None,
) -> Dict[str, Dict]:
    """Run the pinned matrix and fingerprint every point.

    Alone runs (for weighted speedup / maximum slowdown) are memoised
    per benchmark by the runner, so the whole matrix costs
    ``len(schedulers) * len(mixes) * len(seeds)`` shared runs plus one
    alone run per distinct benchmark.

    ``backend`` forces every run onto one engine backend (the parity
    contract makes the fingerprints backend-independent; checking the
    matrix on ``"fast"`` *is* the contract's golden-scale enforcement).
    """
    from repro.experiments.runner import alone_ipcs, run_shared

    config = config or GOLDEN_CONFIG
    if backend is not None:
        config = config.with_(backend=backend)
    matrix: Dict[str, Dict] = {}
    for workload in (mixes if mixes is not None else golden_mixes()):
        for seed in seeds:
            alones = alone_ipcs(workload, config, seed)
            for scheduler in schedulers:
                key = golden_key(workload, scheduler, seed)
                if progress:
                    print(f"  golden {key}", flush=True)
                result = run_shared(
                    workload, scheduler, config, seed=seed
                )
                matrix[key] = fingerprint_run(result, alones)
    return matrix


def golden_document(matrix: Dict[str, Dict]) -> Dict:
    """Wrap a matrix with its pinned parameters for the JSON file."""
    return {
        "version": GOLDEN_VERSION,
        "config": {
            "run_cycles": GOLDEN_CONFIG.run_cycles,
            "quantum_cycles": GOLDEN_CONFIG.quantum_cycles,
            "num_threads": GOLDEN_THREADS,
            "mix_intensities": list(GOLDEN_MIX_INTENSITIES),
            "mix_seed": GOLDEN_MIX_SEED,
            "seeds": list(GOLDEN_SEEDS),
        },
        "matrix": matrix,
    }


def save_goldens(matrix: Dict[str, Dict], path=GOLDEN_PATH) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(golden_document(matrix), indent=1, sort_keys=True) + "\n"
    )
    return path


def load_goldens(path=GOLDEN_PATH) -> Dict[str, Dict]:
    document = json.loads(Path(path).read_text())
    if document.get("version") != GOLDEN_VERSION:
        raise ValueError(
            f"golden file {path} has version {document.get('version')}, "
            f"expected {GOLDEN_VERSION} — regenerate with "
            "scripts/update_goldens.py"
        )
    return document["matrix"]


#: Backends ``check_goldens``'s ``backend="both"`` expands to.
GOLDEN_BACKENDS: Tuple[str, ...] = ("reference", "fast")


def check_goldens(
    path=GOLDEN_PATH, progress: bool = False,
    backend: Optional[str] = None,
) -> List[Drift]:
    """Recompute the matrix and diff it against the committed goldens.

    Returns the drift list (empty = regression-free).  ``backend``
    selects the engine backend the recomputation runs on —
    ``"reference"`` (the default, ``None``), ``"fast"``, or
    ``"both"``, which checks each backend in turn and tags any drift's
    key with the backend that produced it.  A clean ``"both"`` check
    certifies the committed fingerprints hold bit-for-bit on either
    engine.
    """
    if backend == "both":
        drifts: List[Drift] = []
        for one in GOLDEN_BACKENDS:
            if progress:
                print(f" backend {one}", flush=True)
            for drift in check_goldens(path, progress=progress,
                                       backend=one):
                drifts.append(Drift(
                    f"[{one}] {drift.key}", drift.path,
                    drift.golden, drift.fresh,
                ))
        return drifts
    golden = load_goldens(path)
    fresh = compute_golden_matrix(progress=progress, backend=backend)
    return compare_fingerprints(golden, fresh)


# ----------------------------------------------------------------------
# failure triage (exit codes + per-point mismatch table)
# ----------------------------------------------------------------------

#: ``validate goldens`` exit code: fingerprint *values* differ — a
#: behavioural regression or a backend-parity violation.
EXIT_DRIFT = 3

#: ``validate goldens`` exit code: only whole entries or fields are
#: missing/new — the golden file is out of date (matrix reshaped,
#: fingerprint format changed), not a behavioural drift.
EXIT_MISSING = 4

#: Sentinels :mod:`repro.validate.fingerprint` emits for structural
#: (rather than value) mismatches.
_STRUCTURAL_MARKERS = frozenset(("<absent>", "<new entry>", "<entry>"))


def parse_golden_key(key: str):
    """Split a (possibly backend-tagged) matrix key back into
    ``(backend, mix, scheduler, seed)`` strings.

    Keys look like ``mix-50pct-s7/tcm/s11`` or, from a
    ``backend="both"`` check, ``[fast] mix-50pct-s7/tcm/s11``.
    """
    backend = ""
    if key.startswith("["):
        backend, _, key = key.partition("] ")
        backend = backend[1:]
    parts = key.rsplit("/", 2)
    if len(parts) != 3:
        return backend, key, "", ""
    mix, scheduler, seed = parts
    return backend, mix, scheduler, seed.lstrip("s")


def is_structural(drift: Drift) -> bool:
    """True when the drift marks an absent/new entry or field rather
    than a changed fingerprint value."""
    return (drift.golden in _STRUCTURAL_MARKERS
            or drift.fresh in _STRUCTURAL_MARKERS)


def classify_drifts(drifts: Sequence[Drift]) -> str:
    """``"drift"`` when any fingerprint *value* changed; ``"missing"``
    when every mismatch is structural (absent/new entries or fields)."""
    for drift in drifts:
        if not is_structural(drift):
            return "drift"
    return "missing"


def drifts_exit_code(drifts: Sequence[Drift]) -> int:
    """The distinct exit code for a failing check: 0 when clean,
    :data:`EXIT_DRIFT` for value drift, :data:`EXIT_MISSING` when only
    matrix structure changed."""
    if not drifts:
        return 0
    return EXIT_DRIFT if classify_drifts(drifts) == "drift" else EXIT_MISSING


def drift_point_rows(drifts: Sequence[Drift]) -> List[List[object]]:
    """Per-point mismatch rows for the CLI table:
    ``[backend, mix, scheduler, seed, field, expected, actual]``."""
    rows: List[List[object]] = []
    for drift in drifts:
        backend, mix, scheduler, seed = parse_golden_key(drift.key)
        rows.append([
            backend or "-", mix, scheduler, seed or "-",
            drift.path or "<entry>",
            repr(drift.golden), repr(drift.fresh),
        ])
    return rows
