"""Compact, comparable fingerprints of simulation results.

A fingerprint captures everything a scheduler-quality regression could
plausibly move — per-thread IPC/MPKI, instruction and miss counts,
request/row-buffer totals, weighted speedup and maximum slowdown —
as plain JSON-serialisable data.  Floats are rounded to
:data:`FLOAT_DIGITS` decimals so fingerprints are stable to store,
diff, and compare across machines while still pinning results to
(far) below any behaviourally meaningful change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.results import RunResult

#: Decimal places kept in fingerprinted floats.  The simulator is
#: bit-deterministic, so this is generosity towards cross-platform
#: libm differences, not towards behaviour drift.
FLOAT_DIGITS = 9


def _round(value: float) -> float:
    return round(float(value), FLOAT_DIGITS)


def fingerprint_run(
    result: RunResult,
    alone_ipcs: Optional[List[float]] = None,
) -> Dict:
    """Fingerprint one :class:`RunResult`.

    ``alone_ipcs`` (per-thread alone-run IPCs, see
    :func:`repro.experiments.runner.alone_ipcs`) adds the paper's
    headline metrics — weighted speedup and maximum slowdown — to the
    fingerprint.
    """
    fp: Dict = {
        "scheduler": result.scheduler,
        "workload": result.workload,
        "cycles": result.cycles,
        "total_requests": result.total_requests,
        "row_hits": result.row_hits,
        "row_conflicts": result.row_conflicts,
        "row_closed": result.row_closed,
        "quantum_count": result.quantum_count,
        "threads": [
            {
                "benchmark": t.benchmark,
                "instructions": t.instructions,
                "misses": t.misses,
                "ipc": _round(t.ipc),
                "mpki": _round(t.mpki),
                "avg_latency": _round(t.avg_latency),
            }
            for t in result.threads
        ],
    }
    if alone_ipcs is not None:
        from repro.metrics import maximum_slowdown, weighted_speedup

        fp["weighted_speedup"] = _round(
            weighted_speedup(alone_ipcs, result.ipcs)
        )
        fp["maximum_slowdown"] = _round(
            maximum_slowdown(alone_ipcs, result.ipcs)
        )
    return fp


@dataclass(frozen=True)
class Drift:
    """One divergence between a golden and a fresh fingerprint."""

    key: str          # matrix entry, e.g. "mix-50pct/tcm/s11"
    path: str         # field path, e.g. "threads[3].ipc"
    golden: object
    fresh: object

    def __str__(self) -> str:
        return f"{self.key}: {self.path}: {self.golden!r} -> {self.fresh!r}"


def _walk(key: str, path: str, golden, fresh, out: List[Drift]) -> None:
    if isinstance(golden, dict) and isinstance(fresh, dict):
        for name in sorted(set(golden) | set(fresh)):
            child = f"{path}.{name}" if path else name
            if name not in golden:
                out.append(Drift(key, child, "<absent>", fresh[name]))
            elif name not in fresh:
                out.append(Drift(key, child, golden[name], "<absent>"))
            else:
                _walk(key, child, golden[name], fresh[name], out)
    elif isinstance(golden, list) and isinstance(fresh, list):
        if len(golden) != len(fresh):
            out.append(Drift(key, f"{path}.length", len(golden), len(fresh)))
            return
        for index, (g, f) in enumerate(zip(golden, fresh)):
            _walk(key, f"{path}[{index}]", g, f, out)
    else:
        if golden != fresh:
            out.append(Drift(key, path, golden, fresh))


def compare_fingerprints(
    golden: Dict[str, Dict], fresh: Dict[str, Dict]
) -> List[Drift]:
    """Field-level diff of two fingerprint matrices (empty = identical)."""
    drifts: List[Drift] = []
    for key in sorted(set(golden) | set(fresh)):
        if key not in golden:
            drifts.append(Drift(key, "", "<absent>", "<new entry>"))
        elif key not in fresh:
            drifts.append(Drift(key, "", "<entry>", "<absent>"))
        else:
            _walk(key, "", golden[key], fresh[key], drifts)
    return drifts


def format_drift_report(drifts: List[Drift], limit: int = 40) -> str:
    """Human-readable drift report (what changed, entry by entry)."""
    if not drifts:
        return "goldens match: no drift"
    lines = [f"{len(drifts)} drifting field(s):"]
    by_key: Dict[str, List[Drift]] = {}
    for drift in drifts:
        by_key.setdefault(drift.key, []).append(drift)
    shown = 0
    for key in sorted(by_key):
        lines.append(f"  {key}:")
        for drift in by_key[key]:
            if shown >= limit:
                lines.append(f"  ... and {len(drifts) - shown} more")
                return "\n".join(lines)
            lines.append(
                f"    {drift.path}: {drift.golden!r} -> {drift.fresh!r}"
            )
            shown += 1
    return "\n".join(lines)
