"""repro.validate — the simulator's correctness-tooling subsystem.

Three pillars, none of which touch a simulation that does not opt in:

* :mod:`repro.validate.oracle` — a **runtime invariant oracle** that
  attaches to one :class:`~repro.sim.system.System` and checks request
  conservation, DRAM timing legality, row-buffer state consistency,
  bounded starvation and per-scheduler policy invariants as the run
  executes.
* :mod:`repro.validate.differential` — **differential and metamorphic
  validation**: the same workload through every scheduler with
  scheduler-independent assertions, plus transform-based checks (seed
  determinism, thread-permutation equivariance).
* :mod:`repro.validate.goldens` — a **golden-run regression harness**:
  compact result fingerprints for a pinned (scheduler x mix x seed)
  matrix, committed under ``tests/goldens/`` and compared in CI.

See docs/VALIDATION.md for the full catalogue of checks and the golden
regeneration policy.
"""

from __future__ import annotations

from repro.validate.differential import (
    RANK_REDUCIBLE,
    assert_permutation_equivariance,
    assert_seed_determinism,
    assert_single_thread_consistency,
    differential_groups,
    permute_workload,
    run_matrix,
    run_outcome,
    single_thread_matrix,
    thread_outcome,
)
from repro.validate.fingerprint import (
    FLOAT_DIGITS,
    Drift,
    compare_fingerprints,
    fingerprint_run,
    format_drift_report,
)
from repro.validate.goldens import (
    EXIT_DRIFT,
    EXIT_MISSING,
    GOLDEN_BACKENDS,
    GOLDEN_CONFIG,
    GOLDEN_PATH,
    GOLDEN_SCHEDULERS,
    GOLDEN_SEEDS,
    check_goldens,
    classify_drifts,
    compute_golden_matrix,
    drift_point_rows,
    drifts_exit_code,
    golden_document,
    golden_key,
    golden_mixes,
    is_structural,
    load_goldens,
    parse_golden_key,
    save_goldens,
)
from repro.validate.oracle import (
    InvariantOracle,
    InvariantViolation,
    OracleConfig,
    OracleReport,
    attach_oracle,
    checked_run,
)

__all__ = [
    "Drift",
    "EXIT_DRIFT",
    "EXIT_MISSING",
    "FLOAT_DIGITS",
    "GOLDEN_BACKENDS",
    "GOLDEN_CONFIG",
    "GOLDEN_PATH",
    "GOLDEN_SCHEDULERS",
    "GOLDEN_SEEDS",
    "InvariantOracle",
    "InvariantViolation",
    "OracleConfig",
    "OracleReport",
    "RANK_REDUCIBLE",
    "assert_permutation_equivariance",
    "assert_seed_determinism",
    "assert_single_thread_consistency",
    "attach_oracle",
    "check_goldens",
    "checked_run",
    "classify_drifts",
    "compare_fingerprints",
    "compute_golden_matrix",
    "differential_groups",
    "drift_point_rows",
    "drifts_exit_code",
    "fingerprint_run",
    "format_drift_report",
    "golden_document",
    "golden_key",
    "golden_mixes",
    "is_structural",
    "load_goldens",
    "parse_golden_key",
    "permute_workload",
    "run_matrix",
    "run_outcome",
    "save_goldens",
    "single_thread_matrix",
    "thread_outcome",
]
