"""StateProbe — canonical fingerprints of live simulation state.

The parity contract (PR 8) pins two backends bit-identical at the
*end* of a run; this module makes the same claim checkable at any
cycle in the middle.  A :class:`StateProbe` attached to a
:class:`~repro.sim.system.System` can, at any checkpoint, produce a
**canonical snapshot** of every component that feeds future scheduling
decisions, and hash each component into a short fingerprint:

``events``
    The pending-event multiset in dispatch order — the reference heap
    sorted by ``(time, seq)`` and the timing wheel's
    :meth:`~repro.engine.wheel.TimingWheel.pending_events` produce the
    same canonical list (sequence numbers are dropped; order is kept).
``dram``
    Per-bank row-buffer state (open row, owner, busy-until, service
    counters), per-channel queues, bus reservation, write buffer and
    refresh cursor.
``cpu``
    Per-thread sliding-window columns in a backend-neutral form: the
    reference model's ``(deque, completed set)`` and the fast batch's
    ``(head, length, bitmask, credit ring)`` map to the same
    ``(head, credits, completed offsets)`` triple.
``rng``
    Logical RNG cursors.  Raw generators are captured as PCG64 state
    words; block-buffered façades (:mod:`repro.engine.rng`) cannot be
    compared that way — their underlying generator sits whole blocks
    ahead — so buffered and scalar streams are both canonicalised as
    *the next few draws*, peeked from a clone without consuming the
    stream.
``monitor``
    The behaviour monitor's shadow row-buffers, outstanding/BLP
    integrals and lifetime counters.
``scheduler``
    The policy's own :meth:`~repro.schedulers.base.Scheduler.\
state_digest` (ranks, clusters, virtual times, shuffle RNG cursor).
``progress``
    Scalar run progress: current cycle, event sequence counter,
    decisions, quanta, latency accumulators, IPC timeline.

Snapshots are strictly JSON-native (dicts with string keys, lists,
ints, floats, strings, None), so they hash canonically, diff with
:func:`repro.validate.fingerprint.compare_fingerprints`, and survive a
JSON round trip unchanged.

Attachment rides the run's one-branch-when-off observer seams: a
``None`` probe costs one ``is None`` test per dispatched event and per
grant, and the fast backend's bare loop stays fully detached
(``bare_eligible`` routes probed runs through the observed loop).
"""

from __future__ import annotations

import json
from collections import deque
from hashlib import blake2b
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cpu.thread import MAX_OUTSTANDING_MISSES
from repro.dram.request import MemoryRequest

#: Component keys in canonical order.
COMPONENTS = (
    "events", "dram", "cpu", "rng", "monitor", "scheduler", "progress",
)

#: Hex digits of each component fingerprint (blake2b, 8-byte digest).
DIGEST_SIZE = 8

#: Draws peeked per buffered RNG stream when canonicalising its cursor.
#: Enough that two streams at different logical positions cannot digest
#: equal by accident (4 × 64 bits of stream content).
PEEK_DRAWS = 4

_EVENT_KINDS = (
    "issue", "bank_free", "done", "quantum", "timer", "phit", "sample",
)


def _jsonify(value):
    """Recursively coerce to JSON-native types (tuples -> lists,
    numpy scalars -> Python scalars, dict keys -> strings)."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, np.generic):
        return value.item()
    return value


def _request_digest(request: MemoryRequest) -> list:
    """A request's identity and lifecycle state, minus ``request_id``
    (a process-global counter, meaningless across separate runs)."""
    return [
        request.thread_id,
        request.channel_id,
        request.bank_id,
        request.row,
        request.arrival,
        request.episode_id,
        int(request.is_write),
        int(request.is_prefetch),
        int(request.marked),
        request.start_service,
        request.completion,
        request.interference,
    ]


def _event_entry(time: int, kind: int, payload, aux: int) -> list:
    """One canonical event record; request payloads are digested
    immediately (they mutate as the run proceeds)."""
    if isinstance(payload, MemoryRequest):
        payload = _request_digest(payload)
    name = _EVENT_KINDS[kind] if kind < len(_EVENT_KINDS) else str(kind)
    return [time, name, payload, aux]


# ----------------------------------------------------------------------
# per-component snapshots
# ----------------------------------------------------------------------

def snapshot_events(system) -> list:
    """Pending-event multiset in dispatch order, both backends."""
    if system._wheel is not None:
        pending = system._wheel.pending_events()
    else:
        pending = [
            (time, kind, payload, aux)
            for time, _seq, kind, payload, aux in sorted(system._events)
        ]
    return [_event_entry(*event) for event in pending]


def snapshot_dram(system) -> list:
    channels = []
    for channel in system.channels:
        channels.append({
            "banks": [
                {
                    "open_row": bank.open_row,
                    "open_row_owner": bank.open_row_owner,
                    "busy_until": bank.busy_until,
                    "last_activate": bank.last_activate,
                    "row_hits": bank.row_hits,
                    "row_conflicts": bank.row_conflicts,
                    "row_closed": bank.row_closed,
                    "busy_cycles": bank.busy_cycles,
                }
                for bank in channel.banks
            ],
            "queues": [
                [_request_digest(request) for request in queue]
                for queue in channel.queues
            ],
            "bus_free_until": channel.bus_free_until,
            "bus_owner": channel.bus_owner,
            "serviced_requests": channel.serviced_requests,
            "write_buffer": [
                _request_digest(request)
                for request in channel.write_buffer
            ],
            "serviced_writes": channel.serviced_writes,
            "dropped_writes": channel.dropped_writes,
            "recent_activates": list(channel._recent_activates),
            "next_refresh": channel._next_refresh,
            "refreshes_performed": channel.refreshes_performed,
        })
    return channels


def _stats_snapshot(stats) -> dict:
    return {
        "instructions": stats.instructions,
        "misses": stats.misses,
        "episodes": stats.episodes,
        "quantum_instructions": stats.quantum_instructions,
        "quantum_misses": stats.quantum_misses,
    }


def _addr_snapshot(addr) -> dict:
    # field names are shared by the reference AddressStream and the
    # fast FastAddressStream by construction
    return {
        "base": addr._base,
        "pos": addr._pos,
        "spread": addr._spread,
        "last_row": [
            [bank, row] for bank, row in sorted(addr._last_row.items())
        ],
        "accesses": addr.accesses,
        "row_reuses": addr.row_reuses,
        "drifts": addr.drifts,
    }


def snapshot_cpu(system) -> list:
    """Per-thread window state, backend-neutral.

    The reference keeps ``(deque of (id, credit), completed-id set)``;
    the fast batch keeps ``(head id, length, completion bitmask, credit
    ring)``.  Both reduce to: the head id (``issued + 1`` when the
    window is empty, matching the batch's rest state), the in-window
    credits oldest-first, and completed-but-unretired offsets from the
    head.
    """
    batch = system._batch
    threads = []
    if batch is None:
        for thread in system.threads:
            rob = list(thread._rob)
            head = rob[0][0] if rob else thread.issued + 1
            threads.append({
                "issued": thread.issued,
                "head": head,
                "rob_credits": [credit for _id, credit in rob],
                "completed": sorted(
                    issue_id - head for issue_id in thread._completed
                ),
                "window_blocked": bool(thread.window_blocked),
                "instr_credit": thread._instr_credit,
                "pending_credit": thread._pending_credit,
                "gap_carry": thread._gap_carry,
                "program_time": thread.program_time,
                "last_issue_time": thread._last_issue_time,
                "current_ipm": thread._current_ipm,
                "phase_multiplier": thread.phase_multiplier,
                "phase_end": thread._phase_end,
                "max_outstanding": thread.max_outstanding,
                "stats": _stats_snapshot(thread.stats),
                "addr": _addr_snapshot(thread._addr),
            })
        return threads
    for tid in range(len(batch.specs)):
        head = batch.head_id[tid]
        length = batch.rob_len[tid]
        base = tid * MAX_OUTSTANDING_MISSES
        mask = batch.completed_mask[tid]
        threads.append({
            "issued": batch.issued[tid],
            "head": head,
            "rob_credits": [
                batch.credits[base + (head + k) % MAX_OUTSTANDING_MISSES]
                for k in range(length)
            ],
            "completed": [k for k in range(length) if (mask >> k) & 1],
            "window_blocked": bool(batch.window_blocked[tid]),
            "instr_credit": batch.instr_credit[tid],
            "pending_credit": batch.pending_credit[tid],
            "gap_carry": batch.gap_carry[tid],
            "program_time": batch.program_time[tid],
            "last_issue_time": batch.last_issue_time[tid],
            "current_ipm": batch.current_ipm[tid],
            "phase_multiplier": batch.phase_multiplier[tid],
            "phase_end": batch.phase_end[tid],
            "max_outstanding": batch.max_outstanding[tid],
            "stats": _stats_snapshot(batch.stats[tid]),
            "addr": _addr_snapshot(batch.addr[tid]),
        })
    return threads


# -- RNG cursors -------------------------------------------------------

def _clone_generator(generator: np.random.Generator) -> np.random.Generator:
    bit_gen = type(generator.bit_generator)()
    bit_gen.state = generator.bit_generator.state
    return np.random.Generator(bit_gen)


def _generator_cursor(generator: np.random.Generator) -> dict:
    """A raw generator's cursor: PCG64 state words plus the half-word
    bank (zeroed when empty — numpy leaves the stale value behind)."""
    state = generator.bit_generator.state
    has32 = int(state["has_uint32"])
    return {
        "state": state["state"]["state"],
        "inc": state["state"]["inc"],
        "has_uint32": has32,
        "uinteger": int(state["uinteger"]) if has32 else 0,
    }


def _peek_words(source) -> dict:
    """A bit-stream cursor as content: the half-word bank plus the next
    :data:`PEEK_DRAWS` raw 64-bit words, peeked without consuming.

    Works for a raw ``numpy.random.Generator`` and for
    :class:`~repro.engine.rng.BufferedPCG64` — at the same logical
    position both produce the same words, even though the buffered
    façade's underlying generator sits a pre-fetched block ahead.
    """
    if isinstance(source, np.random.Generator):
        state = source.bit_generator.state
        has32 = int(state["has_uint32"])
        half = int(state["uinteger"]) if has32 else 0
        clone = _clone_generator(source)
        words = clone.integers(
            0, 1 << 64, size=PEEK_DRAWS, dtype=np.uint64
        ).tolist()
        return {"has_uint32": has32, "half": half, "words": words}
    # BufferedPCG64: remaining buffer words first, then the wrapped
    # generator (whose position is exactly the buffer's end)
    has32 = int(source._has32)
    half = int(source._half) if has32 else 0
    words = list(source._buf[source._i:source._n])
    missing = PEEK_DRAWS - len(words)
    if missing > 0:
        clone = _clone_generator(source._rng)
        words.extend(
            clone.integers(0, 1 << 64, size=missing, dtype=np.uint64)
            .tolist()
        )
    return {"has_uint32": has32, "half": half, "words": words[:PEEK_DRAWS]}


def _peek_uniforms(source, low: float = 0.9, high: float = 1.1) -> list:
    """The next :data:`PEEK_DRAWS` ``uniform(low, high)`` draws, peeked
    from a clone — canonical across a scalar generator and a
    :class:`~repro.engine.rng.BufferedUniform` block stream."""
    if isinstance(source, np.random.Generator):
        clone = _clone_generator(source)
        return clone.uniform(low, high, size=PEEK_DRAWS).tolist()
    draws = list(source._buf[source._i:source._n])
    missing = PEEK_DRAWS - len(draws)
    if missing > 0:
        clone = _clone_generator(source._rng)
        draws.extend(
            clone.uniform(source._low, source._high, size=missing).tolist()
        )
    return draws[:PEEK_DRAWS]


def snapshot_rng(system) -> dict:
    """Every RNG cursor the run consumes (the policy RNG is digested by
    the scheduler component via ``state_digest``)."""
    batch = system._batch
    threads = []
    if batch is None:
        for thread in system.threads:
            threads.append({
                "jitter": _peek_uniforms(thread._rng),
                "phase": _generator_cursor(thread._phase_rng),
                "addr": _peek_words(thread._addr._rng),
            })
    else:
        for tid in range(len(batch.specs)):
            threads.append({
                "jitter": _peek_uniforms(batch.jitter[tid]),
                "phase": _generator_cursor(batch.phase_rng[tid]),
                "addr": _peek_words(batch.addr[tid]._rng),
            })
    return {
        "threads": threads,
        "writeback": _generator_cursor(system._wb_rng),
    }


def snapshot_monitor(system) -> dict:
    monitor = system.monitor
    return {
        "service_cycles": [list(row) for row in monitor.service_cycles],
        "shadow_rows": [
            [
                [[bank, row] for bank, row in sorted(shadow.items())]
                for shadow in per_channel
            ]
            for per_channel in monitor._shadow_rows
        ],
        "shadow_hits": [list(row) for row in monitor.shadow_hits],
        "shadow_accesses": [list(row) for row in monitor.shadow_accesses],
        "bank_outstanding": [
            [[bank, count] for bank, count in sorted(counts.items())]
            for counts in monitor._bank_outstanding
        ],
        "active_banks": list(monitor._active_banks),
        "outstanding": list(monitor._outstanding),
        "last_update": list(monitor._last_update),
        "blp_integral": list(monitor._blp_integral),
        "busy_time": list(monitor._busy_time),
        "lifetime_service_cycles": list(monitor.lifetime_service_cycles),
        "lifetime_shadow_hits": list(monitor.lifetime_shadow_hits),
        "lifetime_shadow_accesses": list(monitor.lifetime_shadow_accesses),
        "lifetime_blp_integral": list(monitor.lifetime_blp_integral),
        "lifetime_busy_time": list(monitor.lifetime_busy_time),
    }


def snapshot_progress(system) -> dict:
    return {
        "now": system.now,
        "event_seq": system._seq if system._wheel is None
        else system._wheel._seq,
        "sched_decisions": system.sched_decisions,
        "quantum_count": system.quantum_count,
        "latency_sum": list(system._latency_sum),
        "latency_count": list(system._latency_count),
        "ipc_timeline": [list(row) for row in system.ipc_timeline],
    }


_SNAPSHOTS = {
    "events": snapshot_events,
    "dram": snapshot_dram,
    "cpu": snapshot_cpu,
    "rng": snapshot_rng,
    "monitor": snapshot_monitor,
    "scheduler": lambda system: system.scheduler.state_digest(),
    "progress": snapshot_progress,
}


def snapshot_state(
    system, components: Iterable[str] = COMPONENTS
) -> Dict[str, object]:
    """Canonical (JSON-native) snapshot of the selected components."""
    snapshot = {}
    for name in components:
        try:
            taker = _SNAPSHOTS[name]
        except KeyError:
            raise ValueError(
                f"unknown state component {name!r}; "
                f"choose from {', '.join(COMPONENTS)}"
            ) from None
        snapshot[name] = _jsonify(taker(system))
    return snapshot


def fingerprint_component(value) -> str:
    """Short stable hash of one canonical component snapshot."""
    payload = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return blake2b(payload.encode(), digest_size=DIGEST_SIZE).hexdigest()


def fingerprint_state(
    system, components: Iterable[str] = COMPONENTS
) -> Dict[str, str]:
    """Per-component fingerprints of the system's current state."""
    return {
        name: fingerprint_component(value)
        for name, value in snapshot_state(system, components).items()
    }


# ----------------------------------------------------------------------
# the probe
# ----------------------------------------------------------------------

class StateProbe:
    """Attached observer: ring buffers plus on-demand fingerprints.

    ``attach`` binds the probe to ``System._probe``; the event loops
    then feed it every dispatched event (:meth:`on_event`) and every
    grant (:meth:`on_decision`), which the probe keeps in bounded ring
    buffers for the forensic report.  Fingerprints and snapshots are
    computed only when asked (between :meth:`~repro.sim.system.System.\
advance` windows), so probe overhead scales with checkpoint cadence,
    not event rate.
    """

    def __init__(
        self,
        components: Optional[Iterable[str]] = None,
        ring: int = 64,
    ):
        self.components: Tuple[str, ...] = (
            tuple(components) if components is not None else COMPONENTS
        )
        for name in self.components:
            if name not in _SNAPSHOTS:
                raise ValueError(
                    f"unknown state component {name!r}; "
                    f"choose from {', '.join(COMPONENTS)}"
                )
        self.ring = ring
        self.events: deque = deque(maxlen=ring)
        self.decisions: deque = deque(maxlen=ring)
        self.system = None

    def attach(self, system) -> "StateProbe":
        if system._probe is not None:
            raise RuntimeError("system already carries a divergence probe")
        system._probe = self
        self.system = system
        return self

    def detach(self) -> None:
        if self.system is not None:
            self.system._probe = None
            self.system = None

    # -- loop hooks (one is-None branch each when detached) -------------

    def on_event(self, time: int, kind: int, payload, aux: int) -> None:
        self.events.append(_event_entry(time, kind, payload, aux))

    def on_decision(
        self, now: int, channel_id: int, bank_id: int, request, queued, access
    ) -> None:
        self.decisions.append({
            "cycle": now,
            "ch": channel_id,
            "bank": bank_id,
            "tid": request.thread_id,
            "row": request.row,
            "arrival": request.arrival,
            "queued": queued,
            "kind": access.kind,
            "row_hit": bool(access.is_row_hit),
            "data_end": access.data_end,
        })

    # -- checkpoints -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return snapshot_state(self.system, self.components)

    def fingerprint(self) -> Dict[str, str]:
        return fingerprint_state(self.system, self.components)

    def rings(self) -> dict:
        return {
            "events": list(self.events),
            "decisions": list(self.decisions),
        }
