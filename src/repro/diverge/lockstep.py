"""Lockstep differential execution with first-divergence bisection.

Runs two simulations checkpoint-by-checkpoint — reference vs fast
backend, two seeds, two configs, or a live run vs a recorded baseline
— comparing :mod:`repro.diverge.probe` fingerprints at every
checkpoint.  On the first mismatch, :func:`bisect_divergence` re-runs
the bracketing window at geometrically finer cadence until two
*consecutive* checkpoints bracket the fault: the reported cycle is
exactly the first cycle whose events made the states differ.

Re-execution is the only rewind the simulator offers (state is never
copied back), so every refinement round builds fresh systems from the
run's factory, fast-forwards them to the last matching checkpoint in
one ``advance`` call, and steps the window.  That is sound because
stepping granularity cannot change a run's trajectory — ``advance(a);
advance(b)`` is bit-identical to ``advance(b)`` (pinned by the
stepping-equivalence tests) — and determinism replays the identical
divergence every round.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from repro.config import SimConfig
from repro.diverge.probe import COMPONENTS, StateProbe
from repro.validate.fingerprint import compare_fingerprints

#: Cadence shrink factor between bisection rounds.
DEFAULT_REFINE = 8

#: Ring-buffer length for forensic event/decision context.
DEFAULT_RING = 64


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one lockstep side.

    ``build()`` constructs a fresh :class:`~repro.sim.system.System`;
    the lockstep machinery only ever needs a zero-argument factory, so
    anything constructible by hand (custom workloads, fault-injecting
    wrappers) can bypass this class entirely.
    """

    scheduler: str = "tcm"
    intensity: float = 0.5
    num_threads: int = 8
    mix_seed: int = 7
    seed: int = 11
    backend: str = "reference"
    run_cycles: int = 150_000

    def label(self) -> str:
        return (
            f"{self.scheduler}/i{self.intensity:g}/s{self.seed}"
            f"/{self.backend}"
        )

    def build(self):
        from repro import System, make_scheduler
        from repro.workloads import make_intensity_workload

        workload = make_intensity_workload(
            self.intensity,
            num_threads=self.num_threads,
            seed=self.mix_seed,
        )
        config = SimConfig(
            run_cycles=self.run_cycles, backend=self.backend
        )
        return System(
            workload, make_scheduler(self.scheduler), config,
            seed=self.seed,
        )

    def factory(self) -> Callable[[], object]:
        return self.build

    def to_json(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "intensity": self.intensity,
            "num_threads": self.num_threads,
            "mix_seed": self.mix_seed,
            "seed": self.seed,
            "backend": self.backend,
            "run_cycles": self.run_cycles,
        }


@dataclass
class Divergence:
    """The first fingerprint mismatch, localised and explained."""

    #: first checkpoint whose fingerprints differ — with ``exact`` set,
    #: the first divergent *cycle*
    cycle: int
    #: last checkpoint at which both sides agreed
    last_match: int
    #: True when ``cycle == last_match + 1`` (bisected all the way)
    exact: bool
    #: component names whose fingerprints differ at ``cycle``
    components: List[str]
    fingerprint_a: Dict[str, str]
    fingerprint_b: Dict[str, str]
    #: field-level state diff: [{"path", "a", "b"}, ...]
    diff: List[dict]
    snapshot_a: dict
    snapshot_b: dict
    #: last events/decisions on each side, oldest first
    rings_a: dict = field(default_factory=dict)
    rings_b: dict = field(default_factory=dict)


@dataclass
class LockstepResult:
    """Outcome of a lockstep comparison or bisection."""

    diverged: bool
    horizon: int
    cadence: int
    #: fingerprint comparisons performed, all rounds included
    checkpoints: int
    #: bisection rounds executed (1 = coarse scan only)
    rounds: int
    divergence: Optional[Divergence] = None

    def summary(self) -> str:
        if not self.diverged:
            return (
                f"no divergence in {self.horizon} cycles "
                f"({self.checkpoints} checkpoints at cadence "
                f"{self.cadence})"
            )
        d = self.divergence
        where = f"cycle {d.cycle}" if d.exact else (
            f"window ({d.last_match}, {d.cycle}]"
        )
        return (
            f"first divergence at {where}: "
            f"{', '.join(d.components)} differ "
            f"({self.checkpoints} checkpoints, {self.rounds} round(s))"
        )


def _start(factory, components, ring):
    system = factory()
    probe = StateProbe(components=components, ring=ring).attach(system)
    system.start_run()
    return system, probe


def _diff_components(snapshot_a, snapshot_b) -> List[dict]:
    drifts = compare_fingerprints(snapshot_a, snapshot_b)
    return [
        {"path": f"{d.key}.{d.path}" if d.path else d.key,
         "a": d.golden, "b": d.fresh}
        for d in drifts
    ]


def _capture(probe_a, probe_b, cycle, last_match, exact) -> Divergence:
    fp_a = probe_a.fingerprint()
    fp_b = probe_b.fingerprint()
    snap_a = probe_a.snapshot()
    snap_b = probe_b.snapshot()
    return Divergence(
        cycle=cycle,
        last_match=last_match,
        exact=exact,
        components=sorted(
            name for name in fp_a if fp_a[name] != fp_b.get(name)
        ),
        fingerprint_a=fp_a,
        fingerprint_b=fp_b,
        diff=_diff_components(snap_a, snap_b),
        snapshot_a=snap_a,
        snapshot_b=snap_b,
        rings_a=probe_a.rings(),
        rings_b=probe_b.rings(),
    )


def _scan(factory_a, factory_b, lo, hi, cadence, components, ring):
    """Fresh systems fast-forwarded to ``lo`` (a known-good
    checkpoint), then compared every ``cadence`` cycles through ``hi``.

    Returns ``(divergence_or_None, checkpoints_compared)``; the
    divergence, if any, is captured with full snapshots and rings from
    the systems parked at the first mismatching checkpoint.
    """
    system_a, probe_a = _start(factory_a, components, ring)
    system_b, probe_b = _start(factory_b, components, ring)
    if lo > 0:
        system_a.advance(lo)
        system_b.advance(lo)
    last_match = lo
    checked = 0
    cycle = lo
    while cycle < hi:
        cycle = min(cycle + cadence, hi)
        system_a.advance(cycle)
        system_b.advance(cycle)
        checked += 1
        if probe_a.fingerprint() != probe_b.fingerprint():
            exact = cycle == last_match + 1
            return (
                _capture(probe_a, probe_b, cycle, last_match, exact),
                checked,
            )
        last_match = cycle
    return None, checked


def resolve_cadence(cadence, config: Optional[SimConfig] = None) -> int:
    """Map a cadence spec to cycles: a positive int passes through;
    ``"quantum"`` (or None) means one checkpoint per scheduling
    quantum; ``"cycle"`` means every cycle."""
    if cadence is None or cadence == "quantum":
        return (config or SimConfig()).quantum_cycles
    if cadence == "cycle":
        return 1
    cadence = int(cadence)
    if cadence < 1:
        raise ValueError("checkpoint cadence must be >= 1 cycle")
    return cadence


def lockstep_compare(
    factory_a: Callable[[], object],
    factory_b: Callable[[], object],
    horizon: int,
    cadence: int,
    components: Iterable[str] = COMPONENTS,
    ring: int = DEFAULT_RING,
) -> LockstepResult:
    """One coarse lockstep pass: stop at the first mismatching
    checkpoint, no refinement."""
    components = tuple(components)
    divergence, checked = _scan(
        factory_a, factory_b, 0, horizon, cadence, components, ring
    )
    return LockstepResult(
        diverged=divergence is not None,
        horizon=horizon,
        cadence=cadence,
        checkpoints=checked,
        rounds=1,
        divergence=divergence,
    )


def bisect_divergence(
    factory_a: Callable[[], object],
    factory_b: Callable[[], object],
    horizon: int,
    cadence: int,
    components: Iterable[str] = COMPONENTS,
    ring: int = DEFAULT_RING,
    refine: int = DEFAULT_REFINE,
) -> LockstepResult:
    """Lockstep compare, then re-run the bracketing window at
    geometrically finer cadence down to the exact first divergent
    cycle."""
    if refine < 2:
        raise ValueError("refine factor must be >= 2")
    components = tuple(components)
    divergence, checkpoints = _scan(
        factory_a, factory_b, 0, horizon, cadence, components, ring
    )
    rounds = 1
    while divergence is not None and not divergence.exact:
        window = divergence.cycle - divergence.last_match
        finer = max(1, -(-window // refine))
        divergence, checked = _scan(
            factory_a, factory_b,
            divergence.last_match, divergence.cycle,
            finer, components, ring,
        )
        checkpoints += checked
        rounds += 1
        if divergence is None:  # pragma: no cover - determinism breach
            raise RuntimeError(
                "divergence did not reproduce during refinement; "
                "the run factories are not deterministic"
            )
    return LockstepResult(
        diverged=divergence is not None,
        horizon=horizon,
        cadence=cadence,
        checkpoints=checkpoints,
        rounds=rounds,
        divergence=divergence,
    )


def spec_for_golden_key(key: str, backend: str = "reference") -> RunSpec:
    """The :class:`RunSpec` reproducing one golden-matrix point.

    Bridges ``validate goldens`` failures into the forensic machinery:
    a drifting key like ``mix-50pct-s7/tcm/s11`` becomes a spec whose
    ``build()`` replays exactly that run, so reference-vs-fast lockstep
    bisection can be launched on the failing point.
    """
    import re

    from repro.validate.goldens import (
        GOLDEN_CONFIG,
        GOLDEN_THREADS,
        parse_golden_key,
    )

    _, mix, scheduler, seed = parse_golden_key(key)
    match = re.fullmatch(r"mix-(\d+)pct-s(\d+)", mix)
    if match is None or not scheduler or not seed:
        raise ValueError(f"cannot reconstruct a run from golden key {key!r}")
    return RunSpec(
        scheduler=scheduler,
        intensity=int(match.group(1)) / 100,
        num_threads=GOLDEN_THREADS,
        mix_seed=int(match.group(2)),
        seed=int(seed),
        backend=backend,
        run_cycles=GOLDEN_CONFIG.run_cycles,
    )


# ----------------------------------------------------------------------
# recorded baselines
# ----------------------------------------------------------------------

RECORDING_SCHEMA = "repro.diverge.recording/v1"


def record_checkpoints(
    factory: Callable[[], object],
    horizon: int,
    cadence: int,
    components: Iterable[str] = COMPONENTS,
    path: Optional[Path] = None,
    spec: Optional[RunSpec] = None,
) -> dict:
    """Run once, recording per-checkpoint fingerprints for later
    live-vs-baseline comparison (e.g. across commits)."""
    components = tuple(components)
    system, probe = _start(factory, components, ring=0)
    checkpoints: Dict[str, Dict[str, str]] = {}
    cycle = 0
    while cycle < horizon:
        cycle = min(cycle + cadence, horizon)
        system.advance(cycle)
        checkpoints[str(cycle)] = probe.fingerprint()
    recording = {
        "schema": RECORDING_SCHEMA,
        "horizon": horizon,
        "cadence": cadence,
        "components": list(components),
        "spec": spec.to_json() if spec is not None else None,
        "checkpoints": checkpoints,
    }
    if path is not None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(recording, indent=1, sort_keys=True))
    return recording


def compare_to_recording(
    factory: Callable[[], object],
    recording: dict,
    ring: int = DEFAULT_RING,
) -> LockstepResult:
    """Replay a live run against a recorded baseline's checkpoints.

    Localisation stops at the recording's cadence (a recording cannot
    be refined after the fact); for exact-cycle bisection run both
    sides live with :func:`bisect_divergence`.
    """
    if recording.get("schema") != RECORDING_SCHEMA:
        raise ValueError(
            f"not a diverge recording (schema {recording.get('schema')!r})"
        )
    components = tuple(recording["components"])
    horizon = recording["horizon"]
    cadence = recording["cadence"]
    system, probe = _start(factory, components, ring)
    baseline = recording["checkpoints"]
    last_match = 0
    checked = 0
    cycle = 0
    while cycle < horizon:
        cycle = min(cycle + cadence, horizon)
        system.advance(cycle)
        expected = baseline.get(str(cycle))
        live = probe.fingerprint()
        checked += 1
        if expected != live:
            snapshot = probe.snapshot()
            divergence = Divergence(
                cycle=cycle,
                last_match=last_match,
                exact=cycle == last_match + 1,
                components=sorted(
                    name for name in live
                    if expected is None or live[name] != expected.get(name)
                ),
                fingerprint_a=expected or {},
                fingerprint_b=live,
                diff=[],  # the baseline holds hashes, not state
                snapshot_a={},
                snapshot_b=snapshot,
                rings_a={},
                rings_b=probe.rings(),
            )
            return LockstepResult(
                diverged=True,
                horizon=horizon,
                cadence=cadence,
                checkpoints=checked,
                rounds=1,
                divergence=divergence,
            )
        last_match = cycle
    return LockstepResult(
        diverged=False,
        horizon=horizon,
        cadence=cadence,
        checkpoints=checked,
        rounds=1,
    )
