"""Forensic reports for a localised divergence.

Turns a :class:`~repro.diverge.lockstep.LockstepResult` into:

* a structured JSON document (schema ``repro.diverge.report/v1``):
  the divergence location, per-component fingerprints of both sides,
  the field-level state diff, and both sides' event/decision ring
  buffers;
* an optional Chrome ``trace_event`` export (loadable at
  https://ui.perfetto.dev) laying both sides' last events and grants
  on parallel tracks with a global "FIRST DIVERGENCE" marker at the
  localised cycle;
* a no-JS HTML panel rendered by
  :func:`repro.obs.dashboard.render_diverge_dashboard`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.diverge.lockstep import LockstepResult

REPORT_SCHEMA = "repro.diverge.report/v1"

#: State-diff entries carried in the report (the full snapshots are
#: included separately; the diff is the readable part).
MAX_DIFF_ENTRIES = 200


def build_report(
    result: LockstepResult,
    label_a: str = "a",
    label_b: str = "b",
    context: Optional[dict] = None,
) -> dict:
    """One self-contained JSON document describing the comparison."""
    report = {
        "schema": REPORT_SCHEMA,
        "label_a": label_a,
        "label_b": label_b,
        "diverged": result.diverged,
        "horizon": result.horizon,
        "cadence": result.cadence,
        "checkpoints": result.checkpoints,
        "rounds": result.rounds,
        "summary": result.summary(),
        "context": context or {},
    }
    divergence = result.divergence
    if divergence is not None:
        diff = divergence.diff
        report["divergence"] = {
            "cycle": divergence.cycle,
            "last_match": divergence.last_match,
            "exact": divergence.exact,
            "components": divergence.components,
            "fingerprint_a": divergence.fingerprint_a,
            "fingerprint_b": divergence.fingerprint_b,
            "diff": diff[:MAX_DIFF_ENTRIES],
            "diff_truncated": max(0, len(diff) - MAX_DIFF_ENTRIES),
            "snapshot_a": divergence.snapshot_a,
            "snapshot_b": divergence.snapshot_b,
            "rings_a": divergence.rings_a,
            "rings_b": divergence.rings_b,
        }
    return report


def write_report(report: dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=1, sort_keys=True))
    return path


def load_report(path) -> dict:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"not a diverge report (schema {report.get('schema')!r})"
        )
    return report


# ----------------------------------------------------------------------
# Perfetto export
# ----------------------------------------------------------------------

def _side_events(trace: list, pid: int, label: str, rings: dict) -> None:
    trace.append({
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": label},
    })
    trace.append({
        "ph": "M", "pid": pid, "tid": 1, "name": "thread_name",
        "args": {"name": "events"},
    })
    trace.append({
        "ph": "M", "pid": pid, "tid": 2, "name": "thread_name",
        "args": {"name": "decisions"},
    })
    for time, kind, payload, aux in rings.get("events", ()):
        trace.append({
            "ph": "i", "s": "t", "pid": pid, "tid": 1, "ts": time,
            "name": kind,
            "args": {"payload": payload, "aux": aux},
        })
    for decision in rings.get("decisions", ()):
        trace.append({
            "ph": "X", "pid": pid, "tid": 2,
            "ts": decision["cycle"],
            "dur": max(1, decision["data_end"] - decision["cycle"]),
            "name": (
                f"grant t{decision['tid']} "
                f"ch{decision['ch']}/b{decision['bank']}"
            ),
            "args": decision,
        })


def export_perfetto(report: dict, path) -> Path:
    """Chrome trace_event JSON: both sides' forensic rings on parallel
    process tracks, divergence marked as a global instant."""
    trace: list = []
    divergence = report.get("divergence")
    _side_events(
        trace, 1, f"side A: {report['label_a']}",
        (divergence or {}).get("rings_a", {}),
    )
    _side_events(
        trace, 2, f"side B: {report['label_b']}",
        (divergence or {}).get("rings_b", {}),
    )
    if divergence is not None:
        trace.append({
            "ph": "i", "s": "g", "pid": 1, "tid": 1,
            "ts": divergence["cycle"],
            "name": "FIRST DIVERGENCE",
            "args": {
                "components": divergence["components"],
                "last_match": divergence["last_match"],
                "exact": divergence["exact"],
            },
        })
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace))
    return path


def render_report_html(report: dict) -> str:
    """The no-JS HTML panel (see :mod:`repro.obs.dashboard`)."""
    from repro.obs.dashboard import render_diverge_dashboard

    return render_diverge_dashboard(report)


def write_report_html(report: dict, path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report_html(report))
    return path
