"""repro.diverge — divergence forensics for the parity contract.

Turns "the backends/seeds/configs diverged" into "the first divergent
cycle is N, these components differ, here is the field-level diff and
the last events on each side":

* :mod:`repro.diverge.probe` — canonical state snapshots and
  per-component fingerprints of a live system (pending events, DRAM
  banks, CPU columns, RNG cursors, monitor, scheduler
  ``state_digest``), attached through the one-branch-when-off
  observer seams.
* :mod:`repro.diverge.lockstep` — checkpoint-by-checkpoint
  differential execution of two runs, with geometric re-execution
  bisection down to the exact first divergent cycle, plus recorded
  fingerprint baselines.
* :mod:`repro.diverge.report` — forensic JSON reports, Perfetto
  export with the divergence marked, and the no-JS HTML panel.

CLI: ``python -m repro.experiments.cli diverge run|bisect|report``.
"""

from repro.diverge.lockstep import (
    Divergence,
    LockstepResult,
    RunSpec,
    bisect_divergence,
    compare_to_recording,
    lockstep_compare,
    record_checkpoints,
    resolve_cadence,
    spec_for_golden_key,
)
from repro.diverge.probe import (
    COMPONENTS,
    StateProbe,
    fingerprint_state,
    snapshot_state,
)
from repro.diverge.report import (
    build_report,
    export_perfetto,
    load_report,
    render_report_html,
    write_report,
    write_report_html,
)

__all__ = [
    "COMPONENTS",
    "Divergence",
    "LockstepResult",
    "RunSpec",
    "StateProbe",
    "bisect_divergence",
    "build_report",
    "compare_to_recording",
    "export_perfetto",
    "fingerprint_state",
    "load_report",
    "lockstep_compare",
    "record_checkpoints",
    "render_report_html",
    "resolve_cadence",
    "snapshot_state",
    "spec_for_golden_key",
    "write_report",
    "write_report_html",
]
