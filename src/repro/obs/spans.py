"""Request-lifecycle spans and scheduler-independent interference accounting.

Every memory request's round trip decomposes into *waits*, each of
which has a cause and — crucially for the paper's argument — a
**culprit thread**:

* ``queue`` — the bank was servicing someone else's request.  The
  culprit is the thread being serviced.  These are the cycles STFM's
  interference accounting estimates (Mutlu & Moscibroda, MICRO 2007);
  the span mechanism generalises that accounting to every scheduler.
* ``row`` — the access was a row-buffer conflict: the precharge
  penalty is charged to the thread whose open row had to be closed.
* ``bus`` — the burst waited for the channel data bus behind another
  thread's burst.
* ``service`` — intrinsic service the request would pay alone
  (activate, burst, fixed round-trip overhead) plus self-inflicted
  waits, charged to the request's own thread.

The :class:`SpanCollector` is bound to a :class:`repro.sim.System`
before the run (``System(..., telemetry=Telemetry(spans=...))`` or
:func:`attach_spans`).  The simulator's hot path pays exactly one
``is None`` branch per emit site when no collector is bound — the same
contract as the telemetry tracer — and collectors never mutate
simulation state, so spans on/off runs are bit-identical.

Two accounting tiers share one class:

* **lite** (``record_intervals=False``) — per-request ``interference``
  cycles, per-thread totals and the T×T victim/culprit matrix, all
  maintained with STFM's original grant-time rule: when a request is
  granted service, every *other* thread's request still waiting at that
  bank is delayed by the full service occupancy.  STFM binds a lite
  collector automatically (its fairness policy consumes these totals),
  so ``t_interference`` here matches STFM's private ``_t_interference``
  cross-check *exactly*, by construction.
* **full** (``record_intervals=True``, the default) — additionally
  records, per request, the wait intervals themselves: disjoint,
  cause-tagged, culprit-tagged, and tiling the request's entire
  latency from arrival to completion (an invariant the
  :mod:`repro.validate` oracle checks).  Full spans also capture the
  *partial* interval a request spends behind a service that was already
  underway when it arrived; those cycles complete the latency tiling
  but are kept out of the matrix so the matrix stays STFM-comparable.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.dram.request import MemoryRequest

#: wait-interval causes
CAUSE_QUEUE = "queue"      # bank busy with another request
CAUSE_ROW = "row"          # precharge penalty from a conflicting open row
CAUSE_BUS = "bus"          # burst serialised behind another burst
CAUSE_SERVICE = "service"  # intrinsic service / self-inflicted wait

CAUSES = (CAUSE_QUEUE, CAUSE_ROW, CAUSE_BUS, CAUSE_SERVICE)


class WaitInterval(NamedTuple):
    """One cause-tagged slice of a request's latency.

    ``partial`` marks a queue interval whose blocking service was
    already underway when the victim arrived: it counts toward the
    latency tiling but not toward the grant-rule attribution matrix.
    """

    start: int
    end: int
    culprit: int
    cause: str
    partial: bool = False

    @property
    def cycles(self) -> int:
        return self.end - self.start


class RequestSpan:
    """The decomposed lifecycle of one memory request."""

    __slots__ = (
        "request_id", "thread_id", "channel_id", "bank_id", "row",
        "arrival", "start_service", "completion", "kind", "is_prefetch",
        "intervals",
    )

    def __init__(self, request: MemoryRequest):
        self.request_id = request.request_id
        self.thread_id = request.thread_id
        self.channel_id = request.channel_id
        self.bank_id = request.bank_id
        self.row = request.row
        self.arrival = request.arrival
        self.start_service: Optional[int] = None
        self.completion: Optional[int] = None
        self.kind: Optional[str] = None
        self.is_prefetch = request.is_prefetch
        self.intervals: List[WaitInterval] = []

    @property
    def latency(self) -> Optional[int]:
        if self.completion is None:
            return None
        return self.completion - self.arrival

    @property
    def queueing(self) -> Optional[int]:
        """Cycles between arrival and the start of bank service."""
        if self.start_service is None:
            return None
        return self.start_service - self.arrival

    def cycles_by_cause(self) -> Dict[str, int]:
        """Total cycles per cause (all intervals, culprits included)."""
        out = {cause: 0 for cause in CAUSES}
        for interval in self.intervals:
            out[interval.cause] += interval.end - interval.start
        return out

    def interference_cycles(self) -> int:
        """Cycles attributable to *other* threads (any cause)."""
        return sum(
            i.end - i.start
            for i in self.intervals
            if i.culprit != self.thread_id
        )

    def __repr__(self) -> str:
        return (
            f"RequestSpan(t{self.thread_id} ch{self.channel_id} "
            f"b{self.bank_id} {self.kind} @{self.arrival}"
            f"->{self.completion}, {len(self.intervals)} intervals)"
        )


class SpanCollector:
    """Accumulates spans and interference attribution for one run.

    Bound to a system either via the :class:`repro.telemetry.Telemetry`
    bundle (``Telemetry(spans=SpanCollector())``) or with
    :func:`attach_spans`.  All hooks are driven by the system's event
    loop; the collector is strictly read-only with respect to
    simulation state (it mutates only ``request.interference``, which
    no scheduling decision of any registered policy reads before
    writing — STFM consumes the collector's totals instead).
    """

    def __init__(self, record_intervals: bool = True,
                 keep_spans: bool = True):
        self.record_intervals = record_intervals
        self.keep_spans = keep_spans and record_intervals
        self.num_threads = 0
        #: grant-rule queueing cycles charged to other threads, per victim
        self.t_interference: List[int] = []
        #: total request latency (arrival -> completion), per thread
        self.t_shared: List[int] = []
        #: grant-rule delay matrix: ``matrix[victim][culprit]``
        self.matrix: List[List[int]] = []
        #: sum of all off-diagonal matrix entries
        self.total_attributed = 0
        self.spans: List[RequestSpan] = []
        self.requests_completed = 0
        self._open: Dict[int, RequestSpan] = {}
        #: (channel, bank) -> (busy-until, occupant thread)
        self._bank_busy: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._fixed_overhead = 0
        self._t_rcd = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def bind(self, system) -> "SpanCollector":
        """Size per-thread state for ``system`` and reset the run."""
        n = system.workload.num_threads
        self.num_threads = n
        self.t_interference = [0] * n
        self.t_shared = [0] * n
        self.matrix = [[0] * n for _ in range(n)]
        self.total_attributed = 0
        self.spans = []
        self.requests_completed = 0
        self._open = {}
        self._bank_busy = {}
        timings = system.config.timings
        self._fixed_overhead = timings.fixed_overhead
        self._t_rcd = timings.t_rcd
        return self

    # ------------------------------------------------------------------
    # hot-path hooks (called by System behind an ``is None`` guard)
    # ------------------------------------------------------------------

    def on_arrival(self, request: MemoryRequest, now: int) -> None:
        """A read/prefetch request entered a controller queue."""
        if not self.record_intervals:
            return
        span = RequestSpan(request)
        self._open[request.request_id] = span
        occupied = self._bank_busy.get(
            (request.channel_id, request.bank_id)
        )
        if occupied is not None and occupied[0] > now:
            # the bank is mid-service: the victim waits out the tail of
            # a grant it never witnessed (partial => not in the matrix)
            span.intervals.append(WaitInterval(
                now, occupied[0], occupied[1], CAUSE_QUEUE, partial=True,
            ))

    def on_scheduled(self, request: MemoryRequest, waiting, access,
                     completion: int, now: int) -> None:
        """``request`` was granted bank service; ``waiting`` still queue.

        Applies the grant-time attribution rule (identical to STFM's
        original accounting: full service occupancy charged to every
        waiting request of another thread) and, in full mode, records
        the granted request's own service-side intervals.
        """
        tid = request.thread_id
        end = access.data_end
        busy = end - now
        record = self.record_intervals
        t_interference = self.t_interference
        matrix = self.matrix
        for other in waiting:
            other_tid = other.thread_id
            if other_tid != tid:
                other.interference += busy
                t_interference[other_tid] += busy
                matrix[other_tid][tid] += busy
                self.total_attributed += busy
                if record:
                    span = self._open.get(other.request_id)
                    if span is not None:
                        span.intervals.append(WaitInterval(
                            now, end, tid, CAUSE_QUEUE,
                        ))
            elif record:
                # self-interference: needed for the latency tiling,
                # never part of the (zero-diagonal) matrix
                span = self._open.get(other.request_id)
                if span is not None:
                    span.intervals.append(WaitInterval(
                        now, end, tid, CAUSE_QUEUE,
                    ))
        if record:
            self._bank_busy[(request.channel_id, request.bank_id)] = (
                end, tid,
            )
            span = self._open.get(request.request_id)
            if span is not None:
                span.start_service = now
                span.kind = access.kind
                self._service_intervals(span, access, completion, now)

    def on_write_scheduled(self, request: MemoryRequest, access,
                           now: int) -> None:
        """A buffered write was drained; the bank is busy on its behalf."""
        if not self.record_intervals:
            return
        self._bank_busy[(request.channel_id, request.bank_id)] = (
            access.data_end, request.thread_id,
        )

    def on_complete(self, request: MemoryRequest, now: int) -> None:
        """``request`` returned its data; finalise and file the span."""
        self.t_shared[request.thread_id] += now - request.arrival
        self.requests_completed += 1
        if not self.record_intervals:
            return
        span = self._open.pop(request.request_id, None)
        if span is not None:
            span.completion = now
            if self.keep_spans:
                self.spans.append(span)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def all_spans(self) -> List[RequestSpan]:
        """Completed spans plus those still open at the horizon.

        The grant-rule totals include delays charged to requests that
        never completed within the run, so reconciliation against the
        matrix must see open spans too.
        """
        return self.spans + list(self._open.values())

    # ------------------------------------------------------------------
    # service-side decomposition
    # ------------------------------------------------------------------

    def _service_intervals(self, span: RequestSpan, access,
                           completion: int, now: int) -> None:
        """Tile [grant, completion) with cause-tagged intervals.

        Boundaries come straight from the access's timing breakdown, so
        the tiling is exact under both the Table-3 model and detailed
        timings (tRAS/tRC/tFAW/refresh only shift the boundaries, never
        reorder them).
        """
        tid = span.thread_id
        intervals = span.intervals
        activate = access.activate_time
        prep_done = access.prep_done
        if activate is not None:
            if activate > now:
                if access.kind == "conflict":
                    culprit = (access.row_blocker
                               if access.row_blocker is not None else tid)
                    intervals.append(WaitInterval(
                        now, activate, culprit, CAUSE_ROW,
                    ))
                else:
                    # a "closed" activate delayed by channel-level
                    # bounds (tRRD/tFAW/refresh): self-charged service
                    intervals.append(WaitInterval(
                        now, activate, tid, CAUSE_SERVICE,
                    ))
            if prep_done > activate:
                intervals.append(WaitInterval(
                    activate, prep_done, tid, CAUSE_SERVICE,
                ))
        elif prep_done > now:
            # row hit shifted by a refresh window (detailed timings)
            intervals.append(WaitInterval(
                now, prep_done, tid, CAUSE_SERVICE,
            ))
        if access.data_start > prep_done:
            culprit = (access.bus_blocker
                       if access.bus_blocker is not None else tid)
            intervals.append(WaitInterval(
                prep_done, access.data_start, culprit, CAUSE_BUS,
            ))
        intervals.append(WaitInterval(
            access.data_start, access.data_end, tid, CAUSE_SERVICE,
        ))
        if completion > access.data_end:
            intervals.append(WaitInterval(
                access.data_end, completion, tid, CAUSE_SERVICE,
            ))


def ensure_accounting(system) -> SpanCollector:
    """The system's bound collector, creating a lite one if absent.

    Schedulers whose *policy* consumes interference totals (STFM) call
    this at attach time: if the run already carries a full collector it
    is shared; otherwise a lite (intervals-off) collector is bound so
    the totals exist on every run at STFM's original bookkeeping cost.
    """
    collector = getattr(system, "_spans", None)
    if collector is None:
        collector = SpanCollector(record_intervals=False,
                                  keep_spans=False).bind(system)
        system._spans = collector
    return collector


def attach_spans(system, collector: Optional[SpanCollector] = None
                 ) -> SpanCollector:
    """Bind a (full, by default) collector to ``system`` before its run.

    Replaces any collector bound earlier in construction — e.g. the
    lite accountant STFM installs at attach time — which is safe before
    the run starts because a full collector maintains a superset of the
    lite counters under the identical accounting rule.  Consumers
    (STFM) always read ``system._spans`` live, so they follow the
    replacement.
    """
    if getattr(system, "now", 0):
        raise RuntimeError("attach_spans must be called before system.run()")
    collector = collector or SpanCollector()
    collector.bind(system)
    system._spans = collector
    return collector
