"""Interference-attribution matrix: who delayed whom, and by how much.

Folds a run's :class:`~repro.obs.spans.SpanCollector` into the analysis
the paper's argument rests on:

* the T×T **delay matrix** ``matrix[victim][culprit]`` of grant-rule
  queueing cycles (STFM's accounting, scheduler-independent);
* per-thread **cause breakdowns** — how much of each thread's
  other-inflicted delay was bank queueing vs row-conflict precharge vs
  data-bus serialisation;
* **slowdown estimates** derived from the attribution (STFM's formula,
  computed for every scheduler) — comparable against true alone-run
  slowdowns when the caller has them.

Everything is *reconciled* rather than trusted: :func:`reconcile`
checks the conservation laws that make the matrix meaningful — zero
diagonal, row sums equal to per-victim interference totals, the grand
total equal to the sum of attributed queueing cycles, exact agreement
with STFM's private shadow accounting, and (full-span runs) exact
agreement between the matrix and the recorded wait intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import (
    CAUSE_BUS,
    CAUSE_QUEUE,
    CAUSE_ROW,
    CAUSE_SERVICE,
    SpanCollector,
)

#: shared-cycle floor below which a slowdown estimate is meaningless
#: (mirrors STFM's ``_MIN_SHARED_CYCLES``)
MIN_SHARED_CYCLES = 1000


class ReconciliationError(ValueError):
    """The attribution books do not balance."""


@dataclass
class AttributionReport:
    """A run's interference attribution, ready for rendering or JSON."""

    num_threads: int
    #: grant-rule queueing delay, ``matrix[victim][culprit]``
    matrix: List[List[int]]
    #: row sums of the matrix: total other-inflicted delay per victim
    victim_totals: List[int]
    #: column sums of the matrix: total delay each thread caused others
    culprit_totals: List[int]
    #: sum of every off-diagonal matrix cell
    total_attributed: int
    #: per-thread total request latency (arrival -> completion)
    t_shared: List[int]
    #: STFM-formula slowdown estimate per thread (1.0 when below floor)
    estimated_slowdowns: List[float]
    #: per-victim other-inflicted cycles by cause (full-span runs only):
    #: ``causes[victim] = {"queue": .., "row": .., "bus": ..}``
    causes: Optional[List[Dict[str, int]]] = None
    #: per-thread completed-request latency histogram data
    #: (full-span runs only): list of latencies per thread
    latencies: Optional[List[List[int]]] = None
    #: true slowdowns (alone IPC / shared IPC) when the caller has them
    true_slowdowns: Optional[List[float]] = None
    checks: Dict[str, str] = field(default_factory=dict)

    def to_json(self) -> dict:
        out = {
            "num_threads": self.num_threads,
            "matrix": self.matrix,
            "victim_totals": self.victim_totals,
            "culprit_totals": self.culprit_totals,
            "total_attributed": self.total_attributed,
            "t_shared": self.t_shared,
            "estimated_slowdowns": self.estimated_slowdowns,
            "checks": self.checks,
        }
        if self.causes is not None:
            out["causes"] = self.causes
        if self.true_slowdowns is not None:
            out["true_slowdowns"] = self.true_slowdowns
        return out


def estimated_slowdown(shared: int, interference: int) -> float:
    """STFM's slowdown formula from attribution totals (>= 1.0)."""
    if shared < MIN_SHARED_CYCLES:
        return 1.0
    return shared / max(1, shared - interference)


def cause_breakdown(collector: SpanCollector) -> List[Dict[str, int]]:
    """Other-inflicted cycles per victim, split by cause.

    Requires a full collector (recorded intervals).  ``queue`` counts
    only non-partial intervals, so it reconciles with the grant-rule
    matrix; partial arrival-time waits are reported separately under
    ``queue_partial``.
    """
    if not collector.record_intervals:
        raise ValueError("cause breakdown needs a full span collector "
                         "(record_intervals=True)")
    causes = [
        {CAUSE_QUEUE: 0, CAUSE_ROW: 0, CAUSE_BUS: 0,
         "queue_partial": 0, CAUSE_SERVICE: 0}
        for _ in range(collector.num_threads)
    ]
    for span in collector.all_spans():
        row = causes[span.thread_id]
        tid = span.thread_id
        for interval in span.intervals:
            cycles = interval.end - interval.start
            if interval.culprit == tid:
                row[CAUSE_SERVICE] += cycles
            elif interval.cause == CAUSE_QUEUE and interval.partial:
                row["queue_partial"] += cycles
            else:
                row[interval.cause] += cycles
    return causes


def span_matrix(collector: SpanCollector) -> List[List[int]]:
    """Rebuild the victim×culprit queueing matrix from raw intervals.

    Independent of the counters the hot path maintains — summing
    non-partial other-thread queue intervals per (victim, culprit) pair
    must reproduce ``collector.matrix`` exactly, which :func:`reconcile`
    uses as the strongest cross-check on full-span runs.
    """
    n = collector.num_threads
    matrix = [[0] * n for _ in range(n)]
    for span in collector.all_spans():
        tid = span.thread_id
        for interval in span.intervals:
            if (interval.cause == CAUSE_QUEUE and not interval.partial
                    and interval.culprit != tid):
                matrix[tid][interval.culprit] += interval.end - interval.start
    return matrix


def reconcile(
    collector: SpanCollector,
    stfm_totals: Optional[Sequence[int]] = None,
    strict: bool = True,
) -> Dict[str, str]:
    """Check the conservation laws of the attribution accounting.

    Returns ``{check_name: "ok" | failure detail}``.  With ``strict``
    (the default) any failing check raises :class:`ReconciliationError`
    instead.  ``stfm_totals`` is STFM's private ``_t_interference``
    shadow; when given, per-victim totals must match *exactly* — the
    independent cross-check of the paper's slowdown-estimation
    bookkeeping.
    """
    checks: Dict[str, str] = {}
    n = collector.num_threads
    matrix = collector.matrix

    bad = [t for t in range(n) if matrix[t][t] != 0]
    checks["diagonal_zero"] = (
        "ok" if not bad else f"nonzero diagonal at threads {bad}"
    )

    mismatched = [
        (t, sum(matrix[t]), collector.t_interference[t])
        for t in range(n)
        if sum(matrix[t]) != collector.t_interference[t]
    ]
    checks["row_sums_match_victim_totals"] = (
        "ok" if not mismatched
        else f"row sum != t_interference for {mismatched}"
    )

    grand = sum(sum(row) for row in matrix)
    checks["total_conservation"] = (
        "ok" if grand == collector.total_attributed
        else (f"matrix total {grand} != attributed queueing cycles "
              f"{collector.total_attributed}")
    )

    if stfm_totals is not None:
        diffs = [
            (t, collector.t_interference[t], stfm_totals[t])
            for t in range(n)
            if collector.t_interference[t] != stfm_totals[t]
        ]
        checks["stfm_shadow_exact"] = (
            "ok" if not diffs
            else f"shared accounting != STFM shadow at {diffs}"
        )

    if collector.record_intervals and collector.keep_spans:
        rebuilt = span_matrix(collector)
        checks["intervals_rebuild_matrix"] = (
            "ok" if rebuilt == matrix
            else "matrix rebuilt from intervals differs from counters"
        )

    if strict:
        failures = {k: v for k, v in checks.items() if v != "ok"}
        if failures:
            raise ReconciliationError(
                "attribution reconciliation failed: "
                + "; ".join(f"{k}: {v}" for k, v in failures.items())
            )
    return checks


def attribution_report(
    collector: SpanCollector,
    stfm_totals: Optional[Sequence[int]] = None,
    true_slowdowns: Optional[Sequence[float]] = None,
    strict: bool = True,
) -> AttributionReport:
    """Fold a collector into a reconciled :class:`AttributionReport`."""
    checks = reconcile(collector, stfm_totals=stfm_totals, strict=strict)
    n = collector.num_threads
    matrix = [list(row) for row in collector.matrix]
    victim_totals = [sum(row) for row in matrix]
    culprit_totals = [sum(matrix[v][c] for v in range(n)) for c in range(n)]
    causes = None
    latencies = None
    if collector.record_intervals and collector.keep_spans:
        causes = cause_breakdown(collector)
        latencies = [[] for _ in range(n)]
        for span in collector.spans:
            if not span.is_prefetch and span.latency is not None:
                latencies[span.thread_id].append(span.latency)
    return AttributionReport(
        num_threads=n,
        matrix=matrix,
        victim_totals=victim_totals,
        culprit_totals=culprit_totals,
        total_attributed=collector.total_attributed,
        t_shared=list(collector.t_shared),
        estimated_slowdowns=[
            estimated_slowdown(collector.t_shared[t],
                               collector.t_interference[t])
            for t in range(n)
        ],
        causes=causes,
        latencies=latencies,
        true_slowdowns=(list(true_slowdowns)
                        if true_slowdowns is not None else None),
        checks=checks,
    )


def render_matrix_text(report: AttributionReport,
                       benchmarks: Optional[Sequence[str]] = None) -> str:
    """Plain-text rendering of the attribution matrix for CLI output."""
    n = report.num_threads
    names = [
        f"t{t}" + (f":{benchmarks[t][:10]}" if benchmarks else "")
        for t in range(n)
    ]
    width = max(8, max(len(name) for name in names) + 1)
    lines = ["victim \\ culprit".ljust(18)
             + "".join(name.rjust(width) for name in names)
             + "row_sum".rjust(12)]
    for v in range(n):
        cells = "".join(str(report.matrix[v][c]).rjust(width)
                        for c in range(n))
        lines.append(names[v].ljust(18) + cells
                     + str(report.victim_totals[v]).rjust(12))
    lines.append("caused".ljust(18)
                 + "".join(str(c).rjust(width)
                           for c in report.culprit_totals)
                 + str(report.total_attributed).rjust(12))
    lines.append("")
    lines.append("thread   est_slowdown" +
                 ("   true_slowdown" if report.true_slowdowns else ""))
    for t in range(n):
        row = f"{names[t]:<10} {report.estimated_slowdowns[t]:>10.3f}"
        if report.true_slowdowns:
            row += f" {report.true_slowdowns[t]:>14.3f}"
        lines.append(row)
    return "\n".join(lines)
