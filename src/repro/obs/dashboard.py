"""Self-contained HTML dashboards for runs and campaigns.

Everything is inline — one HTML file with embedded CSS and SVG, no
JavaScript and no external assets — so a dashboard can be attached to a
CI run or mailed around and still render identically.

Two pages:

* :func:`render_run_dashboard` — one run: paper-metric stat tiles,
  per-thread latency histograms, the interference-attribution heatmap,
  per-thread cause breakdowns, estimated-vs-true slowdowns, and the
  Fig. 7-style cluster timeline from the epoch sampler.
* :func:`render_campaign_dashboard` — one campaign store: per-scheduler
  weighted-speedup and maximum-slowdown trajectories across points,
  per-scheduler means, and the point-failure table.

Rendering follows the repo's chart conventions: a validated
categorical palette applied in fixed slot order, one sequential blue
ramp for magnitude, light and dark themes via CSS custom properties,
a legend plus table view for every multi-series chart, and native SVG
``<title>`` tooltips so hover works without scripts.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.aggregate import (
    CampaignObservation,
    RunObservation,
    scheduler_means,
)

#: categorical palette, fixed slot order (light, dark) — identity only,
#: never cycled; a ninth series folds instead
_SERIES = [
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
]

#: sequential blue ramp (mode-shared), light -> dark = low -> high
_RAMP = [
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
]

_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --critical: #d03b3b;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --critical: #d03b3b;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page: #0d0d0d; --surface-1: #1a1a19;
  --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --critical: #d03b3b;
  --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 18px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 18px; margin: 0 0 18px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 18px; min-width: 120px;
}
.tile .v { font-size: 26px; }
.tile .k { color: var(--ink-2); font-size: 12px; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 8px 0 0;
          color: var(--ink-2); font-size: 12px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
              border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
.facets { display: flex; flex-wrap: wrap; gap: 18px; }
.facet .fl { font-size: 12px; color: var(--ink-2); margin: 0 0 2px; }
details { margin: 10px 0 0; }
summary { color: var(--ink-2); font-size: 12px; cursor: pointer; }
table { border-collapse: collapse; margin: 8px 0 0; font-size: 12px; }
th, td { padding: 3px 10px; text-align: right;
         border-bottom: 1px solid var(--grid);
         font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
td.l, th.l { text-align: left; }
.fail { color: var(--critical); }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
"""


def _fmt(value, digits: int = 3) -> str:
    """Compact human formatting for counts and metric values."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    if abs(value) >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if abs(value) >= 10_000:
        return f"{value / 1000:.1f}k"
    return str(value)


def _series_color(slot: int) -> str:
    return f"var(--s{(slot % len(_SERIES)) + 1})"


def _tiles(items: Sequence[Tuple[str, str]]) -> str:
    tiles = "".join(
        f'<div class="tile"><div class="v">{escape(v)}</div>'
        f'<div class="k">{escape(k)}</div></div>'
        for k, v in items
    )
    return f'<div class="tiles">{tiles}</div>'


def _legend(entries: Sequence[Tuple[str, str]]) -> str:
    spans = "".join(
        f'<span><span class="sw" style="background:{color}"></span>'
        f"{escape(label)}</span>"
        for label, color in entries
    )
    return f'<div class="legend">{spans}</div>'


def _details_table(headers: Sequence[str], rows: Sequence[Sequence],
                   left_cols: int = 1,
                   summary: str = "Table view") -> str:
    head = "".join(
        f'<th class="{"l" if i < left_cols else ""}">{escape(h)}</th>'
        for i, h in enumerate(headers)
    )
    body = "".join(
        "<tr>" + "".join(
            f'<td class="{"l" if i < left_cols else ""}">'
            f"{escape(_fmt(c) if not isinstance(c, str) else c)}</td>"
            for i, c in enumerate(row)
        ) + "</tr>"
        for row in rows
    )
    return (f"<details><summary>{escape(summary)}</summary>"
            f"<table><tr>{head}</tr>{body}</table></details>")


# ----------------------------------------------------------------------
# single-run charts
# ----------------------------------------------------------------------

def _heatmap(matrix: List[List[int]], labels: List[str]) -> str:
    """Victim×culprit attribution heatmap on the sequential blue ramp."""
    n = len(matrix)
    peak = max((matrix[v][c] for v in range(n) for c in range(n)
                if v != c), default=0)
    cell, gap, left, top = 58, 2, 120, 26
    width = left + n * cell + 8
    height = top + n * cell + 8
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="interference attribution heatmap">']
    for c in range(n):
        x = left + c * cell + cell // 2
        parts.append(f'<text x="{x}" y="{top - 8}" text-anchor="middle" '
                     f'fill="var(--muted)">{escape(labels[c])}</text>')
    for v in range(n):
        y = top + v * cell
        parts.append(f'<text x="{left - 8}" y="{y + cell // 2 + 4}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"{escape(labels[v])}</text>")
        for c in range(n):
            x = left + c * cell
            value = matrix[v][c]
            if v == c or peak == 0 or value == 0:
                fill = "var(--surface-1)"
                ink = "var(--muted)"
            else:
                step = min(len(_RAMP) - 1,
                           int((value / peak) * (len(_RAMP) - 1) + 0.5))
                fill = _RAMP[step]
                ink = "#ffffff" if step >= 6 else "#0b0b0b"
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell - gap}" '
                f'height="{cell - gap}" rx="3" fill="{fill}" '
                f'stroke="var(--grid)" stroke-width="1">'
                f"<title>victim {escape(labels[v])} ← culprit "
                f"{escape(labels[c])}: {value} cycles</title></rect>"
            )
            parts.append(
                f'<text x="{x + (cell - gap) // 2}" '
                f'y="{y + cell // 2 + 3}" text-anchor="middle" '
                f'fill="{ink}">{_fmt(value)}</text>'
            )
    parts.append("</svg>")
    table = _details_table(
        ["victim \\ culprit"] + labels,
        [[labels[v]] + [matrix[v][c] for c in range(n)]
         for v in range(n)],
    )
    return ("<h2>Interference attribution — delay[victim][culprit] "
            "(queueing cycles)</h2>" + "".join(parts) + table)


def _histograms(latencies: List[List[int]], labels: List[str]) -> str:
    """Per-thread latency histograms as small multiples (one hue)."""
    flat = [x for lat in latencies for x in lat]
    if not flat:
        return ("<h2>Request latency per thread</h2>"
                '<p class="sub">(no completed requests)</p>')
    peak_latency = max(flat)
    bins = 24
    edge = max(1, (peak_latency + bins) // bins)
    w, h, bar = 260, 90, 260 // bins
    facets, rows = [], []
    for tid, lat in enumerate(latencies):
        counts = [0] * bins
        for x in lat:
            counts[min(bins - 1, x // edge)] += 1
        peak = max(counts) or 1
        bars = []
        for b, count in enumerate(counts):
            bh = int((count / peak) * (h - 4))
            if count:
                bars.append(
                    f'<rect x="{b * bar}" y="{h - bh}" '
                    f'width="{bar - 2}" height="{bh}" rx="2" '
                    f'fill="var(--s1)"><title>'
                    f"{b * edge}–{(b + 1) * edge} cycles: {count} "
                    f"requests</title></rect>"
                )
            rows.append([labels[tid], f"{b * edge}–{(b + 1) * edge}",
                         count])
        mean = sum(lat) / len(lat) if lat else 0.0
        facets.append(
            f'<div class="facet"><div class="fl">{escape(labels[tid])} '
            f"· mean {mean:.0f} cy</div>"
            f'<svg width="{w}" height="{h + 16}">'
            f'{"".join(bars)}'
            f'<line x1="0" y1="{h}" x2="{w}" y2="{h}" '
            f'stroke="var(--baseline)"/>'
            f'<text x="0" y="{h + 13}" fill="var(--muted)">0</text>'
            f'<text x="{w}" y="{h + 13}" text-anchor="end" '
            f'fill="var(--muted)">{bins * edge} cy</text>'
            f"</svg></div>"
        )
    table = _details_table(["thread", "latency bin", "requests"], rows,
                           left_cols=2)
    return ("<h2>Request latency per thread</h2>"
            f'<div class="facets">{"".join(facets)}</div>' + table)


_CAUSE_SLOTS = [("queue", 0, "bank queueing"),
                ("row", 1, "row-conflict precharge"),
                ("bus", 2, "data-bus wait"),
                ("queue_partial", 3, "arrival-time partial")]


def _cause_bars(causes: List[dict], labels: List[str]) -> str:
    """Per-victim other-inflicted cycles as stacked horizontal bars."""
    totals = [sum(row[key] for key, _, _ in _CAUSE_SLOTS)
              for row in causes]
    peak = max(totals) or 1
    w, bh, gap, left = 560, 22, 10, 120
    height = len(causes) * (bh + gap) + 6
    parts = [f'<svg width="{w + left + 70}" height="{height}" role="img" '
             f'aria-label="interference cause breakdown">']
    rows = []
    for tid, row in enumerate(causes):
        y = tid * (bh + gap)
        parts.append(f'<text x="{left - 8}" y="{y + bh - 6}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"{escape(labels[tid])}</text>")
        x = left
        for key, slot, desc in _CAUSE_SLOTS:
            seg = int((row[key] / peak) * w)
            if seg > 2:
                parts.append(
                    f'<rect x="{x}" y="{y}" width="{seg - 2}" '
                    f'height="{bh}" rx="3" '
                    f'fill="{_series_color(slot)}">'
                    f"<title>{escape(labels[tid])} — {desc}: "
                    f"{row[key]} cycles</title></rect>"
                )
            x += seg
        parts.append(f'<text x="{x + 6}" y="{y + bh - 6}" '
                     f'fill="var(--ink-2)">{_fmt(totals[tid])}</text>')
        rows.append([labels[tid]] + [row[key] for key, _, _ in
                                     _CAUSE_SLOTS] + [totals[tid]])
    parts.append("</svg>")
    legend = _legend([(desc, _series_color(slot))
                      for _, slot, desc in _CAUSE_SLOTS])
    table = _details_table(
        ["thread", "queueing", "row-conflict", "bus",
         "arrival partial", "total"], rows)
    return ("<h2>Other-inflicted delay by cause</h2>"
            + "".join(parts) + legend + table)


def _slowdown_bars(estimated: List[float],
                   true_slowdowns: Optional[List[float]],
                   labels: List[str]) -> str:
    """Attribution-estimated vs true alone-run slowdowns, per thread."""
    pairs = [(est, (true_slowdowns[t] if true_slowdowns else None))
             for t, est in enumerate(estimated)]
    peak = max([e for e, _ in pairs]
               + [t for _, t in pairs if t is not None] + [1.0])
    w, bh, gap, left = 440, 14, 16, 120
    per = bh * (2 if true_slowdowns else 1) + 4
    height = len(pairs) * (per + gap) + 4
    parts = [f'<svg width="{w + left + 60}" height="{height}" role="img" '
             f'aria-label="estimated versus true slowdown">']
    rows = []
    for tid, (est, true_s) in enumerate(pairs):
        y = tid * (per + gap)
        parts.append(f'<text x="{left - 8}" y="{y + per // 2 + 4}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"{escape(labels[tid])}</text>")
        ew = int((est / peak) * w)
        parts.append(
            f'<rect x="{left}" y="{y}" width="{max(2, ew)}" '
            f'height="{bh}" rx="3" fill="var(--s1)">'
            f"<title>{escape(labels[tid])} estimated slowdown: "
            f"{est:.3f}</title></rect>"
        )
        if true_s is not None:
            tw = int((min(true_s, peak) / peak) * w)
            parts.append(
                f'<rect x="{left}" y="{y + bh + 2}" width="{max(2, tw)}" '
                f'height="{bh}" rx="3" fill="var(--s2)">'
                f"<title>{escape(labels[tid])} true slowdown: "
                f"{true_s:.3f}</title></rect>"
            )
        rows.append([labels[tid], round(est, 3),
                     round(true_s, 3) if true_s is not None else "-"])
    parts.append("</svg>")
    legend = _legend([("estimated (attribution)", "var(--s1)")]
                     + ([("true (alone run)", "var(--s2)")]
                        if true_slowdowns else []))
    table = _details_table(["thread", "estimated", "true"], rows)
    return ("<h2>Slowdown — attribution estimate vs alone-run truth</h2>"
            + "".join(parts) + legend + table)


def _cluster_strip(samples, labels: List[str]) -> str:
    """Fig. 7-style cluster timeline from the epoch sampler."""
    if not samples:
        return ""
    n = len(samples[0].threads)
    stride = max(1, len(samples) // 160)
    picked = samples[::stride]
    cw, ch, gap, left = max(3, 680 // max(1, len(picked))), 14, 3, 120
    width = left + len(picked) * cw + 10
    height = n * (ch + gap) + 22
    fill_of = {"latency": "var(--s1)", "bandwidth": "var(--s2)",
               None: "var(--grid)"}
    name_of = {"latency": "latency-sensitive",
               "bandwidth": "bandwidth-sensitive", None: "unclustered"}
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="cluster timeline">']
    counts: Dict[str, int] = {}
    for tid in range(n):
        y = tid * (ch + gap)
        parts.append(f'<text x="{left - 8}" y="{y + ch - 2}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"{escape(labels[tid])}</text>")
        for i, sample in enumerate(picked):
            cluster = sample.threads[tid].get("cluster")
            counts[name_of.get(cluster, "?")] = (
                counts.get(name_of.get(cluster, "?"), 0) + 1)
            parts.append(
                f'<rect x="{left + i * cw}" y="{y}" width="{cw - 1}" '
                f'height="{ch}" fill="{fill_of.get(cluster, "var(--s8)")}">'
                f"<title>{escape(labels[tid])} @ cycle {sample.cycle}: "
                f"{name_of.get(cluster, cluster)}</title></rect>"
            )
    last = picked[-1].cycle
    parts.append(f'<text x="{left}" y="{height - 6}" '
                 f'fill="var(--muted)">epoch 0</text>')
    parts.append(f'<text x="{width - 10}" y="{height - 6}" '
                 f'text-anchor="end" fill="var(--muted)">'
                 f"cycle {last}</text>")
    parts.append("</svg>")
    legend = _legend([("latency-sensitive", "var(--s1)"),
                      ("bandwidth-sensitive", "var(--s2)"),
                      ("unclustered", "var(--grid)")])
    return ("<h2>Cluster timeline (per epoch)</h2>"
            + "".join(parts) + legend)


# ----------------------------------------------------------------------
# campaign charts
# ----------------------------------------------------------------------

def _trajectory(obs: CampaignObservation, metric: str, title: str) -> str:
    """Per-scheduler metric across the campaign's points, as lines."""
    schedulers = sorted(obs.schedulers)
    point_keys: List[Tuple] = sorted({
        (p["workload"], p["seed"])
        for points in obs.schedulers.values() for p in points
    })
    if not point_keys:
        return ""
    index = {key: i for i, key in enumerate(point_keys)}
    w, h, left, bottom = 640, 180, 46, 22
    values = [p[metric] for points in obs.schedulers.values()
              for p in points if p[metric] is not None]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    span = hi - lo

    def sx(i):
        return left + (i / max(1, len(point_keys) - 1)) * (w - left - 90)

    def sy(v):
        return 8 + (1 - (v - lo) / span) * (h - bottom - 8)

    parts = [f'<svg width="{w}" height="{h}" role="img" '
             f'aria-label="{escape(title)}">']
    for frac in (0.0, 0.5, 1.0):
        y = sy(lo + frac * span)
        parts.append(f'<line x1="{left}" y1="{y:.1f}" x2="{w - 80}" '
                     f'y2="{y:.1f}" stroke="var(--grid)"/>')
        parts.append(f'<text x="{left - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"{lo + frac * span:.2f}</text>")
    rows = []
    for slot, scheduler in enumerate(schedulers):
        pts = [(index[(p["workload"], p["seed"])], p[metric])
               for p in obs.schedulers[scheduler]
               if p[metric] is not None]
        if not pts:
            continue
        pts.sort()
        path = " ".join(f"{sx(i):.1f},{sy(v):.1f}" for i, v in pts)
        color = _series_color(slot)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for i, v in pts:
            key = point_keys[i]
            parts.append(
                f'<circle cx="{sx(i):.1f}" cy="{sy(v):.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"><title>{escape(scheduler)} — '
                f"{escape(str(key[0]))} seed {key[1]}: {v:.3f}"
                f"</title></circle>"
            )
            rows.append([scheduler, str(key[0]), key[1], round(v, 4)])
        if len(schedulers) <= 4:
            i, v = pts[-1]
            parts.append(f'<text x="{sx(i) + 8:.1f}" y="{sy(v) + 4:.1f}" '
                         f'fill="var(--ink-2)">{escape(scheduler)}</text>')
    parts.append(f'<line x1="{left}" y1="{h - bottom}" x2="{w - 80}" '
                 f'y2="{h - bottom}" stroke="var(--baseline)"/>')
    parts.append("</svg>")
    legend = _legend([(s, _series_color(i))
                      for i, s in enumerate(schedulers)])
    table = _details_table(["scheduler", "workload", "seed", metric],
                           rows, left_cols=2)
    return f"<h2>{escape(title)}</h2>" + "".join(parts) + legend + table


# ----------------------------------------------------------------------
# service charts
# ----------------------------------------------------------------------

def _timeline_chart(samples: List[dict], series: List[Tuple[str, str]],
                    title: str, threshold: Optional[float] = None,
                    threshold_label: str = "",
                    alert_key: Optional[str] = None) -> str:
    """Timeline polylines over ``/v1/obs`` samples.

    ``series`` maps a legend label to a sample key (dotted keys index
    into nested dicts, e.g. ``depths.interactive``).  An optional
    horizontal ``threshold`` gridline and, with ``alert_key``, firing
    markers along the baseline.
    """
    def pick(sample: dict, key: str):
        value = sample
        for part in key.split("."):
            if not isinstance(value, dict):
                return None
            value = value.get(part)
        return value

    if len(samples) < 2:
        return (f"<h2>{escape(title)}</h2>"
                '<p class="sub">(fewer than two timeline samples)</p>')
    t0, t1 = samples[0].get("t_s", 0.0), samples[-1].get("t_s", 0.0)
    t_span = (t1 - t0) or 1.0
    values = [v for _, key in series for v in
              (pick(s, key) for s in samples) if v is not None]
    hi = max(values + ([threshold] if threshold is not None else []) + [0.0])
    if hi == 0.0:
        hi = 1.0
    w, h, left, bottom = 640, 160, 46, 22

    def sx(t):
        return left + ((t - t0) / t_span) * (w - left - 20)

    def sy(v):
        return 8 + (1 - min(v, hi) / hi) * (h - bottom - 8)

    parts = [f'<svg width="{w}" height="{h}" role="img" '
             f'aria-label="{escape(title)}">']
    for frac in (0.0, 0.5, 1.0):
        y = sy(frac * hi)
        parts.append(f'<line x1="{left}" y1="{y:.1f}" x2="{w - 10}" '
                     f'y2="{y:.1f}" stroke="var(--grid)"/>')
        parts.append(f'<text x="{left - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"{frac * hi:.2f}</text>")
    if threshold is not None:
        y = sy(threshold)
        parts.append(f'<line x1="{left}" y1="{y:.1f}" x2="{w - 10}" '
                     f'y2="{y:.1f}" stroke="var(--critical)" '
                     f'stroke-dasharray="5 4"/>')
        parts.append(f'<text x="{w - 10}" y="{y - 4:.1f}" '
                     f'text-anchor="end" fill="var(--critical)">'
                     f"{escape(threshold_label)}</text>")
    rows = []
    for slot, (label, key) in enumerate(series):
        pts = [(s.get("t_s", 0.0), pick(s, key)) for s in samples]
        pts = [(t, v) for t, v in pts if v is not None]
        if not pts:
            continue
        path = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in pts)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{_series_color(slot)}" stroke-width="2">'
                     f"<title>{escape(label)}</title></polyline>")
        for t, v in pts:
            rows.append([label, round(t, 2), round(v, 4)])
    if alert_key is not None:
        for s in samples:
            if pick(s, alert_key) == "firing":
                parts.append(
                    f'<rect x="{sx(s.get("t_s", 0.0)) - 2:.1f}" '
                    f'y="{h - bottom - 4}" width="4" height="8" rx="1" '
                    f'fill="var(--critical)"><title>alert firing @ '
                    f'{s.get("t_s", 0.0):.2f}s</title></rect>')
    parts.append(f'<line x1="{left}" y1="{h - bottom}" x2="{w - 10}" '
                 f'y2="{h - bottom}" stroke="var(--baseline)"/>')
    parts.append(f'<text x="{left}" y="{h - 6}" fill="var(--muted)">'
                 f"{t0:.1f}s</text>")
    parts.append(f'<text x="{w - 10}" y="{h - 6}" text-anchor="end" '
                 f'fill="var(--muted)">{t1:.1f}s</text>')
    parts.append("</svg>")
    legend = _legend([(label, _series_color(i))
                      for i, (label, _) in enumerate(series)])
    table = _details_table(["series", "t_s", "value"], rows)
    return f"<h2>{escape(title)}</h2>" + "".join(parts) + legend + table


def _stage_waterfall(stages: Dict[str, dict]) -> str:
    """Stage-latency waterfall: mean seconds per stage as offset bars.

    Each bar starts where the previous stage's mean ended, so the
    x-axis reads as the mean job's accept→terminal timeline.
    """
    named = [(stage, s) for stage, s in stages.items()
             if s.get("count", 0) > 0]
    if not named:
        return ("<h2>Stage-latency waterfall</h2>"
                '<p class="sub">(no finished traces yet)</p>')
    total = sum(s["mean_s"] for _, s in named) or 1.0
    w, bh, gap, left = 560, 22, 10, 120
    height = len(named) * (bh + gap) + 6
    parts = [f'<svg width="{w + left + 80}" height="{height}" role="img" '
             f'aria-label="stage latency waterfall">']
    offset, rows = 0.0, []
    for slot, (stage, s) in enumerate(named):
        y = slot * (bh + gap)
        x = left + (offset / total) * w
        seg = max(2.0, (s["mean_s"] / total) * w)
        parts.append(f'<text x="{left - 8}" y="{y + bh - 6}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"{escape(stage)}</text>")
        parts.append(
            f'<rect x="{x:.1f}" y="{y}" width="{seg:.1f}" height="{bh}" '
            f'rx="3" fill="{_series_color(slot)}">'
            f"<title>{escape(stage)} — mean {s['mean_s'] * 1e3:.2f} ms, "
            f"p99 {s['p99_s'] * 1e3:.2f} ms over {s['count']} spans"
            f"</title></rect>")
        parts.append(f'<text x="{x + seg + 6:.1f}" y="{y + bh - 6}" '
                     f'fill="var(--ink-2)">{s["mean_s"] * 1e3:.2f} ms'
                     f"</text>")
        offset += s["mean_s"]
        rows.append([stage, s["count"], round(s["mean_s"] * 1e3, 3),
                     round(s["p50_s"] * 1e3, 3),
                     round(s["p90_s"] * 1e3, 3),
                     round(s["p99_s"] * 1e3, 3),
                     round(s["max_s"] * 1e3, 3)])
    parts.append("</svg>")
    table = _details_table(
        ["stage", "spans", "mean ms", "p50 ms", "p90 ms", "p99 ms",
         "max ms"], rows)
    return ("<h2>Stage-latency waterfall (mean seconds per stage)</h2>"
            + "".join(parts) + table)


def _lane_table(lanes: Dict[str, dict]) -> str:
    if not lanes:
        return ""
    rows = [
        [lane, s.get("finished", 0),
         round((s.get("wait") or {}).get("p50_s", 0.0) * 1e3, 3),
         round((s.get("wait") or {}).get("p99_s", 0.0) * 1e3, 3),
         round((s.get("service") or {}).get("p50_s", 0.0) * 1e3, 3),
         round((s.get("service") or {}).get("p99_s", 0.0) * 1e3, 3)]
        for lane, s in sorted(lanes.items())
    ]
    head = "".join(
        f'<th class="{"l" if i == 0 else ""}">{escape(h)}</th>'
        for i, h in enumerate(["lane", "finished", "wait p50 ms",
                               "wait p99 ms", "service p50 ms",
                               "service p99 ms"]))
    cells = "".join(
        "<tr>" + "".join(
            f'<td class="{"l" if i == 0 else ""}">{_fmt(c)}</td>'
            for i, c in enumerate(row)) + "</tr>"
        for row in rows)
    return (f"<h2>Per-lane wait / service latency</h2>"
            f"<table><tr>{head}</tr>{cells}</table>")


# ----------------------------------------------------------------------
# pages
# ----------------------------------------------------------------------

def _page(title: str, subtitle: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        '<meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">'
        f"<title>{escape(title)}</title>"
        f"<style>{_CSS}</style></head>"
        f'<body class="viz-root"><h1>{escape(title)}</h1>'
        f'<p class="sub">{escape(subtitle)}</p>{body}</body></html>'
    )


def render_run_dashboard(obs: RunObservation) -> str:
    """One run's observability page as a self-contained HTML string."""
    labels = [f"t{t}:{b}" for t, b in enumerate(obs.benchmarks)]
    report = obs.report
    tiles = [("scheduler", obs.scheduler),
             ("cycles", _fmt(obs.cycles)),
             ("requests", _fmt(obs.total_requests)),
             ("row-hit rate", f"{obs.row_hit_rate:.1%}"),
             ("attributed cycles", _fmt(report.total_attributed))]
    if obs.metrics:
        tiles += [("weighted speedup", f"{obs.metrics['ws']:.3f}"),
                  ("max slowdown", f"{obs.metrics['ms']:.3f}"),
                  ("harmonic speedup", f"{obs.metrics['hs']:.3f}")]
    checks = ", ".join(f"{k}: {v}" for k, v in report.checks.items())
    body = [_tiles(tiles)]
    if report.latencies is not None:
        body.append(f'<div class="card">'
                    f"{_histograms(report.latencies, labels)}</div>")
    body.append(f'<div class="card">{_heatmap(report.matrix, labels)}'
                "</div>")
    if report.causes is not None:
        body.append(f'<div class="card">'
                    f"{_cause_bars(report.causes, labels)}</div>")
    slowdowns = _slowdown_bars(report.estimated_slowdowns,
                               report.true_slowdowns, labels)
    body.append(f'<div class="card">{slowdowns}</div>')
    strip = _cluster_strip(obs.samples, labels)
    if strip:
        body.append(f'<div class="card">{strip}</div>')
    body.append(f'<p class="sub">reconciliation — {escape(checks)}</p>')
    return _page(
        f"repro.obs — {obs.workload} under {obs.scheduler}",
        f"seed {obs.seed} · {len(obs.benchmarks)} threads · "
        f"span-derived attribution, reconciled",
        "".join(body),
    )


def render_campaign_dashboard(obs: CampaignObservation,
                              title: str = "campaign") -> str:
    """One campaign store's page as a self-contained HTML string."""
    points = sum(len(p) for p in obs.schedulers.values())
    tiles = [("points", _fmt(points)),
             ("schedulers", _fmt(len(obs.schedulers))),
             ("workloads", _fmt(len({
                 p["workload"] for pts in obs.schedulers.values()
                 for p in pts}))),
             ("failures", _fmt(len(obs.failures)))]
    body = [_tiles(tiles)]
    for metric, name in (("ws", "Weighted speedup across points"),
                         ("ms", "Maximum slowdown across points")):
        chart = _trajectory(obs, metric, name)
        if chart:
            body.append(f'<div class="card">{chart}</div>')
    means = scheduler_means(obs)
    if means:
        rows = [[m["scheduler"], m["points"], round(m["ws"], 3),
                 round(m["ms"], 3), round(m["hs"], 3)] for m in means]
        head = "".join(
            f'<th class="{"l" if i == 0 else ""}">{h}</th>'
            for i, h in enumerate(
                ["scheduler", "points", "mean WS", "mean MS", "mean HS"])
        )
        cells = "".join(
            "<tr>" + "".join(
                f'<td class="{"l" if i == 0 else ""}">{_fmt(c)}</td>'
                for i, c in enumerate(row)) + "</tr>"
            for row in rows
        )
        body.append(f'<div class="card"><h2>Per-scheduler means</h2>'
                    f"<table><tr>{head}</tr>{cells}</table></div>")
    if obs.failures:
        rows = "".join(
            f'<tr><td class="l">{escape(str(f["workload"]))}</td>'
            f'<td class="l">{escape(str(f["scheduler"]))}</td>'
            f'<td>{f["seed"]}</td><td>{f["attempts"]}</td>'
            f'<td class="l fail">{escape(str(f["error"])[:120])}</td></tr>'
            for f in obs.failures
        )
        body.append(
            '<div class="card"><h2>Point failures</h2><table>'
            '<tr><th class="l">workload</th><th class="l">scheduler</th>'
            "<th>seed</th><th>attempts</th>"
            '<th class="l">error</th></tr>' + rows + "</table></div>"
        )
    else:
        body.append('<div class="card"><h2>Point failures</h2>'
                    '<p class="sub">none — every point completed.</p>'
                    "</div>")
    return _page(f"repro.obs — campaign: {title}",
                 f"{points} points · {len(obs.schedulers)} schedulers",
                 "".join(body))


def render_serve_dashboard(obs: dict, title: str = "service") -> str:
    """One service's observability page from a ``/v1/obs`` snapshot."""
    jobs = obs.get("jobs") or {}
    slo = obs.get("slo") or {}
    overall = slo.get("overall") or {}
    burn = obs.get("burn") or {}
    tiling = obs.get("tiling") or {}
    timeline = obs.get("timeline") or []
    hits = (jobs.get("hit_inflight", 0) + jobs.get("hit_ledger", 0)
            + jobs.get("hit_store", 0))
    attainment = overall.get("attainment")
    tiles = [
        ("submitted", _fmt(jobs.get("submitted", 0))),
        ("served", _fmt(overall.get("served", 0))),
        ("SLO attainment",
         f"{attainment:.1%}" if attainment is not None else "-"),
        ("burn alert", str(burn.get("state", "-"))),
        ("dedup hits", _fmt(hits)),
        ("failed", _fmt(jobs.get("failed", 0))),
    ]
    if obs.get("tracing"):
        tiles += [("traces", _fmt(tiling.get("checked", 0))),
                  ("tiling violations", _fmt(tiling.get("violations", 0)))]
    body = [_tiles(tiles)]

    lanes_seen = sorted({lane for s in timeline
                         for lane in (s.get("depths") or {})})
    depth_series = ([(f"queue {lane}", f"depths.{lane}")
                     for lane in lanes_seen]
                    + [("shards busy", "shards_busy")])
    body.append('<div class="card">' + _timeline_chart(
        timeline, depth_series, "Lane queue depth and busy shards")
        + "</div>")
    body.append('<div class="card">' + _timeline_chart(
        timeline,
        [("burn fast", "burn_fast"), ("burn slow", "burn_slow")],
        "SLO error-budget burn rate",
        threshold=burn.get("fire_threshold"),
        threshold_label="fire", alert_key="alert") + "</div>")

    if obs.get("tracing"):
        body.append('<div class="card">'
                    + _stage_waterfall(obs.get("stages") or {}) + "</div>")
        lane_table = _lane_table(obs.get("lanes") or {})
        if lane_table:
            body.append(f'<div class="card">{lane_table}</div>')
        reconcile = obs.get("reconcile") or {}
        checks = ", ".join(f"{k}: {v}" for k, v in
                           (reconcile.get("checks") or {}).items())
        body.append(f'<p class="sub">trace reconciliation — '
                    f'ok: {reconcile.get("ok")} · {escape(checks)}</p>')
    else:
        body.append('<p class="sub">tracing off — stage waterfalls and '
                    "trace reconciliation need ServeConfig.tracing.</p>")
    conservation = obs.get("conservation") or {}
    return _page(
        f"repro.serve — {title}",
        f"uptime {obs.get('uptime_s', 0.0):.1f}s · "
        f"{len(timeline)} timeline samples · "
        f"ledger conservation ok: {conservation.get('ok')}",
        "".join(body),
    )


# ----------------------------------------------------------------------
# divergence forensics panel (repro.diverge)
# ----------------------------------------------------------------------

def render_diverge_dashboard(report: Dict) -> str:
    """A divergence forensic report as a self-contained no-JS page.

    ``report`` is the JSON document built by
    :func:`repro.diverge.report.build_report`.
    """
    body: List[str] = []
    divergence = report.get("divergence")
    tiles = [
        ("side A", report.get("label_a", "a")),
        ("side B", report.get("label_b", "b")),
        ("horizon", _fmt(report.get("horizon"))),
        ("cadence", _fmt(report.get("cadence"))),
        ("checkpoints", _fmt(report.get("checkpoints"))),
        ("rounds", _fmt(report.get("rounds"))),
    ]
    if divergence is None:
        tiles.append(("first divergence", "none"))
        body.append(_tiles(tiles))
        body.append("<p>No fingerprint mismatch at any checkpoint — "
                    "both sides agree over the whole horizon.</p>")
    else:
        where = str(divergence["cycle"])
        if not divergence["exact"]:
            where += f" (window from {divergence['last_match']})"
        tiles.append(("first divergence", where))
        tiles.append(("components", ", ".join(divergence["components"])))
        body.append(_tiles(tiles))
        fp_a = divergence["fingerprint_a"]
        fp_b = divergence["fingerprint_b"]
        body.append("<h2>Component fingerprints</h2>")
        body.append(_details_table(
            ["component", "side A", "side B", "match"],
            [
                [name, fp_a.get(name, "-"), fp_b.get(name, "-"),
                 "ok" if fp_a.get(name) == fp_b.get(name) else "DIFF"]
                for name in sorted(set(fp_a) | set(fp_b))
            ],
            summary="Fingerprints at the divergent checkpoint",
        ))
        diff = divergence.get("diff") or []
        body.append("<h2>State diff</h2>")
        if diff:
            body.append(_details_table(
                ["field", "side A", "side B"],
                [[d["path"], repr(d["a"]), repr(d["b"])] for d in diff],
                summary=f"{len(diff)} differing field(s)"
                + (f" (+{divergence['diff_truncated']} truncated)"
                   if divergence.get("diff_truncated") else ""),
            ))
        else:
            body.append("<p>No field-level diff available (baseline "
                        "recordings store fingerprints only).</p>")
        for side, label in (("a", report.get("label_a", "a")),
                            ("b", report.get("label_b", "b"))):
            rings = divergence.get(f"rings_{side}") or {}
            events = rings.get("events") or []
            decisions = rings.get("decisions") or []
            body.append(f"<h2>Side {side.upper()} — {escape(str(label))}"
                        "</h2>")
            if events:
                body.append(_details_table(
                    ["cycle", "kind", "payload", "aux"],
                    [[e[0], e[1], repr(e[2]), e[3]] for e in events],
                    summary=f"Last {len(events)} events",
                ))
            if decisions:
                body.append(_details_table(
                    ["cycle", "ch", "bank", "tid", "row", "queued",
                     "kind", "row hit", "data end"],
                    [[d["cycle"], d["ch"], d["bank"], d["tid"], d["row"],
                      d["queued"], d["kind"],
                      "yes" if d["row_hit"] else "no", d["data_end"]]
                     for d in decisions],
                    summary=f"Last {len(decisions)} scheduler decisions",
                ))
    return _page(
        "repro.diverge — divergence forensics",
        report.get("summary", ""),
        "".join(body),
    )


# ----------------------------------------------------------------------
# explain panel (repro.explain)
# ----------------------------------------------------------------------

def _disagree_heatmap(matrix: List[List[int]], labels: List[str],
                      decisions: int) -> str:
    """Policy×policy disagreement counts on the sequential blue ramp."""
    n = len(matrix)
    peak = max((matrix[a][b] for a in range(n) for b in range(n)
                if a != b), default=0)
    cell, gap, left, top = 76, 2, 130, 26
    width = left + n * cell + 8
    height = top + n * cell + 8
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="policy disagreement heatmap">']
    for c in range(n):
        x = left + c * cell + cell // 2
        parts.append(f'<text x="{x}" y="{top - 8}" text-anchor="middle" '
                     f'fill="var(--muted)">{escape(labels[c])}</text>')
    for a in range(n):
        y = top + a * cell
        parts.append(f'<text x="{left - 8}" y="{y + cell // 2 + 4}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"{escape(labels[a])}</text>")
        for b in range(n):
            x = left + b * cell
            value = matrix[a][b]
            if a == b or peak == 0 or value == 0:
                fill = "var(--surface-1)"
                ink = "var(--muted)"
            else:
                step = min(len(_RAMP) - 1,
                           int((value / peak) * (len(_RAMP) - 1) + 0.5))
                fill = _RAMP[step]
                ink = "#ffffff" if step >= 6 else "#0b0b0b"
            share = f" ({value / decisions:.1%})" if decisions else ""
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell - gap}" '
                f'height="{cell - gap}" rx="3" fill="{fill}" '
                f'stroke="var(--grid)" stroke-width="1">'
                f"<title>{escape(labels[a])} vs {escape(labels[b])}: "
                f"{value} grants chosen differently{share}</title></rect>"
            )
            parts.append(
                f'<text x="{x + (cell - gap) // 2}" '
                f'y="{y + cell // 2 + 3}" text-anchor="middle" '
                f'fill="{ink}">{_fmt(value)}</text>'
            )
    parts.append("</svg>")
    table = _details_table(
        ["policy \\ policy"] + labels,
        [[labels[a]] + [matrix[a][b] for b in range(n)]
         for a in range(n)],
    )
    return ("<h2>Policy disagreement — grants chosen differently "
            f"(of {decisions} decisions)</h2>" + "".join(parts) + table)


def _margin_histograms(margins: Dict) -> str:
    """Per-component winner-margin histograms as small multiples.

    Buckets are power-of-two: bucket ``k`` covers deltas in
    ``[2^(k-1), 2^k)`` (bucket 0 is ``(0, 1)``).
    """
    hist = margins.get("hist") or {}
    decided = margins.get("decided_by") or {}
    if not hist:
        return ("<h2>Winner margin by deciding component</h2>"
                '<p class="sub">(every decision was a tie or a '
                "single-candidate queue)</p>")
    facets, rows = [], []
    h = 90
    for slot, component in enumerate(
            sorted(hist, key=lambda c: -decided.get(c, 0))):
        buckets = {int(k): v for k, v in hist[component].items()}
        lo, hi = min(buckets), max(buckets)
        span = list(range(lo, hi + 1))
        bar = max(10, min(34, 260 // len(span)))
        peak = max(buckets.values()) or 1
        bars = []
        for i, b in enumerate(span):
            count = buckets.get(b, 0)
            label = "(0,1)" if b == 0 else f"[2^{b - 1},2^{b})"
            rows.append([component, label, count])
            if not count:
                continue
            bh = int((count / peak) * (h - 4))
            bars.append(
                f'<rect x="{i * bar}" y="{h - bh}" width="{bar - 2}" '
                f'height="{max(2, bh)}" rx="2" '
                f'fill="{_series_color(slot)}">'
                f"<title>{escape(component)} margin {label}: {count} "
                f"decisions</title></rect>"
            )
        w = len(span) * bar
        facets.append(
            f'<div class="facet"><div class="fl">{escape(component)} '
            f"· decided {_fmt(decided.get(component, 0))}</div>"
            f'<svg width="{max(w, 60)}" height="{h + 16}">'
            f'{"".join(bars)}'
            f'<line x1="0" y1="{h}" x2="{max(w, 60)}" y2="{h}" '
            f'stroke="var(--baseline)"/>'
            f'<text x="0" y="{h + 13}" fill="var(--muted)">'
            f"2^{lo - 1}</text>"
            f'<text x="{max(w, 60)}" y="{h + 13}" text-anchor="end" '
            f'fill="var(--muted)">2^{hi}</text>'
            f"</svg></div>"
        )
    table = _details_table(["component", "margin bucket", "decisions"],
                           rows, left_cols=2)
    extra = (f" · queue-order ties {_fmt(margins.get('ties', 0))}"
             f" · single-candidate "
             f"{_fmt(margins.get('only_candidate', 0))}")
    return ("<h2>Winner margin by deciding component</h2>"
            f'<div class="facets">{"".join(facets)}</div>'
            f'<p class="sub">power-of-two margin buckets{extra}</p>'
            + table)


def _grant_share_bars(snapshot: Dict) -> str:
    """Per-thread actual grants vs each shadow's counterfactual grants."""
    actual = snapshot.get("actual_granted") or []
    shadows = snapshot.get("shadows") or []
    n = len(actual)
    series = [(str(snapshot.get("primary", "actual")), actual)]
    series += [(s["label"], s["granted"]) for s in shadows]
    peak = max((v for _, g in series for v in g), default=0) or 1
    w, bh, gap, left = 440, 12, 14, 120
    per = bh * len(series) + 2 * (len(series) - 1)
    height = n * (per + gap) + 4
    parts = [f'<svg width="{w + left + 60}" height="{height}" role="img" '
             f'aria-label="actual versus counterfactual grants">']
    rows = []
    for tid in range(n):
        y0 = tid * (per + gap)
        parts.append(f'<text x="{left - 8}" y="{y0 + per // 2 + 4}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"t{tid}</text>")
        for slot, (label, grants) in enumerate(series):
            y = y0 + slot * (bh + 2)
            bw = int((grants[tid] / peak) * w)
            parts.append(
                f'<rect x="{left}" y="{y}" width="{max(2, bw)}" '
                f'height="{bh}" rx="3" fill="{_series_color(slot)}">'
                f"<title>t{tid} under {escape(label)}: "
                f"{grants[tid]} grants</title></rect>"
            )
        rows.append([f"t{tid}"] + [grants[tid] for _, grants in series])
    parts.append("</svg>")
    legend = _legend([(label, _series_color(slot))
                      for slot, (label, _) in enumerate(series)])
    table = _details_table(["thread"] + [label for label, _ in series],
                           rows)
    return ("<h2>Grants per thread — actual vs counterfactual</h2>"
            + "".join(parts) + legend + table)


def _flip_timeline(clusters: Dict, num_threads: int) -> str:
    """Quantum-by-quantum cluster membership with flip highlights."""
    timeline = clusters.get("timeline") or []
    if not timeline or not num_threads:
        return ""
    stride = max(1, len(timeline) // 160)
    picked = timeline[::stride]
    cw = max(4, 680 // max(1, len(picked)))
    ch, gap, left = 14, 3, 60
    width = left + len(picked) * cw + 10
    height = num_threads * (ch + gap) + 22
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="cluster flip timeline">']
    for tid in range(num_threads):
        y = tid * (ch + gap)
        parts.append(f'<text x="{left - 8}" y="{y + ch - 2}" '
                     f'text-anchor="end" fill="var(--muted)">'
                     f"t{tid}</text>")
        for i, entry in enumerate(picked):
            latency = tid in entry["latency"]
            flipped = tid in entry["flips"]
            fill = "var(--s1)" if latency else "var(--s2)"
            cluster = "latency" if latency else "bandwidth"
            stroke = (' stroke="var(--critical)" stroke-width="2"'
                      if flipped else "")
            parts.append(
                f'<rect x="{left + i * cw}" y="{y}" width="{cw - 1}" '
                f'height="{ch}" fill="{fill}"{stroke}>'
                f"<title>t{tid} @ quantum {entry['quantum']} "
                f"(cycle {entry['now']}): {cluster}"
                f"{' — flipped' if flipped else ''}</title></rect>"
            )
    first, last = picked[0], picked[-1]
    parts.append(f'<text x="{left}" y="{height - 6}" '
                 f'fill="var(--muted)">quantum {first["quantum"]}</text>')
    parts.append(f'<text x="{width - 10}" y="{height - 6}" '
                 f'text-anchor="end" fill="var(--muted)">'
                 f'quantum {last["quantum"]}</text>')
    parts.append("</svg>")
    legend = _legend([("latency cluster", "var(--s1)"),
                      ("bandwidth cluster", "var(--s2)"),
                      ("flip", "var(--critical)")])
    return (f"<h2>Cluster flips per quantum "
            f"(source: {escape(str(clusters.get('source')))}, "
            f"{clusters.get('flips_total', 0)} flips)</h2>"
            + "".join(parts) + legend)


def render_explain_dashboard(snapshot: Dict,
                             title: str = "decision forensics") -> str:
    """An explain-collector snapshot as a self-contained no-JS page.

    ``snapshot`` is the dict built by
    :meth:`repro.explain.ExplainCollector.snapshot`.
    """
    decisions = snapshot.get("decisions", 0)
    shadows = snapshot.get("shadows") or []
    margins = snapshot.get("margins") or {}
    starvation = snapshot.get("starvation") or {}
    disagreement = snapshot.get("disagreement") or {}
    disagreed_any = sum(s["disagreed"] for s in shadows)
    tiles = [
        ("primary", str(snapshot.get("primary", "-"))),
        ("decisions", _fmt(decisions)),
        ("shadows", _fmt(len(shadows))),
        ("shadow disagreements", _fmt(disagreed_any)),
        ("queue-order ties", _fmt(margins.get("ties", 0))),
        ("starvation events",
         _fmt(len(starvation.get("events") or []))),
    ]
    body = [_tiles(tiles)]
    matrix = disagreement.get("matrix") or []
    labels = disagreement.get("labels") or []
    if len(matrix) > 1:
        body.append('<div class="card">'
                    + _disagree_heatmap(matrix, labels, decisions)
                    + "</div>")
    body.append(f'<div class="card">{_margin_histograms(margins)}</div>')
    if snapshot.get("actual_granted"):
        body.append(f'<div class="card">{_grant_share_bars(snapshot)}'
                    "</div>")
    strip = _flip_timeline(snapshot.get("clusters") or {},
                           len(snapshot.get("actual_granted") or []))
    if strip:
        body.append(f'<div class="card">{strip}</div>')
    events = starvation.get("events") or []
    if events:
        rows = [[f"t{e['tid']}", e["now"], e["age"], e["pending"]]
                for e in events[:50]]
        body.append(
            '<div class="card"><h2>Starvation watch — threshold '
            f'crossings (age &gt; {_fmt(starvation.get("threshold"))} '
            "cycles)</h2>"
            + _details_table(["thread", "cycle", "age", "pending"], rows,
                             summary=f"{len(events)} event(s)")
            + "</div>")
    return _page(
        f"repro.explain — {title}",
        f"{decisions} decisions · {len(shadows)} shadow policies · "
        f"records kept {snapshot.get('records_kept', 0)}",
        "".join(body),
    )


def write_dashboard(html: str, path) -> str:
    """Write a rendered dashboard to ``path`` (UTF-8); returns the path."""
    from pathlib import Path

    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html, encoding="utf-8")
    return str(out)
