"""Collect dashboard-ready observations from runs and campaign stores.

Two entry points, mirroring the dashboard's two pages:

* :func:`observe_run` — execute one workload under one scheduler with
  full observability (spans + epoch sampler) and fold the result into a
  :class:`RunObservation`: reconciled attribution report, true
  alone-run slowdowns, paper metrics, epoch samples for the cluster
  timeline.
* :func:`observe_campaign` — read a :class:`repro.campaign` store and
  gather every point's metrics per scheduler plus the failure list into
  a :class:`CampaignObservation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import SimConfig
from repro.obs.attribution import AttributionReport, attribution_report


@dataclass
class RunObservation:
    """Everything the single-run dashboard renders."""

    workload: str
    scheduler: str
    seed: int
    cycles: int
    benchmarks: List[str]
    report: AttributionReport
    #: epoch samples (cluster timeline source); may be empty
    samples: list
    #: paper metrics {"ws", "ms", "hs"} when alone runs were computed
    metrics: Optional[Dict[str, float]] = None
    total_requests: int = 0
    row_hit_rate: float = 0.0


@dataclass
class CampaignObservation:
    """Everything the campaign dashboard renders."""

    #: scheduler name -> list of point dicts
    #: ({workload, seed, tag, ws, ms, hs}), sorted by (workload, seed)
    schedulers: Dict[str, List[dict]] = field(default_factory=dict)
    #: failed points: {workload, scheduler, seed, error, attempts}
    failures: List[dict] = field(default_factory=list)
    #: campaign summary record meta, when the store has one
    summary: Optional[dict] = None


def observe_run(
    workload,
    scheduler_name: str,
    config: Optional[SimConfig] = None,
    seed: int = 0,
    params=None,
    with_alone: bool = True,
    epoch_cycles: Optional[int] = None,
) -> RunObservation:
    """Run ``workload`` under full observability and fold the results.

    ``with_alone`` additionally computes (memoised) alone-run IPCs so
    the observation carries true slowdowns and the paper's metrics;
    disable it for quick structural looks at big workloads.
    """
    from repro.metrics import (
        harmonic_speedup,
        maximum_slowdown,
        weighted_speedup,
    )
    from repro.schedulers import make_scheduler
    from repro.sim import System
    from repro.telemetry import Telemetry

    config = config or SimConfig()
    telemetry = Telemetry.observing(epoch_cycles=epoch_cycles)
    scheduler = make_scheduler(scheduler_name, params)
    system = System(workload, scheduler, config, seed=seed,
                    telemetry=telemetry)
    result = system.run()

    true_slowdowns = None
    metrics = None
    if with_alone:
        from repro.experiments.runner import alone_ipcs

        alones = alone_ipcs(workload, config, seed)
        shared = result.ipcs
        true_slowdowns = [
            (alone / ipc) if ipc > 0 else float("inf")
            for alone, ipc in zip(alones, shared)
        ]
        metrics = {
            "ws": weighted_speedup(alones, shared),
            "ms": maximum_slowdown(alones, shared),
            "hs": harmonic_speedup(alones, shared),
        }

    # STFM's private shadow, when present, makes the reconciliation
    # cross-check the paper's accounting exactly
    stfm_totals = getattr(scheduler, "_t_interference", None)
    report = attribution_report(
        telemetry.spans,
        stfm_totals=stfm_totals,
        true_slowdowns=true_slowdowns,
    )
    total = result.row_hits + result.row_conflicts + result.row_closed
    return RunObservation(
        workload=workload.name,
        scheduler=result.scheduler,
        seed=seed,
        cycles=result.cycles,
        benchmarks=[t.benchmark for t in result.threads],
        report=report,
        samples=list(telemetry.samples),
        metrics=metrics,
        total_requests=result.total_requests,
        row_hit_rate=(result.row_hits / total) if total else 0.0,
    )


def observe_campaign(store) -> CampaignObservation:
    """Gather a campaign store's points and failures per scheduler.

    ``store`` is a :class:`repro.campaign.CampaignStore` or a path to
    one.
    """
    from repro.campaign.store import (
        CampaignStore,
        KIND_FAILURE,
        KIND_POINT,
        KIND_SUMMARY,
    )

    if not hasattr(store, "records"):
        store = CampaignStore(store)

    obs = CampaignObservation()
    for record in store.records(KIND_POINT):
        meta = record.get("meta", {})
        metrics = record.get("payload", {}).get("metrics", {})
        point = {
            "workload": meta.get("workload", "?"),
            "seed": meta.get("seed", 0),
            "tag": meta.get("tag"),
            "ws": metrics.get("ws"),
            "ms": metrics.get("ms"),
            "hs": metrics.get("hs"),
        }
        scheduler = meta.get("scheduler", "?")
        obs.schedulers.setdefault(scheduler, []).append(point)
    for points in obs.schedulers.values():
        points.sort(key=lambda p: (str(p["workload"]), p["seed"]))
    for record in store.records(KIND_FAILURE):
        meta = record.get("meta", {})
        payload = record.get("payload", {})
        obs.failures.append({
            "workload": meta.get("workload", "?"),
            "scheduler": meta.get("scheduler", "?"),
            "seed": meta.get("seed", 0),
            "error": payload.get("error", ""),
            "attempts": payload.get("attempts", 0),
        })
    for record in store.records(KIND_SUMMARY):
        obs.summary = record.get("meta", {})
    return obs


def scheduler_means(obs: CampaignObservation) -> List[dict]:
    """Per-scheduler mean metrics across the campaign's points."""
    rows = []
    for scheduler in sorted(obs.schedulers):
        points = [p for p in obs.schedulers[scheduler]
                  if p["ws"] is not None]
        if not points:
            continue
        n = len(points)
        rows.append({
            "scheduler": scheduler,
            "points": n,
            "ws": sum(p["ws"] for p in points) / n,
            "ms": sum(p["ms"] for p in points) / n,
            "hs": sum(p["hs"] for p in points) / n,
        })
    return rows
