"""repro.obs — request-lifecycle spans, interference attribution, dashboards.

The observability layer over :mod:`repro.telemetry`'s raw events:

* :mod:`repro.obs.spans` — decompose every request's latency into
  cause-tagged, culprit-tagged wait intervals, generalising STFM's
  interference accounting into a scheduler-independent mechanism;
* :mod:`repro.obs.attribution` — fold spans into a T×T
  ``delay[victim][culprit]`` matrix with per-thread cause breakdowns
  and attribution-derived slowdown estimates;
* :mod:`repro.obs.aggregate` — collect dashboard-ready data from a
  single run or a whole campaign store;
* :mod:`repro.obs.dashboard` — render self-contained HTML (inline SVG,
  no JS dependencies) for either.

Typical use::

    from repro.telemetry import Telemetry
    from repro.obs import attribution_report

    telemetry = Telemetry.observing()
    system = System(workload, make_scheduler("tcm"), cfg,
                    telemetry=telemetry)
    result = system.run()
    report = attribution_report(telemetry.spans)
"""

from repro.obs.spans import (
    CAUSE_BUS,
    CAUSE_QUEUE,
    CAUSE_ROW,
    CAUSE_SERVICE,
    CAUSES,
    RequestSpan,
    SpanCollector,
    WaitInterval,
    attach_spans,
    ensure_accounting,
)
from repro.obs.attribution import (
    AttributionReport,
    attribution_report,
    reconcile,
)

__all__ = [
    "AttributionReport",
    "CAUSE_BUS",
    "CAUSE_QUEUE",
    "CAUSE_ROW",
    "CAUSE_SERVICE",
    "CAUSES",
    "RequestSpan",
    "SpanCollector",
    "WaitInterval",
    "attach_spans",
    "attribution_report",
    "ensure_accounting",
    "reconcile",
]
