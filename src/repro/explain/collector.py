"""The explain collector: per-grant forensics behind one ``is None``.

``ExplainCollector`` binds to a :class:`~repro.sim.system.System` as
``system._explain`` — the same observer-seam idiom as spans, the
divergence probe and the profiler: a detached run pays exactly one
``is None`` branch per seam and is bit-identical to a run before this
module existed.  Attached, the collector:

* captures a :class:`~repro.explain.records.DecisionRecord` for every
  grant (candidate set, per-candidate priority decomposition, winner
  margin, tie-break provenance) — at the single seam inside
  ``System._try_schedule`` both engine backends share, so records are
  backend-identical by construction;
* drives any number of :class:`~repro.explain.shadow.ShadowPolicy`
  instances through the same arrivals / grants / completions / quantum
  snapshots / timer ticks, asking each at every grant which request it
  would have granted, and aggregates policy×policy disagreement
  matrices plus per-thread would-have-been-granted deltas;
* keeps a starvation watch — oldest-pending-age per thread — emitting
  ``starvation`` threshold events on the run's tracer;
* tracks the cluster-flip timeline of the first clustering policy in
  sight (the primary TCM, else a TCM shadow).
"""

from __future__ import annotations

import math
from collections import Counter, deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.explain.records import (
    CandidateRecord,
    DecisionRecord,
    Margin,
    TIE_ONLY,
    TIE_PRIORITY,
    TIE_QUEUE_ORDER,
    margin_of,
)
from repro.explain.shadow import ShadowPolicy, make_shadow

#: Default pending-age (cycles) beyond which a thread counts as starving.
STARVATION_THRESHOLD = 100_000

#: Default decision-record retention (ring buffer); ``None`` keeps all.
KEEP_RECORDS = 4096


def _component_names(scheduler, width: int) -> Tuple[str, ...]:
    """Slot names for a priority tuple of ``width`` components.

    The policy's :data:`~repro.schedulers.base.Scheduler.\
    PRIORITY_COMPONENTS` when it matches the tuple width, positional
    ``slotN`` fallbacks otherwise (matching the base
    ``explain_components`` contract).
    """
    names = scheduler.PRIORITY_COMPONENTS
    if len(names) == width:
        return tuple(names)
    return tuple(f"slot{i}" for i in range(width))


def _bucket(delta: float) -> int:
    """Power-of-two histogram bucket for a positive margin delta."""
    if delta <= 0:
        return -1
    return max(0, int(math.floor(math.log2(delta))) + 1) if delta < 1 \
        else int(math.floor(math.log2(delta))) + 1


class ExplainCollector:
    """Per-grant decision forensics and shadow-policy counterfactuals."""

    def __init__(
        self,
        shadows: Sequence = (),
        keep_records: Optional[int] = KEEP_RECORDS,
        starvation_threshold: int = STARVATION_THRESHOLD,
    ):
        self._shadow_specs = tuple(shadows)
        self.keep_records = keep_records
        self.starvation_threshold = starvation_threshold
        self.system = None
        self.shadows: List[ShadowPolicy] = []
        self._shadow_arrival: List = []
        self._shadow_scheduled: List = []
        self._shadow_complete: List = []
        self.labels: List[str] = []
        self.decisions_total = 0
        self.last_record: Optional[DecisionRecord] = None
        self.records = deque(maxlen=keep_records) \
            if keep_records is not None else []
        # aggregates (sized at attach)
        self.disagree: List[List[int]] = []
        self.actual_granted: List[int] = []
        self.decided_by: Counter = Counter()
        self.margin_hist: Dict[str, Counter] = {}
        self.ties = 0
        self.only_candidate = 0
        # starvation watch
        self.starvation_events: List[dict] = []
        self.max_pending_age: List[int] = []
        self._pending: List[deque] = []
        self._granted_ids: set = set()
        self._starving: List[bool] = []
        self._starvation_checked_at = -1
        # the scan runs at most once per stride of cycles: crossings are
        # detected within ~0.4% of the threshold, not per grant
        self._starvation_stride = max(1, starvation_threshold // 256)
        # candidate component names, cached per priority-tuple length
        self._prio_names: Optional[Tuple[str, ...]] = None
        # cluster-flip timeline
        self.cluster_source: Optional[str] = None
        self.cluster_timeline: List[dict] = []
        self._cluster_prev: Optional[frozenset] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self, system) -> "ExplainCollector":
        """Bind to ``system`` before its run; builds and attaches shadows."""
        if getattr(system, "_explain", None) is not None:
            raise RuntimeError("system already carries an explain collector")
        if getattr(system, "now", 0) or getattr(system, "_started", False):
            raise RuntimeError(
                "attach_explain must be called before system.run()"
            )
        self.system = system
        n = system.workload.num_threads
        specs = self._shadow_specs
        if any(_spec_key(spec) == "stfm" for spec in specs):
            # shadow STFM reads the shared interference accounting; make
            # sure it exists before the shadow's on_attach looks for it
            from repro.obs.spans import ensure_accounting

            ensure_accounting(system)
        self.shadows = [
            make_shadow(system, spec, index)
            for index, spec in enumerate(specs)
        ]
        # bound lifecycle hooks, hoisted once: the relay loops below run
        # per arrival / grant / completion
        self._shadow_arrival = [
            s.scheduler.on_request_arrival for s in self.shadows
        ]
        self._shadow_scheduled = [
            s.scheduler.on_request_scheduled for s in self.shadows
        ]
        self._shadow_complete = [
            s.scheduler.on_request_complete for s in self.shadows
        ]
        self.labels = [system.scheduler.name] + [
            s.label for s in self.shadows
        ]
        k = len(self.labels)
        self.disagree = [[0] * k for _ in range(k)]
        self.actual_granted = [0] * n
        self.max_pending_age = [0] * n
        self._pending = [deque() for _ in range(n)]
        self._starving = [False] * n
        system._explain = self
        return self

    def detach(self) -> None:
        """Unbind from the system (shadow timers still queued become
        harmless: tuple payloads fall through to the primary's
        ``on_timer``, which ignores keys that are not its own)."""
        if self.system is not None and \
                getattr(self.system, "_explain", None) is self:
            self.system._explain = None

    def prof_points(self) -> List[Tuple[str, str]]:
        """Hooks the self-profiler wraps when both layers are attached."""
        return [
            ("obs.explain.arrival", "on_arrival"),
            ("obs.explain.decision", "on_decision"),
            ("obs.explain.grant", "on_grant"),
            ("obs.explain.complete", "on_complete"),
            ("obs.explain.quantum", "on_quantum"),
            ("obs.explain.timer", "on_shadow_timer"),
        ]

    # ------------------------------------------------------------------
    # seam hooks (called by System; nothing here runs detached)
    # ------------------------------------------------------------------

    def on_arrival(self, request, now: int) -> None:
        for hook in self._shadow_arrival:
            hook(request, now)
        self._pending[request.thread_id].append(
            (request.request_id, request.arrival)
        )

    def on_decision(self, channel, bank_id: int, winner, now: int) -> None:
        """Capture the decision; queue still holds the winner."""
        queue = channel.queues[bank_id]
        open_row = channel.banks[bank_id].open_row
        scheduler = self.system.scheduler
        priority = scheduler.priority
        names = self._prio_names
        candidates = []
        append = candidates.append
        winner_key = None
        best_key = None     # runner-up: maximal key among non-winners
        best_req = None
        # Per-candidate cost is the hot part of the attached budget:
        # records carry the key plus the slot-name vocabulary (the
        # components dict is a lazy property).  Richer per-policy
        # detail (ATLAS attained service, STFM slowdown, TCM cluster)
        # stays available through ``scheduler.explain_components`` —
        # ``priority`` is pure, so re-deriving is exact.
        for request in queue:
            row_hit = request.row == open_row
            prio = priority(request, row_hit, now)
            key = (not request.is_prefetch,) + prio
            if names is None or len(names) != len(prio):
                names = self._prio_names = _component_names(
                    scheduler, len(prio)
                )
            append(CandidateRecord(
                request.request_id,
                request.thread_id,
                request.arrival,
                request.row,
                row_hit,
                request.is_prefetch,
                key,
                names,
            ))
            if request is winner:
                winner_key = key
            elif best_key is None or key > best_key:
                best_key = key
                best_req = request

        index = self.decisions_total
        self.decisions_total += 1
        self.actual_granted[winner.thread_id] += 1

        if best_key is None:
            tie_break, tied, margin = TIE_ONLY, 1, None
            self.only_candidate += 1
        else:
            component, delta = margin_of(
                winner_key, best_key, scheduler.PRIORITY_COMPONENTS
            )
            margin = Margin(
                component, delta, best_req.request_id, best_req.thread_id
            )
            if component is None:
                tie_break = TIE_QUEUE_ORDER
                self.ties += 1
            else:
                tie_break = TIE_PRIORITY
                self.decided_by[component] += 1
                hist = self.margin_hist.get(component)
                if hist is None:
                    hist = self.margin_hist[component] = Counter()
                hist[_bucket(delta)] += 1
            # a winner strictly above the runner-up (the maximal other
            # key) is uniquely maximal, so the count is only scanned on
            # exact ties and on non-priority-maximal select overrides
            tied = 1 if delta > 0 else \
                sum(1 for c in candidates if c.key == winner_key)

        # shadow counterfactuals: which request would each policy grant?
        choices = [winner]
        shadow_choices: Dict[str, Tuple[int, int]] = {}
        disagreed: List[str] = []
        for shadow in self.shadows:
            picked = shadow.scheduler.select(channel, bank_id, now)
            choices.append(picked)
            shadow_choices[shadow.label] = (
                picked.request_id, picked.thread_id
            )
            shadow.granted[picked.thread_id] += 1
            if picked is winner:
                shadow.agreed += 1
            else:
                shadow.redirected_to[winner.thread_id] += 1
                shadow.redirected_from[picked.thread_id] += 1
                disagreed.append(shadow.label)
        if disagreed:
            # a pair can only differ when at least one shadow left the
            # winner, so the k x k scan is skipped on full agreement
            k = len(choices)
            disagree = self.disagree
            for i in range(k):
                for j in range(i + 1, k):
                    if choices[i] is not choices[j]:
                        disagree[i][j] += 1
                        disagree[j][i] += 1

        record = DecisionRecord(
            index,
            now,
            channel.channel_id,
            bank_id,
            winner.request_id,
            winner.thread_id,
            tie_break,
            tied,
            margin,
            tuple(candidates),
            shadow_choices,
        )
        self.last_record = record
        self.records.append(record)

        tracer = self.system._tracer
        if tracer is not None:
            margin_component = (
                margin.component if margin is not None
                and margin.component is not None else ""
            )
            tracer.emit(
                "explain", now,
                ch=channel.channel_id, bank=bank_id,
                tid=winner.thread_id, queued=len(candidates),
                tie=tie_break, tied=tied,
                component=margin_component,
                delta=margin.delta if margin is not None else 0.0,
                disagree=disagreed,
            )

    def on_grant(self, request, waiting, busy_cycles: int, now: int) -> None:
        for hook in self._shadow_scheduled:
            hook(request, waiting, busy_cycles, now)
        self._granted_ids.add(request.request_id)
        if now - self._starvation_checked_at >= self._starvation_stride:
            self._check_starvation(now)

    def on_complete(self, request, now: int) -> None:
        for hook in self._shadow_complete:
            hook(request, now)

    def on_quantum(self, snapshot, now: int) -> None:
        for shadow in self.shadows:
            shadow.scheduler.on_quantum(snapshot, now)
        self._track_clusters(snapshot, now)

    def on_shadow_timer(self, now: int, payload: Tuple[int, str]) -> None:
        index, key = payload
        self.shadows[index].scheduler.on_timer(now, key)

    # ------------------------------------------------------------------
    # starvation watch
    # ------------------------------------------------------------------

    def _check_starvation(self, now: int) -> None:
        # stride-throttled: crossings are detected within ~0.1% of the
        # threshold, and the stride counts simulated cycles, so the
        # events stay deterministic and backend-identical
        if now - self._starvation_checked_at < self._starvation_stride:
            return
        self._starvation_checked_at = now
        threshold = self.starvation_threshold
        granted = self._granted_ids
        tracer = self.system._tracer
        for tid, pending in enumerate(self._pending):
            while pending and pending[0][0] in granted:
                granted.discard(pending.popleft()[0])
            if not pending:
                self._starving[tid] = False
                continue
            age = now - pending[0][1]
            if age > self.max_pending_age[tid]:
                self.max_pending_age[tid] = age
            if age > threshold:
                if not self._starving[tid]:
                    self._starving[tid] = True
                    event = {
                        "now": now, "tid": tid, "age": age,
                        "pending": len(pending),
                    }
                    self.starvation_events.append(event)
                    if tracer is not None:
                        tracer.emit(
                            "starvation", now,
                            tid=tid, age=age, pending=len(pending),
                        )
            else:
                self._starving[tid] = False

    # ------------------------------------------------------------------
    # cluster-flip timeline
    # ------------------------------------------------------------------

    def _track_clusters(self, snapshot, now: int) -> None:
        source, clustering = self._clustering_source()
        if clustering is None:
            return
        self.cluster_source = source
        latency = frozenset(clustering.latency_cluster)
        prev = self._cluster_prev
        flips = sorted(latency ^ prev) if prev is not None else []
        self._cluster_prev = latency
        self.cluster_timeline.append({
            "now": now,
            "quantum": snapshot.quantum_index,
            "latency": sorted(latency),
            "flips": flips,
        })

    def _clustering_source(self):
        scheduler = self.system.scheduler
        clustering = getattr(scheduler, "clustering", None)
        if clustering is not None:
            return scheduler.name, clustering
        for shadow in self.shadows:
            clustering = getattr(shadow.scheduler, "clustering", None)
            if clustering is not None:
                return shadow.label, clustering
        return None, None

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able summary of everything the collector aggregated."""
        decisions = self.decisions_total
        return {
            "primary": self.labels[0] if self.labels else None,
            "policies": list(self.labels),
            "decisions": decisions,
            "disagreement": {
                "labels": list(self.labels),
                "matrix": [list(row) for row in self.disagree],
            },
            "shadows": [
                {
                    "label": s.label,
                    "policy": s.key,
                    "agreed": s.agreed,
                    "disagreed": decisions - s.agreed,
                    "granted": list(s.granted),
                    "redirected_to": list(s.redirected_to),
                    "redirected_from": list(s.redirected_from),
                }
                for s in self.shadows
            ],
            "actual_granted": list(self.actual_granted),
            "margins": {
                "decided_by": dict(self.decided_by),
                "hist": {
                    component: {str(b): c for b, c in sorted(hist.items())}
                    for component, hist in self.margin_hist.items()
                },
                "ties": self.ties,
                "only_candidate": self.only_candidate,
            },
            "starvation": {
                "threshold": self.starvation_threshold,
                "events": list(self.starvation_events),
                "max_age": list(self.max_pending_age),
            },
            "clusters": {
                "source": self.cluster_source,
                "timeline": list(self.cluster_timeline),
                "flips_total": sum(
                    len(e["flips"]) for e in self.cluster_timeline
                ),
            },
            "records_kept": len(self.records),
        }


def _spec_key(spec) -> str:
    from repro.explain.shadow import canonical_policy_key

    name = spec[0] if isinstance(spec, tuple) else spec
    return canonical_policy_key(name)


def attach_explain(
    system,
    shadows: Sequence = (),
    keep_records: Optional[int] = KEEP_RECORDS,
    starvation_threshold: int = STARVATION_THRESHOLD,
) -> ExplainCollector:
    """Bind an :class:`ExplainCollector` to ``system`` before its run."""
    collector = ExplainCollector(
        shadows=shadows,
        keep_records=keep_records,
        starvation_threshold=starvation_threshold,
    )
    return collector.attach(system)


def explain_run(
    workload,
    scheduler_name: str,
    config=None,
    seed: int = 0,
    params=None,
    shadows: Sequence = (),
    cycles: Optional[int] = None,
    telemetry=None,
    keep_records: Optional[int] = KEEP_RECORDS,
    starvation_threshold: int = STARVATION_THRESHOLD,
):
    """Run ``workload`` under ``scheduler_name`` with explain attached.

    Returns ``(RunResult, ExplainCollector)``.
    """
    from repro.schedulers.registry import make_scheduler
    from repro.sim.system import System

    system = System(
        workload,
        make_scheduler(scheduler_name, params),
        config=config,
        seed=seed,
        telemetry=telemetry,
    )
    collector = attach_explain(
        system,
        shadows=shadows,
        keep_records=keep_records,
        starvation_threshold=starvation_threshold,
    )
    result = system.run(cycles)
    return result, collector
