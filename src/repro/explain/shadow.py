"""Shadow policies: full scheduler instances riding along a run.

A shadow is a real registry scheduler attached to a
:class:`ShadowSystemView` — a restricted proxy of the live system that
forwards everything a policy is allowed to read (workload, config,
seed, channels, monitor, prefetchers, the shared interference
accounting) while cutting everything a policy could perturb: metrics
registration, tracer emission, and timers (rerouted through tuple
payloads so the explain layer can dispatch them to the right shadow).

Shadows are fed the *actual* run's arrivals, grants, completions,
quantum snapshots and timer ticks — their internal state evolves
exactly as if they were the primary policy watching this run — and are
asked at every grant which request *they* would have picked.  A shadow
of the same policy as the primary therefore agrees with 100% of grants
(the self-shadow identity the test suite pins); a different policy's
disagreements are the counterfactual signal.

PAR-BS needs special casing: its batch formation marks real request
objects, which would leak shadow state into the primary's decisions.
:class:`ShadowPARBS` keeps the marks in a private ``request_id`` set
instead, leaving the shared requests untouched.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.dram.request import MemoryRequest
from repro.schedulers.base import Scheduler
from repro.schedulers.parbs import PARBSScheduler
from repro.schedulers.registry import make_scheduler


class ShadowSystemView:
    """What a shadow scheduler is allowed to see of the live system.

    Attribute surface is deliberately explicit (no blanket
    ``__getattr__``): a policy reading something not listed here fails
    loudly instead of silently coupling shadows to the primary run.
    """

    __slots__ = ("_system", "_index")

    #: shadows never register metrics providers (the registry is the
    #: primary policy's namespace) ...
    metrics = None
    #: ... and never emit tracer events (``Scheduler.trace`` reads this)
    _tracer = None

    def __init__(self, system, index: int):
        self._system = system
        self._index = index

    @property
    def workload(self):
        return self._system.workload

    @property
    def config(self):
        return self._system.config

    @property
    def seed(self):
        return self._system.seed

    @property
    def channels(self):
        return self._system.channels

    @property
    def monitor(self):
        return self._system.monitor

    @property
    def prefetchers(self):
        return self._system.prefetchers

    @property
    def now(self):
        return self._system.now

    @property
    def _spans(self):
        # live forward: STFM shadows read the same shared interference
        # accounting the primary does (attach_explain ensures it exists
        # before any STFM shadow attaches)
        return self._system._spans

    def schedule_timer(self, time: int, key: str) -> None:
        """Shadow timers ride the real event queue, payload-tagged.

        The tuple payload routes the firing to this shadow's
        ``on_timer`` (see the ``_EV_TIMER`` dispatch in both observed
        loops) at exactly the position a primary timer would occupy,
        so shadow state updates stay ordered identically relative to
        same-cycle grants.
        """
        self._system.schedule_timer(time, (self._index, key))


class ShadowPARBS(PARBSScheduler):
    """PAR-BS whose batch marks live in a side set, not on requests."""

    def __init__(self, params=None):
        super().__init__(params)
        self._shadow_marked: Set[int] = set()

    def _form_batch(self) -> None:
        # Parent's walk, with ``request.marked = True`` replaced by the
        # side set — shared request objects stay untouched.
        cap = self.params.batch_cap
        per_thread_bank: Dict[Tuple[int, int, int], List[MemoryRequest]]
        per_thread_bank = defaultdict(list)
        for channel in self.system.channels:
            for bank_id, queue in enumerate(channel.queues):
                for request in queue:
                    key = (request.thread_id, channel.channel_id, bank_id)
                    per_thread_bank[key].append(request)
        marked_counts: Dict[int, Dict[Tuple[int, int], int]] = defaultdict(dict)
        total_marked = 0
        for (tid, ch, bank), requests in per_thread_bank.items():
            requests.sort(key=lambda r: r.arrival)
            chosen = requests[:cap]
            for request in chosen:
                self._shadow_marked.add(request.request_id)
            if chosen:
                marked_counts[tid][(ch, bank)] = len(chosen)
                total_marked += len(chosen)
        self._marked_remaining = total_marked
        if total_marked:
            self.batches_formed += 1
        self._compute_ranking(marked_counts)

    def on_request_scheduled(
        self,
        request: MemoryRequest,
        waiting: List[MemoryRequest],
        busy_cycles: int,
        now: int,
    ) -> None:
        if request.request_id in self._shadow_marked:
            self._shadow_marked.discard(request.request_id)
            self._marked_remaining -= 1
            if self._marked_remaining == 0:
                self._form_batch()

    def priority(
        self, request: MemoryRequest, row_hit: bool, now: int
    ) -> Tuple:
        return (
            request.request_id in self._shadow_marked,
            row_hit,
            self._rank.get(request.thread_id, 0),
            -request.arrival,
        )


class ShadowPolicy:
    """A shadow scheduler plus its per-run counterfactual aggregates."""

    __slots__ = (
        "label", "key", "scheduler", "view",
        "agreed", "granted", "redirected_to", "redirected_from",
    )

    def __init__(self, label: str, key: str, scheduler: Scheduler,
                 view: ShadowSystemView, num_threads: int):
        self.label = label
        self.key = key
        self.scheduler = scheduler
        self.view = view
        #: grants where this shadow picked the actual winner
        self.agreed = 0
        #: per-thread would-have-been-granted counts
        self.granted = [0] * num_threads
        #: on disagreements: per-thread counts of the *actual* winner
        #: (the threads the primary redirects bandwidth to)
        self.redirected_to = [0] * num_threads
        #: on disagreements: per-thread counts of the shadow's choice
        #: (the threads this policy would have served instead)
        self.redirected_from = [0] * num_threads


def canonical_policy_key(name: str) -> str:
    """The registry's canonical key for a scheduler name."""
    return name.lower().replace("-", "").replace("_", "")


def make_shadow(system, spec, index: int) -> ShadowPolicy:
    """Build and attach one shadow from ``spec``.

    ``spec`` is a scheduler name (``"frfcfs"``) or a ``(name, params)``
    pair — params typed exactly as :func:`~repro.schedulers.registry.\
    make_scheduler` requires, so a self-shadow can mirror the primary's
    parameterisation.
    """
    if isinstance(spec, tuple):
        name, params = spec
    else:
        name, params = spec, None
    scheduler = make_scheduler(name, params)
    if isinstance(scheduler, PARBSScheduler):
        scheduler = ShadowPARBS(params) if params is not None else ShadowPARBS()
    key = canonical_policy_key(name)
    view = ShadowSystemView(system, index)
    scheduler.attach(view)
    return ShadowPolicy(
        f"shadow:{key}", key, scheduler, view,
        system.workload.num_threads,
    )
