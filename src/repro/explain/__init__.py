"""repro.explain — per-grant decision forensics and shadow-policy
counterfactuals.

The existing observability stack can say *what* a run did; this layer
says *why each grant won* and *what a different policy would have done*:

* **Decision records** (:mod:`repro.explain.records`): for every grant,
  the candidate set with each candidate's full priority key decomposed
  into named per-policy components, the winner's margin over the
  runner-up, and tie-break provenance — feasible because ``priority``
  is a pure decision function by policy contract.
* **Shadow policies** (:mod:`repro.explain.shadow`): full instances of
  other registry schedulers fed the same arrivals / grants /
  completions, recording which request each would have granted, with
  policy×policy disagreement matrices and per-thread
  would-have-been-granted deltas.
* **Collector** (:mod:`repro.explain.collector`): the ``system._explain``
  observer seam — one ``is None`` branch per hook when detached,
  bit-identical results either way — plus a starvation watch and the
  TCM cluster-flip timeline.
* **Surfaces**: ``explain`` / ``starvation`` telemetry events, Perfetto
  counters and markers (:mod:`repro.telemetry.sinks`), text tables
  (:mod:`repro.explain.report`), the no-JS HTML dashboard
  (:func:`repro.obs.dashboard.render_explain_dashboard`) and the CLI
  ``explain run|report|dashboard``.

See docs/EXPLAIN.md for the record schema and the shadow fidelity
contract (a self-shadow agrees with 100% of grants).
"""

from repro.explain.collector import (
    KEEP_RECORDS,
    STARVATION_THRESHOLD,
    ExplainCollector,
    attach_explain,
    explain_run,
)
from repro.explain.records import (
    CLASS_BIT,
    TIE_ONLY,
    TIE_PRIORITY,
    TIE_QUEUE_ORDER,
    CandidateRecord,
    DecisionRecord,
    Margin,
    margin_of,
    record_structure,
)
from repro.explain.report import (
    cluster_flip_summary,
    disagreement_table,
    grant_delta_table,
    margin_table,
    render_explain_report,
    shadow_table,
    starvation_table,
)
from repro.explain.shadow import (
    ShadowPARBS,
    ShadowPolicy,
    ShadowSystemView,
    canonical_policy_key,
    make_shadow,
)

__all__ = [
    "CLASS_BIT",
    "CandidateRecord",
    "DecisionRecord",
    "ExplainCollector",
    "KEEP_RECORDS",
    "Margin",
    "STARVATION_THRESHOLD",
    "ShadowPARBS",
    "ShadowPolicy",
    "ShadowSystemView",
    "TIE_ONLY",
    "TIE_PRIORITY",
    "TIE_QUEUE_ORDER",
    "attach_explain",
    "canonical_policy_key",
    "cluster_flip_summary",
    "disagreement_table",
    "explain_run",
    "grant_delta_table",
    "make_shadow",
    "margin_of",
    "margin_table",
    "record_structure",
    "render_explain_report",
    "shadow_table",
    "starvation_table",
]
