"""Text reports over an explain snapshot.

Table rendering rides the same aligned-table helper the telemetry
reports use, so ``telemetry report --explain`` and ``explain run``
print in the house style.
"""

from __future__ import annotations

from typing import List

from repro.telemetry.report import _table


def disagreement_table(snapshot: dict) -> str:
    """Policy×policy disagreement matrix (counts and rates)."""
    dis = snapshot["disagreement"]
    labels, matrix = dis["labels"], dis["matrix"]
    decisions = snapshot["decisions"] or 1
    if len(labels) < 2:
        return "(no shadows attached — no disagreement matrix)"
    headers = ["policy"] + list(labels)
    rows = []
    for i, label in enumerate(labels):
        row: List[object] = [label]
        for j in range(len(labels)):
            if i == j:
                row.append("-")
            else:
                row.append(
                    f"{matrix[i][j]} ({matrix[i][j] / decisions:.1%})"
                )
        rows.append(row)
    return ("disagreement matrix (pairwise disagreeing grants):\n"
            + _table(headers, rows))


def shadow_table(snapshot: dict) -> str:
    """Per-shadow agreement summary."""
    shadows = snapshot["shadows"]
    if not shadows:
        return "(no shadows attached)"
    decisions = snapshot["decisions"] or 1
    headers = ["shadow", "agreed", "disagreed", "agreement"]
    rows = [
        [s["label"], s["agreed"], s["disagreed"],
         f"{s['agreed'] / decisions:.1%}"]
        for s in shadows
    ]
    return _table(headers, rows)


def grant_delta_table(snapshot: dict) -> str:
    """Per-thread actual grants vs each shadow's counterfactual."""
    actual = snapshot["actual_granted"]
    shadows = snapshot["shadows"]
    headers = ["tid", "granted"]
    for s in shadows:
        headers.extend([f"{s['policy']} would", f"{s['policy']} Δ"])
    rows = []
    for tid, count in enumerate(actual):
        row: List[object] = [tid, count]
        for s in shadows:
            would = s["granted"][tid]
            row.extend([would, would - count])
        rows.append(row)
    return _table(headers, rows)


def margin_table(snapshot: dict) -> str:
    """Which priority component decided grants, and by how much."""
    margins = snapshot["margins"]
    decided = margins["decided_by"]
    decisions = snapshot["decisions"] or 1
    rows = [
        [component, count, f"{count / decisions:.1%}"]
        for component, count in sorted(
            decided.items(), key=lambda kv: -kv[1]
        )
    ]
    rows.append(["(queue-order tie)", margins["ties"],
                 f"{margins['ties'] / decisions:.1%}"])
    rows.append(["(only candidate)", margins["only_candidate"],
                 f"{margins['only_candidate'] / decisions:.1%}"])
    return _table(["decided by", "grants", "share"], rows)


def starvation_table(snapshot: dict) -> str:
    """Oldest-pending-age watch: per-thread maxima plus events."""
    starvation = snapshot["starvation"]
    headers = ["tid", "max pending age"]
    rows = [[tid, age] for tid, age in enumerate(starvation["max_age"])]
    table = _table(headers, rows)
    events = starvation["events"]
    lines = [table, "",
             f"threshold {starvation['threshold']} cycles: "
             f"{len(events)} starvation event(s)"]
    for event in events[:10]:
        lines.append(
            f"  cycle {event['now']}: thread {event['tid']} oldest "
            f"pending {event['age']} cycles ({event['pending']} queued)"
        )
    if len(events) > 10:
        lines.append(f"  ... {len(events) - 10} more")
    return "\n".join(lines)


def cluster_flip_summary(snapshot: dict) -> str:
    """Cluster-flip timeline summary (when a clustering policy ran)."""
    clusters = snapshot["clusters"]
    if not clusters["timeline"]:
        return "(no clustering policy in primary or shadows)"
    timeline = clusters["timeline"]
    return (
        f"cluster timeline from {clusters['source']}: "
        f"{len(timeline)} quanta, {clusters['flips_total']} cluster "
        f"flip(s); latest latency cluster: {timeline[-1]['latency']}"
    )


def render_explain_report(snapshot: dict) -> str:
    """The full ``explain run`` text output."""
    parts = [
        f"explain: {snapshot['primary']} primary, "
        f"{len(snapshot['shadows'])} shadow(s), "
        f"{snapshot['decisions']} decisions",
        "",
        shadow_table(snapshot),
        "",
        disagreement_table(snapshot),
        "",
        margin_table(snapshot),
        "",
        grant_delta_table(snapshot),
        "",
        starvation_table(snapshot),
        "",
        cluster_flip_summary(snapshot),
    ]
    return "\n".join(parts)
