"""Decision records: what a grant's candidate set looked like and why
the winner won.

A :class:`DecisionRecord` is captured by :class:`repro.explain.\
ExplainCollector` for every scheduler grant, *before* the bank starts
service, while the candidate queue is still intact.  Each candidate
carries the full priority key the primary policy assigned it (the
demand-over-prefetch class bit followed by the policy's ``priority``
tuple) plus the named decomposition of that tuple against the policy's
``PRIORITY_COMPONENTS`` vocabulary.  Richer per-policy detail (ATLAS
attained service, STFM slowdown estimates, TCM cluster membership) is
available on demand via :meth:`repro.schedulers.base.Scheduler.\
explain_components`.  The records are backend-identical by
construction: both engine backends dispatch grants through
``System._try_schedule``, the one seam that captures them.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

#: Component name for the leading demand-over-prefetch class bit that
#: ``select`` prepends to every policy's priority tuple.
CLASS_BIT = "demand"

#: Tie-break provenance values (see :attr:`DecisionRecord.tie_break`).
TIE_PRIORITY = "priority"        # unique maximal key
TIE_QUEUE_ORDER = "queue-order"  # >= 2 maximal keys; first in queue won
TIE_ONLY = "only-candidate"      # queue held a single request


class CandidateRecord(NamedTuple):
    """One queued request as the primary policy scored it.

    A ``NamedTuple`` rather than a dataclass: one is built for every
    queued request at every grant, so construction cost is the hot
    part of the attached overhead budget.  For the same reason the
    named decomposition is a lazy property over the stored key rather
    than an eagerly built dict.
    """

    request_id: int
    thread_id: int
    arrival: int
    row: int
    row_hit: bool
    is_prefetch: bool
    #: class bit + the policy's priority tuple, as compared by ``select``
    key: Tuple
    #: names for the policy-tuple slots (``key[1:]``), in order
    component_names: Tuple[str, ...]

    @property
    def components(self) -> Dict[str, object]:
        """Named decomposition of the priority tuple (policy vocabulary)."""
        return dict(zip(self.component_names, self.key[1:]))


class Margin(NamedTuple):
    """How far the winner's key beat the runner-up's.

    ``component`` is the name of the first key slot where the two
    differ (``None`` for an exact tie, resolved by queue order) and
    ``delta`` the numeric difference at that slot.
    """

    component: Optional[str]
    delta: float
    runner_up_request_id: int
    runner_up_thread_id: int


class DecisionRecord(NamedTuple):
    """One grant: candidates, winner, margin, tie-break provenance.

    One per grant makes construction cost part of the attached budget,
    hence a ``NamedTuple`` (frozen-dataclass construction pays a
    guarded ``__setattr__`` per field).
    """

    index: int          # 0-based grant counter (== sched_decisions - 1)
    now: int
    channel_id: int
    bank_id: int
    winner_request_id: int
    winner_thread_id: int
    tie_break: str      # TIE_PRIORITY | TIE_QUEUE_ORDER | TIE_ONLY
    tied: int           # candidates sharing the maximal key
    margin: Optional[Margin]
    candidates: Tuple[CandidateRecord, ...]
    #: per-shadow selection: label -> (request_id, thread_id)
    shadow_choices: Dict[str, Tuple[int, int]]


def margin_of(
    winner_key: Tuple, runner_key: Tuple, component_names: Tuple[str, ...]
) -> Tuple[Optional[str], float]:
    """First differing slot (named) and numeric delta between two keys.

    ``component_names`` are the policy's :data:`PRIORITY_COMPONENTS`;
    slot 0 of the keys is the :data:`CLASS_BIT`.
    """
    for slot, (w, r) in enumerate(zip(winner_key, runner_key)):
        if w != r:
            if slot == 0:
                name = CLASS_BIT
            elif slot - 1 < len(component_names):
                name = component_names[slot - 1]
            else:
                name = f"slot{slot - 1}"
            return name, float(w) - float(r)
    return None, 0.0


def record_structure(record: DecisionRecord) -> tuple:
    """Backend-comparable shape of a record.

    Everything except ``request_id``s (the id counter is process-global,
    so two runs in one process allocate different ids for the same
    simulated requests).  Candidate order is queue order, which the
    parity contract pins identical across backends.
    """
    return (
        record.index,
        record.now,
        record.channel_id,
        record.bank_id,
        record.winner_thread_id,
        record.tie_break,
        record.tied,
        (record.margin.component, record.margin.delta,
         record.margin.runner_up_thread_id) if record.margin else None,
        tuple(
            (c.thread_id, c.arrival, c.row, c.row_hit, c.is_prefetch,
             c.key, tuple(sorted(c.components.items())))
            for c in record.candidates
        ),
        tuple(sorted(
            (label, tid) for label, (_rid, tid)
            in record.shadow_choices.items()
        )),
    )
