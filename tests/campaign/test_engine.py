"""Tests for repro.campaign.engine — execution, resume, fault tolerance."""

import pytest

from repro.campaign import (
    CampaignError,
    CampaignPlan,
    CampaignPoint,
    CampaignStore,
    execute_plan,
    grid_plan,
    run_points,
)
from repro.campaign.engine import STATUS_CACHED, STATUS_FAILED, STATUS_OK
from repro.campaign.store import KIND_ALONE, KIND_FAILURE, KIND_POINT
from repro.config import SimConfig
from repro.workloads import make_intensity_workload

CFG = SimConfig(run_cycles=15_000)


def tiny_plan(name="tiny", schedulers=("frfcfs", "tcm"), n_workloads=2):
    workloads = [
        make_intensity_workload(0.5, num_threads=2, seed=i)
        for i in range(n_workloads)
    ]
    return grid_plan(name, workloads, schedulers, configs=[CFG])


class TestExecutePlan:
    def test_inline_all_ok(self, tmp_path):
        report = execute_plan(tiny_plan(), tmp_path / "s", progress=False)
        assert [r.status for r in report.results] == [STATUS_OK] * 4
        assert all(r.weighted_speedup > 0 for r in report.results)
        assert report.completed == 4 and not report.failed

    def test_results_in_plan_order(self, tmp_path):
        plan = tiny_plan()
        report = execute_plan(plan, tmp_path / "s", progress=False)
        assert [r.key for r in report.results] == list(plan.keys)

    def test_no_store(self):
        report = execute_plan(tiny_plan(), None, progress=False)
        assert report.completed == 4

    def test_duplicate_points_computed_once(self, tmp_path):
        plan = tiny_plan()
        doubled = CampaignPlan(name="dup", points=plan.points + plan.points)
        report = execute_plan(doubled, tmp_path / "s", progress=False)
        assert len(report.results) == 8
        assert report.completed + report.cached == 8
        # every duplicate maps to the same result object content
        by_key = {}
        for r in report.results:
            by_key.setdefault(r.key, []).append(r)
        assert all(len(v) == 2 for v in by_key.values())


class TestResume:
    def test_second_run_is_noop(self, tmp_path):
        plan = tiny_plan()
        execute_plan(plan, tmp_path / "s", progress=False)
        store = CampaignStore(tmp_path / "s")
        n_records = len(store)
        report = execute_plan(plan, tmp_path / "s", progress=False)
        assert [r.status for r in report.results] == [STATUS_CACHED] * 4
        assert report.cached == 4 and report.completed == 0
        assert len(CampaignStore(tmp_path / "s")) == n_records

    def test_partial_store_resumes_missing_only(self, tmp_path):
        """A killed campaign: some points stored, the rest recomputed."""
        plan = tiny_plan()
        first = CampaignPlan(name="half", points=plan.points[:2])
        execute_plan(first, tmp_path / "s", progress=False)
        report = execute_plan(plan, tmp_path / "s", progress=False)
        statuses = [r.status for r in report.results]
        assert statuses == [STATUS_CACHED, STATUS_CACHED, STATUS_OK,
                            STATUS_OK]

    def test_cached_metrics_match_fresh(self, tmp_path):
        plan = tiny_plan()
        fresh = execute_plan(plan, tmp_path / "s", progress=False)
        cached = execute_plan(plan, tmp_path / "s", progress=False)
        assert [r.metrics for r in fresh.results] == [
            r.metrics for r in cached.results
        ]

    def test_force_recomputes(self, tmp_path):
        plan = tiny_plan()
        execute_plan(plan, tmp_path / "s", progress=False)
        report = execute_plan(plan, tmp_path / "s", progress=False,
                              force=True)
        assert [r.status for r in report.results] == [STATUS_OK] * 4


class TestFaultTolerance:
    def test_failure_retried_then_recorded(self, tmp_path):
        w = make_intensity_workload(0.5, num_threads=2, seed=0)
        bad = CampaignPoint(workload=w, scheduler="no-such", config=CFG)
        good = CampaignPoint(workload=w, scheduler="frfcfs", config=CFG)
        plan = CampaignPlan(name="mixed", points=(bad, good))
        report = execute_plan(plan, tmp_path / "s", retries=2,
                              backoff=0.01, progress=False)
        failed, ok = report.results
        assert failed.status == STATUS_FAILED
        assert failed.attempts == 3  # 1 try + 2 retries
        assert "no-such" in failed.error
        assert failed.traceback is not None
        assert ok.status == STATUS_OK

        store = CampaignStore(tmp_path / "s")
        assert store.kind(failed.key) == KIND_FAILURE
        rec = store.get(failed.key)
        assert rec["payload"]["attempts"] == 3
        assert "no-such" in rec["payload"]["error"]

    def test_failure_does_not_poison_resume(self, tmp_path):
        w = make_intensity_workload(0.5, num_threads=2, seed=0)
        bad = CampaignPoint(workload=w, scheduler="no-such", config=CFG)
        plan = CampaignPlan(name="bad", points=(bad,))
        execute_plan(plan, tmp_path / "s", retries=0, backoff=0.01,
                     progress=False)
        # failures are not treated as cached successes on resume
        report = execute_plan(plan, tmp_path / "s", retries=0,
                              backoff=0.01, progress=False)
        assert report.results[0].status == STATUS_FAILED
        assert report.results[0].attempts == 1

    def test_raise_failures(self, tmp_path):
        w = make_intensity_workload(0.5, num_threads=2, seed=0)
        bad = CampaignPoint(workload=w, scheduler="no-such", config=CFG)
        plan = CampaignPlan(name="bad", points=(bad,))
        report = execute_plan(plan, None, retries=0, progress=False)
        with pytest.raises(CampaignError):
            report.raise_failures()


class TestParallel:
    def test_parallel_matches_serial(self, tmp_path):
        plan = tiny_plan()
        serial = execute_plan(plan, None, workers=1, progress=False)
        par = execute_plan(plan, tmp_path / "s", workers=2, progress=False)
        assert [r.metrics for r in serial.results] == [
            r.metrics for r in par.results
        ]

    def test_parallel_computes_each_alone_once(self, tmp_path):
        """Alone runs are shared artifacts, not per-worker work."""
        plan = tiny_plan()
        execute_plan(plan, tmp_path / "s", workers=2, progress=False)
        store = CampaignStore(tmp_path / "s")
        alone_keys = list(store.keys(KIND_ALONE))
        assert len(alone_keys) == len(set(alone_keys))
        # 2 workloads x 2 threads, each spec unique per (spec, seed)
        assert 1 <= len(alone_keys) <= 4
        # every point succeeded on its first attempt (no thrash)
        for rec in store.records(KIND_POINT):
            assert rec["meta"]["attempts"] == 1

    def test_parallel_failure_handling(self, tmp_path):
        w = make_intensity_workload(0.5, num_threads=2, seed=0)
        bad = CampaignPoint(workload=w, scheduler="no-such", config=CFG)
        good = CampaignPoint(workload=w, scheduler="frfcfs", config=CFG)
        plan = CampaignPlan(name="mixed", points=(bad, good))
        report = execute_plan(plan, tmp_path / "s", workers=2, retries=1,
                              backoff=0.01, progress=False)
        statuses = {r.point.scheduler: r.status for r in report.results}
        assert statuses == {"no-such": STATUS_FAILED, "frfcfs": STATUS_OK}

    def test_timeout_kills_and_records(self, tmp_path):
        w = make_intensity_workload(0.5, num_threads=2, seed=0)
        slow = CampaignPoint(
            workload=w, scheduler="frfcfs",
            config=SimConfig(run_cycles=200_000_000),
        )
        plan = CampaignPlan(name="slow", points=(slow,))
        report = execute_plan(plan, None, workers=2, timeout=1.0,
                              retries=0, backoff=0.01, progress=False)
        result = report.results[0]
        assert result.status == STATUS_FAILED
        assert "Timeout" in result.error


class TestRunPoints:
    def test_order_and_metrics(self, tmp_path):
        w0 = make_intensity_workload(0.5, num_threads=2, seed=0)
        w1 = make_intensity_workload(0.5, num_threads=2, seed=1)
        points = [
            CampaignPoint(workload=w1, scheduler="tcm", config=CFG),
            CampaignPoint(workload=w0, scheduler="frfcfs", config=CFG),
        ]
        results = run_points(points, store=tmp_path / "s")
        assert [r.point.workload.name for r in results] == [
            w1.name, w0.name
        ]
        assert all(r.ok for r in results)

    def test_raises_on_failure(self):
        w = make_intensity_workload(0.5, num_threads=2, seed=0)
        bad = CampaignPoint(workload=w, scheduler="no-such", config=CFG)
        with pytest.raises(CampaignError):
            run_points([bad], retries=0)
