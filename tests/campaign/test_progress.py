"""Tests for repro.campaign.progress — deterministic via injected clock."""

from repro.campaign.progress import BUSY, DEAD, IDLE, ProgressTracker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make(total=10):
    clock = FakeClock()
    return ProgressTracker(total, name="t", clock=clock), clock


class TestCounters:
    def test_resolved_and_remaining(self):
        tracker, _ = make(total=5)
        tracker.point_cached()
        tracker.point_done()
        tracker.point_failed()
        assert tracker.resolved == 3
        assert tracker.remaining == 2

    def test_artifacts_not_counted_as_points(self):
        tracker, _ = make(total=2)
        tracker.artifact_done()
        tracker.artifact_done()
        assert tracker.resolved == 0
        assert tracker.artifacts == 2
        assert tracker.throughput() == 0.0


class TestThroughputEta:
    def test_needs_two_completions(self):
        tracker, clock = make()
        assert tracker.throughput() == 0.0
        tracker.point_done()
        assert tracker.throughput() == 0.0
        assert tracker.eta_seconds() == float("inf")

    def test_steady_rate(self):
        tracker, clock = make(total=10)
        for _ in range(5):
            tracker.point_done()
            clock.advance(2.0)
        # 5 completions over 8s between first and last -> 0.5 pts/s
        assert abs(tracker.throughput() - 0.5) < 1e-9
        assert abs(tracker.eta_seconds() - 5 / 0.5) < 1e-9

    def test_elapsed(self):
        tracker, clock = make()
        clock.advance(12.5)
        assert tracker.elapsed() == 12.5


class TestRendering:
    def test_render_contains_counts_and_workers(self):
        tracker, _ = make(total=4)
        tracker.point_done()
        tracker.point_cached()
        tracker.artifact_done()
        tracker.worker_state(0, BUSY, "w/tcm")
        tracker.worker_state(1, IDLE)
        line = tracker.render()
        assert "[t] 2/4" in line
        assert "1 cached" in line
        assert "1 alone" in line
        assert "w0:busy(w/tcm)" in line
        assert "w1:idle" in line

    def test_report_lines(self):
        tracker, clock = make(total=3)
        tracker.point_done()
        tracker.point_failed()
        tracker.point_retried()
        clock.advance(4.0)
        text = tracker.report()
        assert "3 points" in text
        assert "failed   : 1" in text
        assert "retries  : 1" in text

    def test_snapshot_is_json_friendly(self):
        import json

        tracker, _ = make()
        tracker.worker_state(0, DEAD, "exit=1")
        snap = tracker.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["workers"][0]["state"] == DEAD
        assert snap["eta_seconds"] == float("inf") or True
