"""Tests for repro.campaign.store — the append-only result store."""

import json

import pytest

from repro.campaign.store import (
    KIND_ALONE,
    KIND_FAILURE,
    KIND_POINT,
    CampaignStore,
    StoreError,
)


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        store.put("k1", KIND_POINT, {"metrics": {"ws": 1.5}},
                  meta={"workload": "w"})
        rec = store.get("k1")
        assert rec["key"] == "k1"
        assert rec["kind"] == KIND_POINT
        assert rec["payload"]["metrics"]["ws"] == 1.5
        assert rec["meta"]["workload"] == "w"

    def test_reopen_preserves_records(self, tmp_path):
        with CampaignStore(tmp_path / "s") as store:
            store.put("k1", KIND_POINT, {"a": 1})
            store.put("k2", KIND_ALONE, {"ipc": 2.0})
        reopened = CampaignStore(tmp_path / "s")
        assert reopened.get("k1")["payload"] == {"a": 1}
        assert reopened.get("k2")["payload"] == {"ipc": 2.0}
        assert len(reopened) == 2

    def test_missing_key(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        assert store.get("nope") is None
        assert store.kind("nope") is None
        assert "nope" not in store

    def test_float_exact_round_trip(self, tmp_path):
        """JSON repr round-trips floats bit-exactly (shortest repr)."""
        value = 0.1 + 0.2  # not representable exactly
        with CampaignStore(tmp_path / "s") as store:
            store.put("f", KIND_POINT, {"x": value})
        assert CampaignStore(tmp_path / "s").get("f")["payload"]["x"] == value


class TestLastRecordWins:
    def test_overwrite(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        store.put("k", KIND_FAILURE, {"error": "boom"})
        store.put("k", KIND_POINT, {"metrics": {}})
        assert store.kind("k") == KIND_POINT
        assert len(store) == 1

    def test_overwrite_survives_reopen(self, tmp_path):
        with CampaignStore(tmp_path / "s") as store:
            store.put("k", KIND_FAILURE, {"error": "boom"})
            store.put("k", KIND_POINT, {"metrics": {"ws": 2.0}})
        reopened = CampaignStore(tmp_path / "s")
        assert reopened.kind("k") == KIND_POINT
        assert reopened.get("k")["payload"]["metrics"]["ws"] == 2.0


class TestIndexSidecar:
    def test_stale_sidecar_triggers_rescan(self, tmp_path):
        with CampaignStore(tmp_path / "s") as store:
            store.put("k1", KIND_POINT, {"a": 1})
        # Append behind the sidecar's back: file_size no longer matches.
        log = tmp_path / "s" / "results.jsonl"
        with log.open("a") as f:
            f.write(json.dumps({"key": "k2", "kind": KIND_POINT,
                                "payload": {}, "meta": {}}) + "\n")
        reopened = CampaignStore(tmp_path / "s")
        assert "k2" in reopened

    def test_corrupt_sidecar_triggers_rescan(self, tmp_path):
        with CampaignStore(tmp_path / "s") as store:
            store.put("k1", KIND_POINT, {"a": 1})
        (tmp_path / "s" / "index.json").write_text("{not json")
        assert "k1" in CampaignStore(tmp_path / "s")

    def test_corrupt_log_raises(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "results.jsonl").write_text("{definitely not json\n")
        with pytest.raises(StoreError):
            CampaignStore(root)


class TestIteration:
    def test_keys_and_records_by_kind(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        store.put("p1", KIND_POINT, {})
        store.put("a1", KIND_ALONE, {"ipc": 1.0})
        store.put("f1", KIND_FAILURE, {"error": "x"})
        assert set(store.keys()) == {"p1", "a1", "f1"}
        assert list(store.keys(KIND_ALONE)) == ["a1"]
        recs = list(store.records(KIND_FAILURE))
        assert len(recs) == 1 and recs[0]["key"] == "f1"
