"""Tests for the runner's two-layer alone cache (L1 dict + L2 store)."""

import pytest

from repro.campaign import CampaignStore
from repro.campaign.hashing import alone_key
from repro.campaign.store import KIND_ALONE
from repro.config import SimConfig
from repro.experiments import runner
from repro.experiments.runner import (
    alone_ipc,
    clear_alone_cache,
    prime_alone_cache,
    set_alone_store,
)
from repro.workloads.spec import benchmark

CFG = SimConfig(run_cycles=30_000)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_alone_cache(persistent=True)
    yield
    clear_alone_cache(persistent=True)


class TestL2ReadThrough:
    def test_compute_writes_back_to_store(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        set_alone_store(store)
        spec = benchmark("mcf")
        ipc = alone_ipc(spec, CFG, 0)
        key = alone_key(spec, CFG, 0)
        assert store.kind(key) == KIND_ALONE
        assert store.get(key)["payload"]["ipc"] == ipc

    def test_l2_hit_skips_simulation(self, tmp_path, monkeypatch):
        store = CampaignStore(tmp_path / "s")
        set_alone_store(store)
        spec = benchmark("mcf")
        ipc = alone_ipc(spec, CFG, 0)

        clear_alone_cache()  # L1 gone; L2 still attached
        monkeypatch.setattr(
            runner, "workload_from_specs",
            lambda *a, **k: pytest.fail("simulated despite L2 hit"),
        )
        assert alone_ipc(spec, CFG, 0) == ipc
        # the read-through populated L1 again
        assert len(runner._ALONE_CACHE) == 1

    def test_l2_survives_process_restart_equivalent(self, tmp_path):
        """A fresh store handle (new 'process') sees the artifact."""
        spec = benchmark("povray")
        with CampaignStore(tmp_path / "s") as store:
            set_alone_store(store)
            ipc = alone_ipc(spec, CFG, 0)
        clear_alone_cache(persistent=True)
        set_alone_store(CampaignStore(tmp_path / "s"))
        assert alone_ipc(spec, CFG, 0) == ipc

    def test_detach_restores_previous(self, tmp_path):
        s1 = CampaignStore(tmp_path / "a")
        s2 = CampaignStore(tmp_path / "b")
        assert set_alone_store(s1) is None
        assert set_alone_store(s2) is s1
        assert set_alone_store(None) is s2

    def test_clear_persistent_detaches_but_keeps_disk(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        set_alone_store(store)
        spec = benchmark("mcf")
        alone_ipc(spec, CFG, 0)
        clear_alone_cache(persistent=True)
        assert runner._ALONE_STORE is None
        # on-disk artifact untouched
        assert len(CampaignStore(tmp_path / "s")) == 1


class TestPrime:
    def test_prime_hits_without_simulation(self, monkeypatch):
        spec = benchmark("mcf")
        prime_alone_cache(spec, CFG, 0, 2.5)
        monkeypatch.setattr(
            runner, "workload_from_specs",
            lambda *a, **k: pytest.fail("simulated despite primed hint"),
        )
        assert alone_ipc(spec, CFG, 0) == 2.5

    def test_prime_is_seed_specific(self):
        spec = benchmark("mcf")
        prime_alone_cache(spec, CFG, 0, 2.5)
        assert runner._alone_key(spec, CFG, 1) not in runner._ALONE_CACHE


class TestKeyNormalisation:
    def test_num_threads_and_seed_field_shared(self):
        """L1 key ignores num_threads and config.seed (alone = 1 thread)."""
        spec = benchmark("mcf")
        k = runner._alone_key(spec, CFG, 0)
        assert runner._alone_key(spec, CFG.with_(num_threads=8), 0) == k
        assert runner._alone_key(spec, CFG.with_(seed=7), 0) == k
        assert runner._alone_key(spec, CFG.with_(num_channels=2), 0) != k
