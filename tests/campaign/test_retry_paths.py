"""Engine retry/backoff/timeout paths, driven by scripted failures."""

import multiprocessing as mp
import time

import pytest

from repro.campaign import CampaignStore, execute_plan
from repro.campaign import engine as engine_mod
from repro.campaign.engine import STATUS_FAILED, STATUS_OK
from repro.campaign.store import KIND_FAILURE, KIND_POINT
from tests.campaign.test_engine import tiny_plan

_OK_RESULT = {
    "payload": {
        "metrics": {"ws": 1.0, "ms": 1.0, "hs": 1.0},
        "threads": [], "summary": "",
    },
    "alone": [],
}


def _scripted_execute(fail_first=0, hang_first=0):
    """_execute_task stand-in: point attempts fail/hang on a script.

    ``fail_first`` attempts of each point raise; ``hang_first``
    attempts block (for the pool-timeout path).  Alone tasks always
    succeed instantly.  Attempt numbers come from the task payload, so
    the script holds even across forked pool workers.
    """

    def fake(task):
        if task["kind"] == "alone":
            return {
                "payload": None,
                "alone": [{"key": task["key"], "spec": task["spec"],
                           "seed": task["seed"], "ipc": 1.0}],
            }
        if task["attempt"] <= hang_first:
            time.sleep(300.0)
        if task["attempt"] <= fail_first:
            raise RuntimeError(
                f"scripted failure on attempt {task['attempt']}"
            )
        return _OK_RESULT

    return fake


class TestInlineRetry:
    def test_fails_n_minus_1_then_succeeds(self, tmp_path, monkeypatch):
        monkeypatch.setattr(engine_mod, "_execute_task",
                            _scripted_execute(fail_first=2))
        report = execute_plan(tiny_plan(n_workloads=1), tmp_path / "s",
                              retries=2, backoff=0.01, progress=False)
        assert [r.status for r in report.results] == [STATUS_OK] * 2
        assert [r.attempts for r in report.results] == [3, 3]
        store = CampaignStore(tmp_path / "s")
        for rec in store.records(KIND_POINT):
            assert rec["meta"]["attempts"] == 3

    def test_backoff_grows_exponentially(self, tmp_path, monkeypatch):
        monkeypatch.setattr(engine_mod, "_execute_task",
                            _scripted_execute(fail_first=3))
        delays = []
        real_sleep = time.sleep
        monkeypatch.setattr(
            engine_mod.time, "sleep", lambda s: delays.append(s)
        )
        try:
            execute_plan(tiny_plan(n_workloads=1, schedulers=("tcm",)),
                         tmp_path / "s", retries=3, backoff=0.1,
                         progress=False)
        finally:
            monkeypatch.setattr(engine_mod.time, "sleep", real_sleep)
        # one point, 3 scripted failures -> 3 backoff sleeps of
        # ~0.1 * 2**k seconds (minus the instants spent failing)
        assert len(delays) == 3
        assert 0.05 < delays[0] <= 0.1
        assert 1.5 < delays[1] / delays[0] < 2.5
        assert 1.5 < delays[2] / delays[1] < 2.5

    def test_exhausted_retries_record_failure_shape(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setattr(engine_mod, "_execute_task",
                            _scripted_execute(fail_first=99))
        plan = tiny_plan(n_workloads=1, schedulers=("tcm",))
        report = execute_plan(plan, tmp_path / "s", retries=2,
                              backoff=0.01, progress=False)
        result = report.results[0]
        assert result.status == STATUS_FAILED
        assert result.attempts == 3
        assert "scripted failure" in result.error
        assert result.traceback is not None

        store = CampaignStore(tmp_path / "s")
        assert store.kind(result.key) == KIND_FAILURE
        rec = store.get(result.key)
        assert set(rec["payload"]) == {"error", "traceback", "attempts"}
        assert rec["payload"]["attempts"] == 3
        assert "scripted failure" in rec["payload"]["error"]
        assert "RuntimeError" in rec["payload"]["traceback"]
        point = plan.points[0]
        assert rec["meta"] == {
            "workload": point.workload.name,
            "scheduler": point.scheduler,
            "seed": point.seed,
            "tag": point.tag,
        }


needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="scripted tasks reach pool workers via fork inheritance",
)


@needs_fork
class TestPoolRetry:
    def test_pool_failure_retried_then_succeeds(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setattr(engine_mod, "_execute_task",
                            _scripted_execute(fail_first=1))
        report = execute_plan(
            tiny_plan(n_workloads=1), tmp_path / "s", workers=2,
            retries=1, backoff=0.01, progress=False,
            start_method="fork",
        )
        assert [r.status for r in report.results] == [STATUS_OK] * 2
        assert [r.attempts for r in report.results] == [2, 2]

    @pytest.mark.slow
    def test_hanging_task_timed_out_killed_and_retried(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setattr(engine_mod, "_execute_task",
                            _scripted_execute(hang_first=1))
        report = execute_plan(
            tiny_plan(n_workloads=1, schedulers=("tcm",)),
            tmp_path / "s", workers=2, timeout=1.0, retries=1,
            backoff=0.01, progress=False, start_method="fork",
        )
        result = report.results[0]
        assert result.status == STATUS_OK
        assert result.attempts == 2  # attempt 1 hung, attempt 2 ran

    @pytest.mark.slow
    def test_hang_with_no_retries_records_timeout_failure(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(engine_mod, "_execute_task",
                            _scripted_execute(hang_first=99))
        report = execute_plan(
            tiny_plan(n_workloads=1, schedulers=("tcm",)),
            tmp_path / "s", workers=2, timeout=0.5, retries=0,
            backoff=0.01, progress=False, start_method="fork",
        )
        result = report.results[0]
        assert result.status == STATUS_FAILED
        assert "Timeout" in result.error
        store = CampaignStore(tmp_path / "s")
        rec = store.get(result.key)
        assert rec["kind"] == KIND_FAILURE
        assert "Timeout" in rec["payload"]["error"]
