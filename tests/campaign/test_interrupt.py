"""Graceful interrupt: flushed store, no traceback, resumable."""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignInterrupted,
    CampaignStore,
    execute_plan,
)
from repro.campaign import engine as engine_mod
from repro.campaign.store import KIND_POINT, KIND_SUMMARY
from tests.campaign.test_engine import tiny_plan


def _fake_execute(interrupt_on=None, sleep_s=0.0, calls=None):
    """Synthetic _execute_task: instant alone runs, scripted points."""
    calls = calls if calls is not None else []

    def fake(task):
        if task["kind"] == "alone":
            return {
                "payload": None,
                "alone": [{"key": task["key"], "spec": task["spec"],
                           "seed": task["seed"], "ipc": 1.0}],
            }
        calls.append(task["key"])
        if interrupt_on is not None and len(calls) == interrupt_on:
            raise KeyboardInterrupt
        if sleep_s:
            time.sleep(sleep_s)
        return {
            "payload": {
                "metrics": {"ws": 1.0, "ms": 1.0, "hs": 1.0},
                "threads": [], "summary": "",
            },
            "alone": [],
        }

    return fake, calls


class TestInterruptInline:
    def test_raises_campaign_interrupted_with_partial_report(
        self, tmp_path, monkeypatch
    ):
        fake, calls = _fake_execute(interrupt_on=3)
        monkeypatch.setattr(engine_mod, "_execute_task", fake)
        with pytest.raises(CampaignInterrupted) as exc_info:
            execute_plan(tiny_plan(), tmp_path / "s", progress=False)
        report = exc_info.value.report
        assert len(report.results) == 2
        assert all(r.ok for r in report.results)
        assert "resume" in str(exc_info.value)

    def test_store_flushed_on_interrupt(self, tmp_path, monkeypatch):
        fake, _ = _fake_execute(interrupt_on=3)
        monkeypatch.setattr(engine_mod, "_execute_task", fake)
        with pytest.raises(CampaignInterrupted):
            execute_plan(tiny_plan(), tmp_path / "s", progress=False)
        store = CampaignStore(tmp_path / "s")
        assert sum(1 for _ in store.keys(KIND_POINT)) == 2
        assert sum(1 for _ in store.keys(KIND_SUMMARY)) == 1
        # sidecar index was flushed and is consistent with the log
        assert (tmp_path / "s" / "index.json").exists()

    def test_resume_skips_flushed_points(self, tmp_path, monkeypatch):
        fake, _ = _fake_execute(interrupt_on=3)
        monkeypatch.setattr(engine_mod, "_execute_task", fake)
        with pytest.raises(CampaignInterrupted):
            execute_plan(tiny_plan(), tmp_path / "s", progress=False)

        fake2, calls2 = _fake_execute()
        monkeypatch.setattr(engine_mod, "_execute_task", fake2)
        report = execute_plan(tiny_plan(), tmp_path / "s",
                              progress=False)
        assert report.cached == 2
        assert report.completed == 2
        assert len(calls2) == 2  # only the unfinished points ran

    def test_sigterm_disposition_restored(self, tmp_path, monkeypatch):
        fake, _ = _fake_execute()
        monkeypatch.setattr(engine_mod, "_execute_task", fake)
        before = signal.getsignal(signal.SIGTERM)
        execute_plan(tiny_plan(), tmp_path / "s", progress=False)
        assert signal.getsignal(signal.SIGTERM) is before


CHILD_SCRIPT = textwrap.dedent("""
    import sys, time

    from repro.campaign import engine

    def fake(task):
        if task["kind"] == "alone":
            return {"payload": None,
                    "alone": [{"key": task["key"], "spec": task["spec"],
                               "seed": task["seed"], "ipc": 1.0}]}
        time.sleep(0.35)
        return {"payload": {"metrics": {"ws": 1.0, "ms": 1.0, "hs": 1.0},
                            "threads": [], "summary": ""},
                "alone": []}

    engine._execute_task = fake

    from repro.experiments.cli import main
    sys.exit(main(["campaign", "run", "--preset", "smoke",
                   "--store", sys.argv[1], "--cycles", "15000"]))
""")


def _interrupt_child(tmp_path, signum):
    """Run the CLI campaign in a child, signal it mid-run."""
    store_dir = tmp_path / "s"
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(root / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(store_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, cwd=str(root),
    )
    try:
        log = store_dir / "results.jsonl"
        deadline = time.monotonic() + 30.0
        # wait for the first *point* record so the interrupt lands
        # mid-campaign with something worth flushing
        while time.monotonic() < deadline:
            if log.exists() and b'"kind":"point"' in log.read_bytes():
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        else:
            pytest.fail("campaign never wrote a point record")
        proc.send_signal(signum)
        out, err = proc.communicate(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    return proc.returncode, out.decode(), err.decode(), store_dir


@pytest.mark.slow
class TestInterruptSubprocess:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_exits_130_flushed_no_traceback(self, tmp_path,
                                                   signum):
        rc, out, err, store_dir = _interrupt_child(tmp_path, signum)
        assert rc == 130, f"stdout:\n{out}\nstderr:\n{err}"
        assert "Traceback" not in err, err
        assert "interrupted" in err
        # store is flushed and resumable: some points done, not all
        store = CampaignStore(store_dir)
        done = sum(1 for _ in store.keys(KIND_POINT))
        assert 1 <= done <= 3
        assert sum(1 for _ in store.keys(KIND_SUMMARY)) == 1
