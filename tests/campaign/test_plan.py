"""Tests for repro.campaign.plan — plan building and serialisation."""

import pytest

from repro.campaign.plan import (
    PRESET_PLANS,
    CampaignPlan,
    CampaignPoint,
    config_from_dict,
    config_to_dict,
    grid_plan,
    params_from_dict,
    params_to_dict,
    preset_plan,
    suite_plan,
)
from repro.config import SimConfig
from repro.config import TCMParams
from repro.workloads import make_intensity_workload

CFG = SimConfig(run_cycles=25_000)


def workloads(n=2):
    return [
        make_intensity_workload(0.5, num_threads=2, seed=i) for i in range(n)
    ]


class TestBuilders:
    def test_grid_plan_cross_product(self):
        plan = grid_plan("g", workloads(2), ("frfcfs", "tcm"),
                         configs=[CFG], seeds=(0, 1))
        assert len(plan) == 8
        assert len(set(plan.keys)) == 8

    def test_suite_plan_seed_per_workload(self):
        plan = suite_plan("s", workloads(3), ("tcm",), config=CFG,
                          base_seed=10)
        assert [p.seed for p in plan] == [10, 11, 12]

    def test_grid_plan_params(self):
        params = {"tcm": TCMParams(cluster_thresh=0.1)}
        plan = grid_plan("g", workloads(1), ("frfcfs", "tcm"),
                         configs=[CFG], params=params)
        by_sched = {p.scheduler: p for p in plan}
        assert by_sched["tcm"].params == TCMParams(cluster_thresh=0.1)
        assert by_sched["frfcfs"].params is None

    def test_presets_build(self):
        for name in PRESET_PLANS:
            plan = preset_plan(name, per_category=1, config=CFG)
            assert len(plan) > 0
            assert len(set(plan.keys)) == len(set(plan.keys))

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset_plan("not-a-preset")


class TestSerialisation:
    def test_config_round_trip(self):
        cfg = SimConfig(run_cycles=123, num_channels=2)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_params_round_trip(self):
        params = TCMParams(cluster_thresh=0.25)
        restored = params_from_dict(params_to_dict(params))
        assert restored == params

    def test_none_params_round_trip(self):
        assert params_from_dict(params_to_dict(None)) is None

    def test_point_round_trip_preserves_key(self):
        point = CampaignPoint(
            workload=workloads(1)[0], scheduler="tcm", config=CFG,
            seed=3, params=TCMParams(cluster_thresh=0.1), tag="fig4",
        )
        restored = CampaignPoint.from_dict(point.to_dict())
        assert restored.key == point.key
        assert restored.scheduler == "tcm"
        assert restored.seed == 3
        assert restored.tag == "fig4"
        assert restored.params == point.params

    def test_plan_save_load(self, tmp_path):
        plan = grid_plan("g", workloads(2), ("frfcfs", "tcm"),
                         configs=[CFG])
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = CampaignPlan.load(path)
        assert loaded.name == plan.name
        assert list(loaded.keys) == list(plan.keys)

    def test_tag_not_part_of_key(self):
        w = workloads(1)[0]
        a = CampaignPoint(workload=w, scheduler="tcm", config=CFG, tag="x")
        b = CampaignPoint(workload=w, scheduler="tcm", config=CFG, tag="y")
        assert a.key == b.key
