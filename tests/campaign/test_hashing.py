"""Tests for repro.campaign.hashing — content-addressed cache keys."""

import subprocess
import sys

import pytest

from repro.campaign.hashing import (
    alone_key,
    canonicalize,
    point_key,
    stable_hash,
)
from repro.config import SimConfig
from repro.config import TCMParams
from repro.workloads.mixes import Workload
from repro.workloads.spec import benchmark

CFG = SimConfig(run_cycles=50_000)


def workload(name="w"):
    return Workload(name=name, benchmark_names=("mcf", "povray"))


class TestStableHash:
    def test_deterministic(self):
        obj = {"b": [1, 2.5, "x"], "a": {"nested": True}}
        assert stable_hash(obj) == stable_hash(obj)

    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_tuple_list_equivalent(self):
        assert stable_hash((1, 2)) == stable_hash([1, 2])

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_stable_across_processes(self):
        """The key must not depend on per-process hash salting."""
        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.campaign.hashing import alone_key, point_key\n"
            "from repro.config import SimConfig\n"
            "from repro.workloads.mixes import Workload\n"
            "from repro.workloads.spec import benchmark\n"
            "cfg = SimConfig(run_cycles=50_000)\n"
            "w = Workload(name='w', benchmark_names=('mcf', 'povray'))\n"
            "print(alone_key(benchmark('mcf'), cfg, 3))\n"
            "print(point_key(w, 'tcm', cfg, 3))\n"
        )

        def run_once():
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True, cwd=".",
            )
            return out.stdout.strip().splitlines()

        first, second = run_once(), run_once()
        assert first == second
        assert first[0] == alone_key(benchmark("mcf"), CFG, 3)
        assert first[1] == point_key(workload(), "tcm", CFG, 3)


class TestAloneKey:
    def test_ignores_num_threads_and_config_seed(self):
        """Core-count sweeps share one alone run per benchmark."""
        spec = benchmark("mcf")
        base = alone_key(spec, CFG, 0)
        assert alone_key(spec, CFG.with_(num_threads=8), 0) == base
        assert alone_key(spec, CFG.with_(seed=99), 0) == base

    def test_sensitive_to_run_seed(self):
        spec = benchmark("mcf")
        assert alone_key(spec, CFG, 0) != alone_key(spec, CFG, 1)

    def test_sensitive_to_other_config_fields(self):
        spec = benchmark("mcf")
        base = alone_key(spec, CFG, 0)
        assert alone_key(spec, CFG.with_(num_channels=2), 0) != base
        assert alone_key(spec, CFG.with_(run_cycles=60_000), 0) != base

    def test_sensitive_to_spec(self):
        assert alone_key(benchmark("mcf"), CFG, 0) != alone_key(
            benchmark("povray"), CFG, 0
        )


class TestPointKey:
    def test_workload_name_irrelevant(self):
        """Same specs under a different mix name: same simulation."""
        assert point_key(workload("a"), "tcm", CFG, 0) == point_key(
            workload("b"), "tcm", CFG, 0
        )

    def test_scheduler_params_config_seed_matter(self):
        base = point_key(workload(), "tcm", CFG, 0)
        assert point_key(workload(), "atlas", CFG, 0) != base
        assert point_key(workload(), "tcm", CFG.with_(num_channels=2), 0) != base
        assert point_key(workload(), "tcm", CFG, 1) != base
        assert (
            point_key(workload(), "tcm", CFG, 0,
                      TCMParams(cluster_thresh=0.1))
            != base
        )

    def test_spec_content_matters(self):
        other = Workload(name="w", benchmark_names=("mcf", "libquantum"))
        assert point_key(workload(), "tcm", CFG, 0) != point_key(
            other, "tcm", CFG, 0
        )


class TestCacheKeyCompleteness:
    """SimConfig.cache_key covers every field automatically."""

    def test_every_simconfig_field_changes_the_key(self):
        import dataclasses

        base = SimConfig()
        for f in dataclasses.fields(SimConfig):
            if f.name in SimConfig.CACHE_KEY_EXCLUDE:
                continue  # covered by the exclusion test below
            if f.name == "timings":
                changed = base.with_(
                    timings=dataclasses.replace(base.timings, t_rcd=999)
                )
            elif f.name == "model_writes":
                changed = base.with_(model_writes=not base.model_writes)
            else:
                value = getattr(base, f.name)
                changed = base.with_(**{f.name: value + 1})
            assert changed.cache_key() != base.cache_key(), f.name

    def test_excluded_fields_do_not_change_the_key(self):
        # backend is excluded by the parity contract: both engines
        # produce bit-identical results, so caches are shared freely
        # across backends (docs/PERFORMANCE.md).
        base = SimConfig()
        assert "backend" in SimConfig.CACHE_KEY_EXCLUDE
        fast = base.with_(backend="fast")
        assert fast.cache_key() == base.cache_key()
        assert point_key(workload(), "tcm", fast, 0) == point_key(
            workload(), "tcm", base, 0
        )

    def test_cache_key_is_hashable(self):
        assert hash(SimConfig().cache_key()) == hash(SimConfig().cache_key())
