"""Tests for CampaignStore.compact — log rewriting and the CLI."""

import json

from repro.campaign import CampaignStore
from repro.campaign.store import KIND_ALONE, KIND_FAILURE, KIND_POINT
from repro.experiments.cli import main as cli_main


def _fill(store, versions=3, keys=4):
    """Write each key ``versions`` times; last write wins."""
    for v in range(versions):
        for i in range(keys):
            store.put(
                f"k{i}", KIND_POINT if i % 2 == 0 else KIND_FAILURE,
                {"value": v, "idx": i}, meta={"version": v},
            )


class TestCompact:
    def test_keeps_latest_record_per_key(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        _fill(store, versions=3, keys=4)
        stats = store.compact()
        assert stats["records_before"] == 12
        assert stats["records_after"] == 4
        assert stats["superseded"] == 8
        assert stats["bytes_reclaimed"] > 0
        for i in range(4):
            assert store.get(f"k{i}")["payload"]["value"] == 2

    def test_kinds_survive(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        _fill(store)
        store.compact()
        assert store.kind("k0") == KIND_POINT
        assert store.kind("k1") == KIND_FAILURE

    def test_append_order_preserved(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        _fill(store, versions=2, keys=3)
        store.compact()
        lines = (tmp_path / "s" / "results.jsonl").read_text().splitlines()
        assert [json.loads(l)["key"] for l in lines] == ["k0", "k1", "k2"]

    def test_reopen_after_compact(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        _fill(store)
        store.compact()
        store.close()
        reopened = CampaignStore(tmp_path / "s")
        assert len(reopened) == 4
        assert reopened.get("k3")["payload"]["value"] == 2

    def test_put_after_compact(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        _fill(store)
        store.compact()
        store.put("k9", KIND_ALONE, {"ipc": 1.0}, meta={})
        assert len(store) == 5
        assert CampaignStore(tmp_path / "s").get("k9") is not None

    def test_idempotent(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        _fill(store)
        store.compact()
        again = store.compact()
        assert again["superseded"] == 0
        assert again["bytes_reclaimed"] == 0

    def test_empty_store(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        stats = store.compact()
        assert stats["records_before"] == 0
        assert stats["records_after"] == 0

    def test_cli_compact(self, tmp_path, capsys):
        store = CampaignStore(tmp_path / "s")
        _fill(store)
        store.close()
        rc = cli_main(["campaign", "compact",
                       "--store", str(tmp_path / "s")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "superseded" in out and "8" in out
        assert len(CampaignStore(tmp_path / "s")) == 4
