"""Decision records: per-grant capture, margins, tie provenance.

The record contract: every grant produces exactly one
:class:`DecisionRecord` whose candidate set mirrors the bank queue at
decision time, whose winner matches the actual grant, and whose margin
names the priority component that decided it — feasible because
``priority`` is a pure decision function by policy contract.
"""

import pytest

from repro.config import SimConfig
from repro.explain import (
    CLASS_BIT,
    TIE_ONLY,
    TIE_PRIORITY,
    TIE_QUEUE_ORDER,
    attach_explain,
    margin_of,
    record_structure,
)
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.sim.system import System
from repro.workloads import make_intensity_workload

CYCLES = 6_000


def _explained(scheduler="tcm", shadows=(), keep_records=None,
               num_threads=4, seed=1, **cfg):
    config = SimConfig(run_cycles=CYCLES, num_threads=num_threads,
                       quantum_cycles=2_000, **cfg)
    workload = make_intensity_workload(0.75, num_threads=num_threads,
                                       seed=3)
    system = System(workload, make_scheduler(scheduler), config, seed=seed)
    collector = attach_explain(system, shadows=shadows,
                               keep_records=keep_records)
    system.run()
    return system, collector


class TestRecordCapture:
    def test_one_record_per_grant(self):
        system, collector = _explained()
        assert collector.decisions_total == system.sched_decisions
        assert len(collector.records) == collector.decisions_total
        assert collector.decisions_total > 0

    def test_indices_are_the_grant_counter(self):
        _, collector = _explained()
        assert [r.index for r in collector.records] == \
            list(range(collector.decisions_total))

    def test_winner_is_a_candidate(self):
        _, collector = _explained()
        for record in collector.records:
            ids = [c.request_id for c in record.candidates]
            assert record.winner_request_id in ids
            winner = record.candidates[ids.index(record.winner_request_id)]
            assert winner.thread_id == record.winner_thread_id

    def test_winner_key_is_maximal(self):
        # TCM's select is priority-maximal (SELECT_IS_PRIORITY_MAXIMAL),
        # so the winner's recorded key must top the candidate set
        _, collector = _explained()
        for record in collector.records:
            ids = [c.request_id for c in record.candidates]
            winner = record.candidates[ids.index(record.winner_request_id)]
            assert winner.key == max(c.key for c in record.candidates)

    def test_timestamps_monotone(self):
        _, collector = _explained()
        nows = [r.now for r in collector.records]
        assert nows == sorted(nows)


class TestTieProvenance:
    def test_provenance_vocabulary(self):
        _, collector = _explained()
        seen = {r.tie_break for r in collector.records}
        assert seen <= {TIE_ONLY, TIE_PRIORITY, TIE_QUEUE_ORDER}
        # a contended mix must exercise at least the first two
        assert TIE_ONLY in seen and TIE_PRIORITY in seen

    def test_only_candidate_has_no_margin(self):
        _, collector = _explained()
        for record in collector.records:
            if record.tie_break == TIE_ONLY:
                assert len(record.candidates) == 1
                assert record.margin is None
                assert record.tied == 1
            else:
                assert len(record.candidates) > 1
                assert record.margin is not None

    def test_priority_win_is_uniquely_maximal(self):
        _, collector = _explained()
        for record in collector.records:
            if record.tie_break == TIE_PRIORITY:
                assert record.margin.component is not None
                assert record.margin.delta > 0
                assert record.tied == 1

    def test_queue_order_tie_is_exact(self):
        _, collector = _explained()
        for record in collector.records:
            if record.tie_break == TIE_QUEUE_ORDER:
                assert record.margin.component is None
                assert record.margin.delta == 0.0
                assert record.tied >= 2
                # queue order resolves forward: the winner precedes the
                # runner-up, so they cannot be the same request
                assert record.margin.runner_up_request_id != \
                    record.winner_request_id

    def test_aggregates_match_records(self):
        _, collector = _explained()
        assert collector.only_candidate == sum(
            1 for r in collector.records if r.tie_break == TIE_ONLY
        )
        assert collector.ties == sum(
            1 for r in collector.records if r.tie_break == TIE_QUEUE_ORDER
        )
        assert sum(collector.decided_by.values()) == sum(
            1 for r in collector.records if r.tie_break == TIE_PRIORITY
        )


class TestComponents:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_every_policy_names_its_slots(self, scheduler):
        """No registry policy falls back to positional slotN names."""
        _, collector = _explained(scheduler=scheduler)
        assert collector.decisions_total > 0
        record = collector.records[-1]
        for candidate in record.candidates:
            names = tuple(candidate.components)
            assert names, f"{scheduler}: empty component decomposition"
            assert not any(n.startswith("slot") for n in names), (
                f"{scheduler}: fell back to positional names {names}"
            )

    def test_components_decompose_the_key(self):
        _, collector = _explained()
        for record in collector.records:
            for candidate in record.candidates:
                # slot 0 of the key is the demand class bit; the
                # components cover the policy tuple behind it
                assert len(candidate.key) == \
                    len(candidate.components) + 1
                assert tuple(candidate.components.values()) == \
                    candidate.key[1:]

    def test_tcm_vocabulary(self):
        _, collector = _explained(scheduler="tcm")
        candidate = collector.records[-1].candidates[0]
        assert tuple(candidate.components) == ("rank", "row_hit", "age")

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_explain_components_agrees_with_priority(self, scheduler):
        """The richer introspection API stays consistent: its
        PRIORITY_COMPONENTS entries equal the live priority tuple, and
        the ``key=`` passthrough is equivalent to re-evaluating."""
        config = SimConfig(run_cycles=CYCLES, num_threads=4,
                           quantum_cycles=2_000)
        workload = make_intensity_workload(0.75, num_threads=4, seed=3)
        system = System(workload, make_scheduler(scheduler), config,
                        seed=1)
        system.start_run()
        system.advance(CYCLES // 2)
        sched = system.scheduler
        queued = [
            (channel, bank_id, request)
            for channel in system.channels
            for bank_id, queue in enumerate(channel.queues)
            for request in queue
        ]
        assert queued, "mid-run system holds no queued requests"
        now = system.now
        for channel, bank_id, request in queued[:8]:
            row_hit = request.row == channel.banks[bank_id].open_row
            prio = sched.priority(request, row_hit, now)
            fresh = sched.explain_components(request, row_hit, now)
            passed = sched.explain_components(request, row_hit, now,
                                              key=prio)
            assert fresh == passed
            for name, value in zip(sched.PRIORITY_COMPONENTS, prio):
                assert passed[name] == value


class TestMarginOf:
    def test_first_differing_slot_named(self):
        names = ("rank", "row_hit", "age")
        component, delta = margin_of(
            (True, 3, True, -10), (True, 2, True, -5), names
        )
        assert component == "rank" and delta == 1.0

    def test_class_bit_slot(self):
        component, delta = margin_of((True, 1), (False, 1), ("rank",))
        assert component == CLASS_BIT and delta == 1.0

    def test_exact_tie(self):
        component, delta = margin_of((True, 1), (True, 1), ("rank",))
        assert component is None and delta == 0.0

    def test_unnamed_slot_falls_back(self):
        component, _ = margin_of((True, 1, 9), (True, 1, 7), ("rank",))
        assert component == "slot1"


class TestRecordStructure:
    def test_structure_ignores_request_ids(self):
        """Two runs in one process allocate different global request
        ids for the same simulated requests; the backend-comparable
        structure must not see them."""
        _, first = _explained()
        _, second = _explained()
        assert [record_structure(r) for r in first.records] == \
            [record_structure(r) for r in second.records]

    def test_structure_sees_decisions(self):
        _, a = _explained(seed=1)
        _, b = _explained(seed=2)
        assert [record_structure(r) for r in a.records] != \
            [record_structure(r) for r in b.records]


class TestRetention:
    def test_ring_buffer_keeps_latest(self):
        _, collector = _explained(keep_records=16)
        assert len(collector.records) == 16
        assert collector.records[-1].index == collector.decisions_total - 1
        assert collector.last_record is collector.records[-1]

    def test_keep_all(self):
        _, collector = _explained(keep_records=None)
        assert len(collector.records) == collector.decisions_total

    def test_snapshot_reports_kept(self):
        _, collector = _explained(keep_records=16)
        assert collector.snapshot()["records_kept"] == 16
