"""Text report and HTML dashboard renderings of an explain snapshot."""

import json

from repro.config import SimConfig
from repro.explain import attach_explain, render_explain_report
from repro.obs.dashboard import render_explain_dashboard, write_dashboard
from repro.schedulers.registry import make_scheduler
from repro.sim.system import System
from repro.workloads import make_intensity_workload

CYCLES = 8_000


def _snapshot(shadows=("frfcfs", "atlas"), starvation_threshold=300):
    workload = make_intensity_workload(0.75, num_threads=4, seed=3)
    config = SimConfig(run_cycles=CYCLES, num_threads=4,
                       quantum_cycles=2_000)
    system = System(workload, make_scheduler("tcm"), config, seed=1)
    collector = attach_explain(
        system, shadows=shadows,
        starvation_threshold=starvation_threshold,
    )
    system.run()
    return collector.snapshot()


class TestTextReport:
    def test_report_covers_every_section(self):
        report = render_explain_report(_snapshot())
        for needle in (
            "disagreement", "shadow:frfcfs", "shadow:atlas",
            "decided by", "queue-order", "starvation",
        ):
            assert needle in report.lower(), f"missing {needle!r}"

    def test_report_without_shadows(self):
        report = render_explain_report(_snapshot(shadows=()))
        assert "decided by" in report.lower()
        assert "shadow:" not in report

    def test_report_survives_json_round_trip(self):
        snapshot = _snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert render_explain_report(round_tripped) == \
            render_explain_report(snapshot)


class TestDashboard:
    def test_dashboard_is_self_contained(self):
        html = render_explain_dashboard(_snapshot())
        assert "<script" not in html
        assert "<svg" in html
        assert "@media (prefers-color-scheme: dark)" in html

    def test_dashboard_shows_the_forensics(self):
        html = render_explain_dashboard(_snapshot(), title="smoke mix")
        assert "smoke mix" in html
        assert "shadow:frfcfs" in html
        assert "shadow:atlas" in html
        # the four chart families: disagreement heatmap, margin
        # histograms, grant-share bars, cluster-flip timeline
        for needle in ("disagree", "margin", "grant", "quantum"):
            assert needle in html.lower(), f"missing {needle!r}"

    def test_dashboard_without_shadows_still_renders(self):
        html = render_explain_dashboard(_snapshot(shadows=()))
        assert "<svg" in html
        assert "shadow:" not in html

    def test_dashboard_from_round_tripped_snapshot(self):
        snapshot = json.loads(json.dumps(_snapshot()))
        assert render_explain_dashboard(snapshot) == \
            render_explain_dashboard(_snapshot())

    def test_write_dashboard(self, tmp_path):
        out = tmp_path / "explain.html"
        path = write_dashboard(render_explain_dashboard(_snapshot()), out)
        text = out.read_text()
        assert str(path) == str(out)
        assert text.startswith("<!DOCTYPE html>") or \
            text.lstrip().startswith("<")
