"""CLI surface: ``explain run | report | dashboard`` and the
``telemetry report --explain`` augmentation."""

import json

import pytest

from repro.experiments.cli import main

QUICK = ["--cycles", "20000", "--seed", "1"]


def _exit_code(argv):
    try:
        return main(argv)
    except SystemExit as exc:
        return exc.code


class TestExplainRun:
    def test_run_prints_the_report(self, capsys):
        assert _exit_code(
            ["explain", "run", *QUICK, "--shadows", "frfcfs"]
        ) in (0, None)
        out = capsys.readouterr().out
        assert "shadow:frfcfs" in out
        assert "decided by" in out.lower()

    def test_default_shadows_are_the_evaluated_set(self, capsys):
        assert _exit_code(["explain", "run", *QUICK]) in (0, None)
        out = capsys.readouterr().out
        # tcm primary: the other four paper policies ride shadow
        for label in ("shadow:frfcfs", "shadow:stfm", "shadow:parbs",
                      "shadow:atlas"):
            assert label in out

    def test_unknown_action_rejected(self):
        assert _exit_code(["explain", "explode"]) not in (0, None)


class TestExplainArtifacts:
    def test_dashboard_and_snapshot(self, capsys, tmp_path):
        html_out = tmp_path / "explain.html"
        json_out = tmp_path / "explain.json"
        code = _exit_code(
            ["explain", "dashboard", *QUICK, "--shadows", "frfcfs",
             "--out", str(html_out), "--json-out", str(json_out)]
        )
        assert code in (0, None)
        html = html_out.read_text()
        assert "<svg" in html and "<script" not in html
        snapshot = json.loads(json_out.read_text())
        assert snapshot["decisions"] > 0
        assert snapshot["shadows"][0]["label"] == "shadow:frfcfs"

    def test_report_from_saved_snapshot(self, capsys, tmp_path):
        json_out = tmp_path / "explain.json"
        _exit_code(["explain", "run", *QUICK, "--shadows", "frfcfs",
                    "--json-out", str(json_out)])
        capsys.readouterr()
        code = _exit_code(
            ["explain", "report", "--json-in", str(json_out)]
        )
        assert code in (0, None)
        assert "shadow:frfcfs" in capsys.readouterr().out

    def test_dashboard_from_saved_snapshot(self, capsys, tmp_path):
        json_out = tmp_path / "explain.json"
        html_out = tmp_path / "explain.html"
        _exit_code(["explain", "run", *QUICK, "--shadows", "frfcfs",
                    "--json-out", str(json_out)])
        capsys.readouterr()
        code = _exit_code(
            ["explain", "dashboard", "--json-in", str(json_out),
             "--out", str(html_out)]
        )
        assert code in (0, None)
        assert "<svg" in html_out.read_text()

    def test_trace_out_writes_jsonl_and_perfetto(self, capsys, tmp_path):
        # PAR-BS primary under full intensity: batch marking diverges
        # from FR-FCFS order immediately, so the trace is guaranteed to
        # carry disagreement counters (TCM at the default quantum never
        # re-clusters within a short CLI run and degenerates to FR-FCFS)
        base = tmp_path / "trace"
        code = _exit_code(
            ["explain", "run", *QUICK, "--scheduler", "parbs",
             "--intensity", "1.0", "--shadows", "frfcfs",
             "--trace-out", str(base) + ".json"]
        )
        assert code in (0, None)
        jsonl = (tmp_path / "trace.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in jsonl]
        assert any(e["ev"] == "explain" for e in events)
        trace = json.loads((tmp_path / "trace.json").read_text())
        names = [t.get("name", "") for t in trace["traceEvents"]]
        assert "disagreements shadow:frfcfs" in names


class TestTelemetryExplainFlag:
    def test_report_gains_the_forensics_tables(self, capsys):
        code = _exit_code(
            ["telemetry", "report", *QUICK, "--explain",
             "--shadows", "frfcfs"]
        )
        assert code in (0, None)
        out = capsys.readouterr().out
        # the ordinary telemetry report is still there...
        assert "workload" in out
        # ...and the explain tables append to it
        assert "shadow:frfcfs" in out
        assert "decided by" in out.lower()
