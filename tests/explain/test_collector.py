"""Collector lifecycle, observer-seam neutrality, and aggregates."""

import json

import pytest

from repro.config import SimConfig
from repro.explain import ExplainCollector, attach_explain, explain_run
from repro.schedulers.registry import make_scheduler
from repro.sim.system import System
from repro.workloads import make_intensity_workload

CYCLES = 6_000


def _system(backend="reference", num_threads=4, seed=1, **cfg):
    config = SimConfig(run_cycles=CYCLES, num_threads=num_threads,
                       quantum_cycles=2_000, backend=backend, **cfg)
    workload = make_intensity_workload(0.75, num_threads=num_threads,
                                       seed=3)
    return System(workload, make_scheduler("tcm"), config, seed=seed)


def _fingerprint(result):
    return (
        result.total_requests,
        tuple(result.ipcs),
        tuple(t.misses for t in result.threads),
        result.row_hits,
        result.row_conflicts,
    )


class TestAttach:
    def test_double_attach_rejected(self):
        system = _system()
        attach_explain(system)
        with pytest.raises(RuntimeError, match="already carries"):
            attach_explain(system)

    def test_attach_after_start_rejected(self):
        system = _system()
        system.start_run()
        system.advance(100)
        with pytest.raises(RuntimeError, match="before system.run"):
            attach_explain(system)

    def test_detach_releases_the_seam(self):
        system = _system()
        collector = attach_explain(system)
        collector.detach()
        assert system._explain is None
        # the seam is free again
        attach_explain(system)

    def test_unknown_shadow_policy_rejected(self):
        system = _system()
        with pytest.raises(KeyError, match="unknown scheduler"):
            attach_explain(system, shadows=("not-a-policy",))


class TestObserverNeutrality:
    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_results_bit_identical(self, backend):
        """Attached (with a shadow) vs detached: same results."""
        plain = _system(backend).run()
        observed_system = _system(backend)
        attach_explain(observed_system, shadows=("frfcfs",))
        observed = observed_system.run()
        assert _fingerprint(observed) == _fingerprint(plain)

    def test_explain_forces_the_observed_fast_loop(self):
        system = _system("fast")
        attach_explain(system)
        system.run()
        # the bare loop never dispatches grants through the explain
        # seam; a populated collector proves the observed loop ran
        assert system._explain.decisions_total == system.sched_decisions
        assert system._explain.decisions_total > 0


class TestAggregates:
    def test_grant_accounting_is_total(self):
        system = _system()
        collector = attach_explain(system, shadows=("frfcfs", "atlas"))
        system.run()
        decisions = collector.decisions_total
        assert sum(collector.actual_granted) == decisions
        for shadow in collector.shadows:
            assert sum(shadow.granted) == decisions
            assert 0 <= shadow.agreed <= decisions
            assert sum(shadow.redirected_to) == decisions - shadow.agreed
            assert sum(shadow.redirected_from) == decisions - shadow.agreed

    def test_disagreement_matrix_shape(self):
        system = _system()
        collector = attach_explain(system, shadows=("frfcfs", "atlas"))
        system.run()
        matrix = collector.disagree
        k = len(collector.labels)
        assert k == 3 and len(matrix) == k
        for i in range(k):
            assert matrix[i][i] == 0
            for j in range(k):
                assert matrix[i][j] == matrix[j][i]
                assert 0 <= matrix[i][j] <= collector.decisions_total
        # row 0 vs shadow i is exactly that shadow's disagreement count
        for i, shadow in enumerate(collector.shadows, start=1):
            assert matrix[0][i] == \
                collector.decisions_total - shadow.agreed

    def test_snapshot_json_round_trip(self):
        system = _system()
        collector = attach_explain(system, shadows=("frfcfs",))
        system.run()
        snapshot = collector.snapshot()
        text = json.dumps(snapshot, sort_keys=True)
        assert json.dumps(json.loads(text), sort_keys=True) == text
        assert snapshot["primary"] == system.scheduler.name
        assert snapshot["decisions"] == collector.decisions_total
        assert snapshot["policies"] == collector.labels
        shadow = snapshot["shadows"][0]
        assert shadow["agreed"] + shadow["disagreed"] == \
            snapshot["decisions"]

    def test_cluster_timeline_tracks_the_primary(self):
        system = _system()
        collector = attach_explain(system)
        system.run()
        assert collector.cluster_source == system.scheduler.name
        assert collector.cluster_timeline, "no quantum boundary crossed"
        for entry in collector.cluster_timeline:
            assert set(entry) == {"now", "quantum", "latency", "flips"}


class TestStarvationWatch:
    def test_tiny_threshold_fires_events(self):
        system = _system()
        collector = attach_explain(system, starvation_threshold=200)
        system.run()
        assert collector.starvation_events, (
            "a contended run must cross a 200-cycle pending age"
        )
        for event in collector.starvation_events:
            assert event["age"] > 200
            assert event["pending"] >= 1
            assert 0 <= event["tid"] < system.workload.num_threads

    def test_max_pending_age_covers_events(self):
        system = _system()
        collector = attach_explain(system, starvation_threshold=200)
        system.run()
        for event in collector.starvation_events:
            assert collector.max_pending_age[event["tid"]] >= event["age"]

    def test_default_threshold_quiet_on_short_runs(self):
        system = _system()
        collector = attach_explain(system)
        system.run()
        assert collector.starvation_events == []


class TestExplainRun:
    def test_returns_result_and_collector(self):
        workload = make_intensity_workload(0.75, num_threads=4, seed=3)
        config = SimConfig(run_cycles=CYCLES, num_threads=4)
        result, collector = explain_run(
            workload, "tcm", config=config, seed=1, shadows=("frfcfs",)
        )
        assert result.total_requests > 0
        assert isinstance(collector, ExplainCollector)
        assert collector.decisions_total > 0
        assert collector.labels[1] == "shadow:frfcfs"
